"""Fig. 8 — execution profile of the VS application.

Paper reference points: ~68% of execution time in OpenCV library code;
``warpPerspectiveInvoker`` alone is 54.4% and is the hot function the
WP case study isolates.
"""

from conftest import print_header

from repro.analysis.experiments import fig08_profile


def test_fig08_profile(benchmark, scale):
    reports = benchmark.pedantic(fig08_profile, args=(scale,), rounds=1, iterations=1)

    print_header("Fig. 8 — execution-time distribution by function")
    for report in reports:
        print(f"  {report.input_name}: hot(warp)={report.hot_fraction:.1%}  "
              f"library={report.library_fraction:.1%}")
        for line in report.lines:
            tag = "lib" if line.is_library else "app"
            print(f"      {line.fraction:6.1%}  [{tag}] {line.bucket}")
    print("  paper: warpPerspectiveInvoker 54.4%, library total ~68%")

    for report in reports:
        # The warp chain is the hot spot and library code dominates.
        assert report.hot_fraction > 0.25
        assert report.library_fraction > 0.6
        top_buckets = [line.bucket for line in report.lines[:3]]
        assert "warpPerspectiveInvoker" in top_buckets
