"""Extension — resiliency of the *full* workflow (coverage + events).

The paper injects into coverage summarization only; its Fig. 2 workflow
also has an event branch (detection, tracking, overlay).  This extension
asks the natural follow-up: does adding the event branch change the
resiliency profile?  The event stages add compute whose corruption
surfaces in the overlay, so the crash structure stays similar while some
additional SDC surface appears in the integrated output.
"""

import numpy as np
from conftest import print_header, print_rates_row

from repro.events.pipeline import run_full_summarization
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.runtime.context import ExecutionContext
from repro.summarize.approximations import baseline_config
from repro.summarize.golden import golden_run
from repro.summarize.pipeline import run_vs
from repro.video.synthetic import make_event_input


def test_extension_full_workflow(benchmark, scale):
    event_input = make_event_input(n_frames=min(32, scale.n_frames))
    stream = event_input.stream
    config = baseline_config()
    n = max(40, scale.injections // 2)

    def study():
        # Coverage-only workload (the paper's setup).
        coverage_golden = golden_run(stream, config)
        coverage_campaign = run_campaign(
            lambda ctx: run_vs(stream, config, ctx).panorama,
            coverage_golden.output,
            coverage_golden.total_cycles,
            CampaignConfig(n_injections=n, kind=RegKind.GPR, seed=55, keep_sdc_outputs=False),
        )

        # Full workflow: the observed output is the track overlay.
        golden_ctx = ExecutionContext()
        full_golden = run_full_summarization(stream, config, golden_ctx)
        full_campaign = run_campaign(
            lambda ctx: run_full_summarization(stream, config, ctx).overlay,
            full_golden.overlay,
            golden_ctx.cycles,
            CampaignConfig(n_injections=n, kind=RegKind.GPR, seed=56, keep_sdc_outputs=False),
        )
        return coverage_campaign.counts, full_campaign.counts

    coverage_counts, full_counts = benchmark.pedantic(study, rounds=1, iterations=1)

    print_header("Extension — coverage-only vs full (coverage + events) workflow")
    print_rates_row("coverage only", coverage_counts.rates())
    print_rates_row("full workflow", full_counts.rates())
    print("  expectation: similar crash structure; the integrated output adds SDC surface")

    # Both profiles must be populated and broadly similar in crash rate.
    assert coverage_counts.total == full_counts.total == n
    from repro.faultinject.outcomes import Outcome

    assert abs(
        coverage_counts.rate(Outcome.CRASH) - full_counts.rate(Outcome.CRASH)
    ) < 0.25
