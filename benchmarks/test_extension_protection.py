"""Extension — selective protection cost from the ED metric.

The paper's conclusion (Section VI-D): "a large majority of the SDC
causing error-sites need not be protected if an error of 10% is
acceptable", so resiliency can be bought selectively instead of with
blanket redundancy.  This extension makes that argument quantitative: a
campaign's SDCs are graded with the relative-L2/ED metric and a
protection plan is priced across a sweep of ED tolerances.
"""

from conftest import print_header

from repro.analysis.experiments import input_stream, vs_workload
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.protection import full_duplication_overhead, plan_protection, symptom_coverage
from repro.quality import compare_outputs
from repro.summarize.approximations import baseline_config
from repro.summarize.golden import golden_run

TOLERANCES = (0, 5, 10, 20, 50)


def test_extension_protection(benchmark, scale):
    stream = input_stream("input2", scale)
    config = baseline_config()
    golden = golden_run(stream, config)
    n = max(80, scale.injections)

    def study():
        campaign = run_campaign(
            vs_workload(stream, config),
            golden.output,
            golden.total_cycles,
            CampaignConfig(n_injections=n, kind=RegKind.GPR, seed=91),
        )
        qualities = {
            index: compare_outputs(golden.output, result.output)
            for index, result in enumerate(campaign.results)
            if result.is_sdc and result.output is not None
        }
        coverage = symptom_coverage(campaign)
        plans = {
            tolerance: plan_protection(campaign, qualities, golden.profile, tolerance)
            for tolerance in TOLERANCES
        }
        return coverage, plans

    coverage, plans = benchmark.pedantic(study, rounds=1, iterations=1)

    print_header("Extension — selective protection cost vs ED tolerance")
    print(f"  symptom detectors catch {coverage.detector_coverage:.0%} of harmful outcomes")
    for tolerance, plan in plans.items():
        cls = plan.classification
        print(
            f"  ED tolerance {tolerance:3d}: tolerable SDCs "
            f"{cls.tolerable_sdc}/{cls.sdc_total}  overhead {plan.runtime_overhead:6.1%} "
            f"(full duplication: {full_duplication_overhead():.0%})"
        )
    print("  paper: most SDC error-sites need no protection at a 10% error budget")

    overheads = [plans[t].runtime_overhead for t in TOLERANCES]
    # Overhead is monotone non-increasing in tolerance and always beats
    # full duplication.
    assert all(a >= b - 1e-9 for a, b in zip(overheads, overheads[1:]))
    assert all(o < full_duplication_overhead() for o in overheads)
    # Crashes dominate harmful outcomes, so symptom coverage is high.
    assert coverage.detector_coverage > 0.5
