"""Fig. 6 — output panoramas of the baseline and approximate algorithms.

The paper compares output images visually: approximations keep acceptable
quality, Input 2 is more robust to approximation than Input 1, and
VS_RFD on Input 1 shows the largest degradation.  This harness computes
the paper's own quantitative metric (relative L2 norm vs. VS_golden) for
each algorithm and writes the panoramas as PGM files.
"""

from pathlib import Path

from conftest import print_header

from repro.analysis.experiments import fig06_output_quality
from repro.imaging.io import save_pgm

OUTPUT_DIR = Path(__file__).resolve().parent / "artifacts" / "fig06"


def test_fig06_output_quality(benchmark, scale):
    rows = benchmark.pedantic(fig06_output_quality, args=(scale,), rounds=1, iterations=1)

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    print_header("Fig. 6 — approximate outputs vs. VS_golden (relative L2 norm, %)")
    for row in rows:
        save_pgm(OUTPUT_DIR / f"{row.input_name}_{row.algorithm}.pgm", row.golden.output)
        ed = "egregious" if row.egregious_degree is None else f"ED={row.egregious_degree}"
        print(
            f"  {row.input_name} {row.algorithm:8s} rel_l2={row.relative_l2_norm:7.2f}%  "
            f"({ed})  stitched={row.frames_stitched} discarded={row.frames_discarded} "
            f"minis={row.num_minis}"
        )
    print(f"  panoramas written to {OUTPUT_DIR}")
    print("  paper: approximations acceptable; VS_SM ~37% (input1) / ~8% (input2) by this metric")

    by_key = {(r.input_name, r.algorithm): r for r in rows}
    # The baseline compared with itself deviates by exactly zero.
    assert by_key[("input1", "VS")].relative_l2_norm == 0.0
    assert by_key[("input2", "VS")].relative_l2_norm == 0.0
    # Every algorithm produced a non-trivial panorama.
    for row in rows:
        assert row.frames_stitched > 0
        assert row.golden.output.size > 1
