"""Fig. 12 — quality (Egregiousness Degree) of the SDCs.

Paper reference points (Section VI-D):

* Compared against **VS_golden** (panels a, b): approximate algorithms'
  SDC curves shift right because their own golden output already
  deviates from VS_golden (VS_SM_golden has ED 37 on Input 1, so all its
  SDCs have ED >= 37).
* Compared against the matching **Approx_golden** (panels c, d): the
  curves nearly coincide — approximation does not fundamentally change
  SDC quality; most SDCs are benign (Input 2: 87/87/90/73% of SDCs for
  VS/VS_RFD/VS_SM/VS_KDS are below ED 10).
"""

from conftest import print_header

from repro.analysis.experiments import ALGORITHMS, fig12_sdc_quality


def _print_curves(title: str, curves: dict) -> None:
    print(f"  {title}")
    for algorithm in ALGORITHMS:
        curve = curves[algorithm]
        if curve.total_sdcs == 0:
            print(f"    {algorithm:8s} (no SDCs observed)")
            continue
        marks = {ed: curve.fraction_at_or_below(ed) for ed in (5, 10, 20, 40, 100)}
        series = "  ".join(f"<= {ed:3d}: {pct:5.1f}%" for ed, pct in marks.items())
        print(f"    {algorithm:8s} n={curve.total_sdcs:3d}  {series}  "
              f"egregious={curve.egregious_count}")


def test_fig12_sdc_quality(benchmark, scale):
    studies = benchmark.pedantic(fig12_sdc_quality, args=(scale,), rounds=1, iterations=1)

    print_header("Fig. 12 — cumulative ED distribution of SDCs (GPR injections)")
    for study in studies:
        print(f"  {study.input_name}: SDC counts {study.sdc_counts}")
        _print_curves("vs VS_golden (panels a/b):", study.vs_golden_curves)
        _print_curves("vs Approx_golden (panels c/d):", study.approx_golden_curves)
    print("  paper: vs own golden the curves nearly coincide; most SDCs benign (ED < 10)")

    for study in studies:
        for algorithm in ALGORITHMS:
            own = study.approx_golden_curves[algorithm]
            cross = study.vs_golden_curves[algorithm]
            if own.total_sdcs == 0:
                continue
            # Against its own golden, an algorithm's SDCs always look at
            # least as benign as against VS_golden (the paper's reason
            # for panels c/d).
            assert own.fraction_at_or_below(10) >= cross.fraction_at_or_below(10) - 1e-9
        baseline = study.approx_golden_curves["VS"]
        if baseline.total_sdcs >= 10:
            # A majority of baseline SDCs are benign under the metric.
            assert baseline.fraction_at_or_below(50) > 50.0
