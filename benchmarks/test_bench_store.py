"""Perf-tracking harness for the sharded, SQL-indexed result store.

Builds a synthetic corpus of campaign records (≥10k injection rows at
the default scale), times v2 store ingest, then answers the same
slicing queries through the SQLite index and through the brute-force
segment scan, asserting bit-identical results and recording the
speedup.  Appends one machine-readable entry to ``BENCH_store.json`` at
the repo root, so every PR leaves a perf trajectory future PRs can
compare against.

Run via ``make bench-store`` or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_store.py -q -s

Knobs (environment):

* ``REPRO_BENCH_STORE_RECORDS``    — synthetic campaigns (default 24).
* ``REPRO_BENCH_STORE_INJECTIONS`` — injections per campaign (default 500).
* ``REPRO_BENCH_STORE_QUERIES``    — timed repetitions per query (default 5).
* ``REPRO_BENCH_OUT``              — output JSON path
  (default ``BENCH_store.json``).
"""

from __future__ import annotations

import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.forensics.query import StoreQuery, index_query, scan_query
from repro.forensics.store import LAYOUT_V2, CampaignStore
from repro.forensics.synth import synthesize_corpus

from benchmarks.test_perf_campaign import append_entry

REPO_ROOT = Path(__file__).resolve().parent.parent


def _n_records() -> int:
    return max(2, int(os.environ.get("REPRO_BENCH_STORE_RECORDS", "24")))


def _n_injections() -> int:
    return max(10, int(os.environ.get("REPRO_BENCH_STORE_INJECTIONS", "500")))


def _n_repeats() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_STORE_QUERIES", "5")))


def _out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUT", REPO_ROOT / "BENCH_store.json"))


#: The tracked slicing queries — the shapes the paper's figures need
#: (outcome mix, stage attribution of SDCs, per-cell register/bit grid).
TRACKED_QUERIES = {
    "outcome_mix": StoreQuery(group_by=("outcome",)),
    "sdc_by_stage": StoreQuery(
        filters={"outcome": ("sdc",)}, group_by=("stage",)
    ),
    "cell_grid": StoreQuery(
        filters={"outcome": ("sdc", "crash")},
        group_by=("register_class", "bit_octet"),
    ),
    "crash_kind_by_kind": StoreQuery(
        filters={"outcome": ("crash",)}, group_by=("kind", "crash_kind")
    ),
}


def _time_engine(engine, store, query, repeats: int) -> tuple[float, dict]:
    # Best-of-N wall time: the store is warm after the first pass, and
    # best-of filters scheduler noise the same way timeit does.
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine(store, query)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_store_perf_trajectory(tmp_path):
    """Time ingest and indexed-vs-scan queries over a synthetic corpus."""
    n_records = _n_records()
    n_injections = _n_injections()
    repeats = _n_repeats()
    corpus = synthesize_corpus(
        n_records, seed=7000, n_injections=n_injections, stratified_every=6
    )
    total_rows = sum(len(record["injections"]) for record in corpus)

    store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
    ingest_start = time.perf_counter()
    for record in corpus:
        store.put(record)
    ingest_s = time.perf_counter() - ingest_start
    assert len(store.ids()) == n_records

    queries = {}
    for name, query in TRACKED_QUERIES.items():
        indexed_s, indexed = _time_engine(index_query, store, query, repeats)
        scan_s, scanned = _time_engine(scan_query, store, query, repeats)
        # The whole point: the index answers exactly the scan's question.
        assert indexed == scanned, f"engines disagree on {name}"
        queries[name] = {
            "indexed_s": round(indexed_s, 6),
            "scan_s": round(scan_s, 6),
            "speedup": round(scan_s / indexed_s, 2) if indexed_s else None,
            "rows": len(indexed["rows"]),
            "population": indexed["total"],
        }

    # Indexed slicing must beat the brute scan overall — that is the
    # index's reason to exist.  Gate on the aggregate, not per query,
    # so one noisy timing on a loaded CI box cannot flake the harness.
    total_indexed = sum(entry["indexed_s"] for entry in queries.values())
    total_scan = sum(entry["scan_s"] for entry in queries.values())
    assert total_indexed < total_scan, (
        f"indexed queries ({total_indexed:.4f}s) did not beat the "
        f"brute-force scan ({total_scan:.4f}s) over {total_rows} rows"
    )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "records": n_records,
        "injections_per_record": n_injections,
        "injection_rows": total_rows,
        "segments": len(list(store.segments_dir.iterdir())),
        "ingest_s": round(ingest_s, 3),
        "ingest_rows_per_s": round(total_rows / ingest_s, 1) if ingest_s else None,
        "query_repeats": repeats,
        "queries": queries,
        "scan_vs_index_speedup": round(total_scan / total_indexed, 2),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    append_entry(_out_path(), entry)
    print(
        f"\n[bench] store: {n_records} records / {total_rows} injection rows "
        f"ingested in {ingest_s:.2f}s "
        f"({entry['ingest_rows_per_s']:.0f} rows/s, {entry['segments']} segment(s)); "
        f"indexed {total_indexed * 1000:.1f}ms vs scan {total_scan * 1000:.1f}ms "
        f"({entry['scan_vs_index_speedup']}x) -> {_out_path()}"
    )
