"""Fig. 9 — error-site coverage of the injection campaigns.

(a) Outcome rates over increasing injection count stabilize at a knee
    (1000 injections in the paper).
(b) Injections are uniformly distributed across the 32 GPRs and the 64
    bits within each register.
"""

import numpy as np
from conftest import print_header

from repro.analysis.experiments import fig09_coverage


def test_fig09_coverage(benchmark, scale):
    study = benchmark.pedantic(fig09_coverage, args=(scale,), rounds=1, iterations=1)

    print_header("Fig. 9 — injection-count convergence and register coverage")
    running = study.campaign.running
    marks = [n for n in (25, 50, 100, 200, 400, 700, 1000) if n <= running.checkpoints[-1]]
    print("  (a) running outcome rates:")
    for mark in marks:
        index = mark - 1
        rates = {name: series[index] for name, series in running.rates.items()}
        print(
            f"      n={mark:5d}  mask={rates['mask']:6.1%} sdc={rates['sdc']:6.1%} "
            f"crash={rates['crash']:6.1%} hang={rates['hang']:6.1%}"
        )
    knee = study.knee
    print(f"      knee (rates settled within 2%): {knee}")
    print(f"  (b) register coverage CV={study.register_cv:.3f}, bit coverage CV={study.bit_cv:.3f}")
    histogram = study.campaign.register_histogram
    print(f"      injections per GPR: min={histogram.min()} mean={histogram.mean():.1f} "
          f"max={histogram.max()}")
    print("  paper: knee at ~1000 injections; uniform distribution over 32 GPRs and 64 bits")

    # Every register was hit, and the spread is near-uniform.
    assert histogram.sum() == scale.convergence_injections
    if scale.convergence_injections >= 300:
        assert (histogram > 0).all()
        assert study.register_cv < 0.5
        assert study.bit_cv < 0.5
    # The campaign converges by its end: the knee exists and leaves a
    # stable tail (when enough injections were run to judge).
    if scale.convergence_injections >= 300:
        assert knee is not None
        assert knee <= scale.convergence_injections
