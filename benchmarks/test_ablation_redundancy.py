"""Ablation — compositional masking vs input redundancy.

The mechanism behind Fig. 11b (and the SDC increase of Fig. 11a) is
stitch-overlap masking: corruptions in a frame's warped output are
overwritten when later frames cover the same panorama area.  This
ablation injects into the warp function's registers on both inputs and
shows that the high-redundancy input (Input 2, ~95% overlap) masks more
of them than the low-redundancy input (Input 1).
"""

from conftest import print_header, print_rates_row

from repro.analysis.experiments import input_stream, vs_workload
from repro.analysis.hot import WARP_SITE_PREFIX
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.summarize.approximations import baseline_config
from repro.summarize.golden import golden_run


def test_ablation_redundancy(benchmark, scale):
    config = baseline_config()
    n = max(80, scale.hot_injections)

    def sweep():
        rows = []
        for input_name in ("input1", "input2"):
            stream = input_stream(input_name, scale)
            golden = golden_run(stream, config)
            campaign = run_campaign(
                vs_workload(stream, config),
                golden.output,
                golden.total_cycles,
                CampaignConfig(
                    n_injections=n,
                    kind=RegKind.GPR,
                    seed=88,
                    site_filter=WARP_SITE_PREFIX,
                    keep_sdc_outputs=False,
                ),
            )
            rows.append((input_name, campaign.fired_counts()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Ablation — stitch-overlap masking of warp corruptions by input redundancy")
    for input_name, counts in rows:
        print_rates_row(f"{input_name} (warp regs)", counts.rates(), f"n={counts.total}")
    print("  expectation: the redundant input masks more warp corruptions")

    counts = dict(rows)
    from repro.faultinject.outcomes import Outcome

    if min(c.total for c in counts.values()) >= 50:
        assert (
            counts["input2"].rate(Outcome.SDC)
            <= counts["input1"].rate(Outcome.SDC) + 0.05
        )
