"""Fig. 10 — resiliency profile of the baseline VS algorithm.

Paper reference points (Section VI-A): GPR injections crash ~40% of the
time (92% of crashes are segmentation faults, 8% aborts), SDCs are rare
(~1%), and the rest mask.  FPR injections are masked >= 99.7% because
pixel math converts to float and back through a saturating cast.
"""

from conftest import print_header, print_rates_row

from repro.analysis.experiments import fig10_resiliency
from repro.faultinject.registers import RegKind


def test_fig10_resiliency(benchmark, scale):
    cells = benchmark.pedantic(fig10_resiliency, args=(scale,), rounds=1, iterations=1)

    print_header("Fig. 10 — VS resiliency profile (GPR vs FPR, both inputs)")
    for cell in cells:
        segv = cell.counts.segv_fraction_of_crashes()
        extra = f"(segv {segv:.0%} of crashes)" if cell.counts.crash else ""
        print_rates_row(f"{cell.input_name} {cell.kind.value.upper()}", cell.rates(), extra)
    print("  paper: GPR crash ~40% (92% segv / 8% abort), SDC ~1%; FPR mask >= 99.7%")

    gpr_cells = [c for c in cells if c.kind is RegKind.GPR]
    fpr_cells = [c for c in cells if c.kind is RegKind.FPR]
    for cell in gpr_cells:
        rates = cell.rates()
        # GPR: substantial crash rate, dominated by segfaults.
        assert rates["crash"] > 0.2
        assert cell.counts.segv_fraction_of_crashes() > 0.6
        # Mask still the most common single outcome.
        assert rates["mask"] > 0.3
    for cell in fpr_cells:
        # FPR: overwhelmingly masked.
        assert cell.rates()["mask"] > 0.95
