"""Perf-tracking harness for the campaign engine.

Times one fixed fault-injection campaign serially and in parallel, then
appends a machine-readable entry to ``BENCH_campaign.json`` at the repo
root, so every PR leaves a perf trajectory future PRs can compare
against.

Run via ``make bench-campaign`` or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_campaign.py -q -s

Knobs (environment):

* ``REPRO_BENCH_SCALE``   — ``tiny`` (default) / ``quick`` / ``medium``.
* ``REPRO_BENCH_WORKERS`` — parallel worker count (default 4).
* ``REPRO_BENCH_OUT``     — output JSON path (default ``BENCH_campaign.json``).
* ``REPRO_BENCH_CI_WIDTH`` — Wilson-CI convergence target for the
  stratified stage (default 0.25; the acceptance entry is recorded at
  0.02, which needs thousands of draws per cell and is far too slow for
  routine runs).
* ``REPRO_BENCH_STRATA`` — stratified grid ``RxBxC`` (default ``1x2x2``).
* ``REPRO_BENCH_ROUND_SIZE`` — per-cell draws per stratified round
  (default 64).

Speedup is bounded by the cores the machine actually grants
(``cpu_count`` is recorded with every entry for exactly that reason).
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro import telemetry
from repro.analysis.experiments import _SCALES, input_stream, vs_workload
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.parallel import VSWorkloadSpec
from repro.faultinject.registers import RegKind
from repro.summarize.approximations import config_for
from repro.summarize.golden import clear_golden_cache, golden_run

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The fixed campaign cell being tracked: Fig. 10's (input1, VS, GPR).
BENCH_SEED = 10


def _bench_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny").lower()
    return _SCALES[name]


def _bench_workers() -> int:
    return max(2, int(os.environ.get("REPRO_BENCH_WORKERS", "4")))


def _out_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUT", REPO_ROOT / "BENCH_campaign.json"))


def _bench_ci_width() -> float:
    return float(os.environ.get("REPRO_BENCH_CI_WIDTH", "0.25"))


def _bench_strata() -> tuple[int, int, int]:
    raw = os.environ.get("REPRO_BENCH_STRATA", "1x2x2")
    parts = tuple(int(part) for part in raw.lower().split("x"))
    assert len(parts) == 3 and all(part >= 1 for part in parts), raw
    return parts


def _bench_round_size() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ROUND_SIZE", "64")))


def _time_campaign(
    stream,
    config,
    golden,
    n_injections,
    workers,
    spec,
    journal_path=None,
    probe=False,
    fast_forward=True,
    boundary_batch=True,
):
    start = time.perf_counter()
    campaign = run_campaign(
        vs_workload(stream, config),
        golden.output,
        golden.total_cycles,
        CampaignConfig(
            n_injections=n_injections,
            kind=RegKind.GPR,
            seed=BENCH_SEED,
            keep_sdc_outputs=False,
            workers=workers,
            probe=probe,
            fast_forward=fast_forward,
            boundary_batch=boundary_batch,
        ),
        spec=spec,
        journal_path=journal_path,
    )
    elapsed = time.perf_counter() - start
    return elapsed, campaign


def append_entry(path: Path, entry: dict) -> None:
    """Append one timing entry to the JSON trajectory file."""
    entries = []
    if path.exists():
        entries = json.loads(path.read_text())
    entries.append(entry)
    path.write_text(json.dumps(entries, indent=2) + "\n")


def test_campaign_perf_trajectory(tmp_path):
    """Time the tracked campaign serial vs parallel and record both."""
    scale = _bench_scale()
    workers = _bench_workers()
    config = config_for("VS")
    stream = input_stream("input1", scale)
    golden = golden_run(stream, config)
    spec = VSWorkloadSpec.for_stream(stream, config)
    assert spec is not None

    serial_s, serial = _time_campaign(
        stream, config, golden, scale.injections, workers=1, spec=None
    )
    parallel_s, parallel = _time_campaign(
        stream, config, golden, scale.injections, workers=workers, spec=spec
    )

    # Same serial cell with the crash-safe checkpoint journal enabled,
    # to track the durability tax (one fsync'd JSONL append per chunk).
    journaled_s, journaled = _time_campaign(
        stream,
        config,
        golden,
        scale.injections,
        workers=1,
        spec=None,
        journal_path=tmp_path / "bench-journal.jsonl",
    )

    # Same cell again with stage-level tracing on, to track the overhead
    # of an enabled telemetry layer (disabled overhead is a single global
    # check per stage and is not separately measurable here).
    telemetry.enable()
    try:
        traced_s, traced = _time_campaign(
            stream, config, golden, scale.injections, workers=1, spec=None
        )
    finally:
        telemetry.disable()

    # Same serial cell under full live observation — event bus, status
    # snapshots (one atomic rewrite per event) and flight recorder — to
    # track the observer tax.  The contract says observation only
    # *watches*, so this must stay within the journal-style noise band.
    from repro.observe.session import observe_campaign

    with observe_campaign(tmp_path / "bench-status.json"):
        observed_s, observed = _time_campaign(
            stream, config, golden, scale.injections, workers=1, spec=None
        )

    # Same cell with divergence probes on, to track the forensics tax:
    # one extra probed golden run plus per-stage checksumming on every
    # injected run.
    probed_s, probed = _time_campaign(
        stream, config, golden, scale.injections, workers=1, spec=None, probe=True
    )

    # Golden-prefix fast-forward vs the full execution path, both serial
    # with the spec supplied (fast-forward needs the spec to rebuild the
    # snapshot tape; the tape is already warm here — the parallel run
    # above captured it parent-side for boundary grouping — so the three
    # timings below compare execution strategies, not capture cost).
    full_s, full = _time_campaign(
        stream,
        config,
        golden,
        scale.injections,
        workers=1,
        spec=spec,
        fast_forward=False,
    )
    fastforward_s, fastforwarded = _time_campaign(
        stream,
        config,
        golden,
        scale.injections,
        workers=1,
        spec=spec,
        boundary_batch=False,
    )
    # Boundary fan-out (the default mode): injections grouped per frame
    # boundary, one materialized restore per group, per-run state cloned
    # copy-on-write, golden tails synthesized for re-converged runs.
    fanout_s, fanned_out = _time_campaign(
        stream, config, golden, scale.injections, workers=1, spec=spec
    )

    # Adaptive stratified campaign to a matched per-cell Wilson-CI
    # width.  Uniform sampling cannot stop per cell: to guarantee the
    # same width in the slowest-converging cell it must keep drawing
    # until that cell's expected share of a uniform stream reaches the
    # same count, i.e. ``max_c ceil(draws_c / W_c)`` total draws.  The
    # stratified planner stops converged cells, so ``draws_saved`` is
    # the injections it did not have to run.
    ci_width = _bench_ci_width()
    strata = _bench_strata()
    strat_start = time.perf_counter()
    stratified = run_campaign(
        vs_workload(stream, config),
        golden.output,
        golden.total_cycles,
        CampaignConfig(
            n_injections=1,
            kind=RegKind.GPR,
            seed=BENCH_SEED,
            keep_sdc_outputs=False,
            workers=1,
            sampling="stratified",
            ci_width=ci_width,
            round_size=_bench_round_size(),
            strata=strata,
        ),
        spec=spec,
    )
    stratified_s = time.perf_counter() - strat_start
    sampling = stratified.sampling
    assert sampling is not None
    assert not sampling.budget_exhausted
    assert sampling.cells_converged == len(sampling.cells)
    # The whole point of adaptive stopping: fewer injections than a
    # uniform campaign needs for the same per-cell CI guarantee.
    assert sampling.draws_saved() > 0, (
        f"stratified planner saved no draws at ci_width={ci_width}: "
        f"{sampling.total_draws} drawn vs "
        f"{sampling.uniform_equivalent_draws()} uniform-equivalent"
    )
    per_injection_s = stratified_s / sampling.total_draws if sampling.total_draws else 0.0

    # Untimed telemetry-enabled run on a cold cache: harvest the
    # fast-forward and fan-out counters that explain *why* the timings
    # above moved (how many runs fast-forwarded, how many groups, how
    # many restores were shared, how many golden tails synthesized).
    clear_golden_cache()
    tracer = telemetry.enable()
    try:
        _time_campaign(stream, config, golden, scale.injections, workers=1, spec=spec)
        counters = dict(tracer.registry.snapshot()["counters"])
    finally:
        telemetry.disable()

    # The perf harness doubles as an equivalence check.
    assert serial.counts == parallel.counts
    assert serial.running == parallel.running
    assert serial.counts == traced.counts
    assert serial.running == traced.running
    assert serial.counts == journaled.counts
    assert serial.running == journaled.running
    assert serial.counts == observed.counts
    assert serial.running == observed.running
    assert serial.counts == probed.counts
    assert serial.running == probed.running
    assert serial.counts == full.counts
    assert serial.running == full.running
    assert serial.counts == fastforwarded.counts
    assert serial.running == fastforwarded.running
    assert serial.counts == fanned_out.counts
    assert serial.running == fanned_out.running

    # Journal overhead must stay within noise at default chunk sizes:
    # a handful of fsync'd appends against seconds of injection work.
    # The bound is deliberately loose (50% + 250ms absolute slack) so a
    # noisy CI box cannot flake it, while a regression that fsyncs per
    # *injection* instead of per chunk still fails loudly.
    assert journaled_s <= serial_s * 1.5 + 0.25, (
        f"journal overhead out of noise band: journaled {journaled_s:.3f}s "
        f"vs serial {serial_s:.3f}s"
    )

    # Observation rewrites one small JSON file per event (serial mode:
    # one event per injection), so it costs a bounded constant per
    # injection — the same noise band as the journal catches a
    # regression that starts doing real work on the hot path.
    assert observed_s <= serial_s * 1.5 + 0.25, (
        f"observe overhead out of noise band: observed {observed_s:.3f}s "
        f"vs serial {serial_s:.3f}s"
    )

    # Probing checksums every stage's intermediate output, so it costs
    # real work per injection — but it must stay a modest constant
    # factor (CRC32 over arrays already in cache), never blow up the
    # campaign.  2x + 500ms absorbs the one-off probed golden re-run at
    # tiny scale while still catching an accidentally quadratic probe.
    assert probed_s <= serial_s * 2.0 + 0.5, (
        f"probe overhead out of noise band: probed {probed_s:.3f}s "
        f"vs serial {serial_s:.3f}s"
    )

    # Fast-forward exists to save time; even with the one-off tape
    # capture inside the timed window it must never cost more than the
    # full path beyond noise (10% + 250ms slack for scheduler jitter).
    assert fastforward_s <= full_s * 1.1 + 0.25, (
        f"fast-forward out of noise band: fast {fastforward_s:.3f}s "
        f"vs full {full_s:.3f}s"
    )

    # Boundary fan-out must never be slower than plain fast-forward
    # beyond noise (it only removes work: shared restores, synthesized
    # tails), and its whole reason to exist is a >4x win over full
    # execution on this tracked cell — fast-forward alone plateaus
    # around 2-3x, so a fanout regression below 4x means the fan-out
    # engine stopped amortizing.
    assert fanout_s <= fastforward_s * 1.1 + 0.25, (
        f"fan-out out of noise band: fanout {fanout_s:.3f}s "
        f"vs fast-forward {fastforward_s:.3f}s"
    )
    assert fanout_s > 0 and full_s / fanout_s > 4.0, (
        f"fan-out speedup regressed below 4x: fanout {fanout_s:.3f}s "
        f"vs full {full_s:.3f}s ({full_s / fanout_s:.2f}x)"
    )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "figure": "fig10-cell(input1,VS,GPR)",
        "scale": scale.name,
        "n_injections": scale.injections,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "traced_s": round(traced_s, 3),
        "journaled_s": round(journaled_s, 3),
        "observed_s": round(observed_s, 3),
        "probed_s": round(probed_s, 3),
        "full_s": round(full_s, 3),
        "fastforward_s": round(fastforward_s, 3),
        "fanout_s": round(fanout_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "trace_overhead": round(traced_s / serial_s - 1.0, 4) if serial_s else None,
        "journal_overhead": round(journaled_s / serial_s - 1.0, 4) if serial_s else None,
        "observe_overhead": round(observed_s / serial_s - 1.0, 4) if serial_s else None,
        "probe_overhead": round(probed_s / serial_s - 1.0, 4) if serial_s else None,
        "fastforward_speedup": round(full_s / fastforward_s, 3) if fastforward_s else None,
        "fanout_speedup": round(full_s / fanout_s, 3) if fanout_s else None,
        "fastforward": {
            "hits": counters.get("campaign.fastforward.hits", 0),
            "full_runs": counters.get("campaign.fastforward.full_runs", 0),
            "skipped_cycles": counters.get("campaign.fastforward.skipped_cycles", 0),
        },
        "fanout": {
            "groups": counters.get("campaign.fanout.groups", 0),
            "shared_restores": counters.get("campaign.fanout.shared_restores", 0),
            "cow_clones": counters.get("campaign.fanout.cow_clones", 0),
            "golden_tails": counters.get("campaign.fanout.golden_tail", 0),
        },
        "stratified": {
            "ci_width": ci_width,
            "strata": list(strata),
            "round_size": _bench_round_size(),
            "stratified_s": round(stratified_s, 3),
            "draws": sampling.total_draws,
            "rounds": sampling.rounds,
            "cells": len(sampling.cells),
            "cells_converged": sampling.cells_converged,
            "uniform_equivalent_draws": sampling.uniform_equivalent_draws(),
            "draws_saved": sampling.draws_saved(),
            # Uniform wall-clock at the matched CI width, estimated from
            # the measured per-injection cost (running the uniform
            # campaign to the same guarantee would take strictly longer).
            "uniform_equivalent_s_est": round(
                per_injection_s * sampling.uniform_equivalent_draws(), 3
            ),
        },
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    append_entry(_out_path(), entry)
    print(
        f"\n[bench] {scale.name} campaign ({scale.injections} injections): "
        f"serial {serial_s:.2f}s, parallel({workers}w) {parallel_s:.2f}s, "
        f"traced {traced_s:.2f}s (+{100 * entry['trace_overhead']:.1f}%), "
        f"journaled {journaled_s:.2f}s (+{100 * entry['journal_overhead']:.1f}%), "
        f"observed {observed_s:.2f}s (+{100 * entry['observe_overhead']:.1f}%), "
        f"probed {probed_s:.2f}s (+{100 * entry['probe_overhead']:.1f}%), "
        f"fast-forward {fastforward_s:.2f}s vs full {full_s:.2f}s "
        f"({entry['fastforward_speedup']}x), "
        f"fan-out {fanout_s:.2f}s ({entry['fanout_speedup']}x, "
        f"{entry['fanout']['groups']} groups, "
        f"{entry['fanout']['golden_tails']} golden tails), "
        f"stratified(ci={ci_width}) {stratified_s:.2f}s "
        f"({sampling.total_draws} draws, saved {sampling.draws_saved()}), "
        f"speedup {entry['speedup']}x on {entry['cpu_count']} cpu(s) "
        f"-> {_out_path()}"
    )
