"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark file regenerates one table/figure of the paper at the
scale selected by ``REPRO_SCALE`` (default ``quick``; see
``repro.analysis.experiments.Scale``).  The harness prints the same
rows/series the paper reports, alongside the paper's own numbers, so a
run can be compared shape-for-shape.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import Scale, scale_from_env


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The experiment scale for this benchmark session."""
    chosen = scale_from_env()
    print(f"\n[repro] benchmark scale: {chosen.name} "
          f"({chosen.n_frames} frames, {chosen.injections} injections/cell)")
    return chosen


def print_header(title: str) -> None:
    """Banner for one experiment's output block."""
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def print_rates_row(label: str, rates: dict[str, float], extra: str = "") -> None:
    """One outcome-rate row in the style of the paper's bar charts."""
    print(
        f"  {label:26s} mask={rates['mask']:6.1%}  sdc={rates['sdc']:6.1%}  "
        f"crash={rates['crash']:6.1%}  hang={rates['hang']:6.1%}  {extra}"
    )
