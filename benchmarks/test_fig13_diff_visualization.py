"""Fig. 13 — default vs approximate output difference visualization.

Paper reference points (Section VII): the raw pixel difference between
the VS and VS_SM outputs is considerable (slightly shifted pixels), but
the 128-thresholded difference — what the metric actually counts — is
far smaller; to a human the images look the same.  The discussion quotes
relative L2 norms of ~37% (Input 1) and ~8% (Input 2) for VS_SM.
"""

from pathlib import Path

import numpy as np
from conftest import print_header

from repro.analysis.experiments import fig13_diff_visualization
from repro.imaging.io import save_pgm

OUTPUT_DIR = Path(__file__).resolve().parent / "artifacts" / "fig13"


def test_fig13_diff_visualization(benchmark, scale):
    panels = benchmark.pedantic(
        fig13_diff_visualization, args=(scale,), rounds=1, iterations=1
    )

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    print_header("Fig. 13 — VS vs VS_SM: raw and thresholded pixel differences")
    for panel in panels:
        for name, image in (
            ("a_default", panel.default_output),
            ("b_approx", panel.approx_output),
            ("c_abs_diff", panel.absolute_diff),
            ("d_thresholded_diff", panel.thresholded_diff),
        ):
            save_pgm(OUTPUT_DIR / f"{panel.input_name}_{name}.pgm", image)
        raw_energy = float((panel.absolute_diff.astype(np.float64) ** 2).sum())
        kept_energy = float((panel.thresholded_diff.astype(np.float64) ** 2).sum())
        kept = kept_energy / raw_energy if raw_energy else 0.0
        print(
            f"  {panel.input_name}: rel_l2={panel.relative_l2_norm:6.2f}%  "
            f"thresholding keeps {kept:.1%} of difference energy"
        )
    print(f"  panels written to {OUTPUT_DIR}")
    print("  paper: raw diff considerable, thresholded diff small; VS_SM ~37% / ~8%")

    for panel in panels:
        raw = float((panel.absolute_diff.astype(np.float64) ** 2).sum())
        kept = float((panel.thresholded_diff.astype(np.float64) ** 2).sum())
        # The 128 threshold discards a meaningful share of cosmetic
        # difference energy.
        if raw > 0:
            assert kept < raw
