"""Fig. 11a — resiliency of the approximate VS algorithms (GPR).

Paper reference points (Section VI-B): Crash/Mask/Hang rates of the
approximations stay very close to the baseline; the SDC rate increases
slightly (Input 1: 1% -> 3% for VS_RFD, 2.5% for VS_KDS) because reduced
stitching redundancy exposes corruptions that overlap used to mask.
"""

from conftest import print_header, print_rates_row

from repro.analysis.experiments import fig11a_approx_resiliency


def test_fig11a_approx_resiliency(benchmark, scale):
    cells = benchmark.pedantic(
        fig11a_approx_resiliency, args=(scale,), rounds=1, iterations=1
    )

    print_header("Fig. 11a — resiliency of VS vs approximations (GPR injections)")
    for input_name in ("input1", "input2"):
        print(f"  {input_name}:")
        for cell in cells:
            if cell.input_name == input_name:
                print_rates_row(f"  {cell.algorithm}", cell.rates())
    print("  paper: crash/mask/hang ~unchanged; SDC up slightly (<= ~2 points)")

    by_key = {(c.input_name, c.algorithm): c for c in cells}
    for input_name in ("input1", "input2"):
        base = by_key[(input_name, "VS")].rates()
        for algo in ("VS_RFD", "VS_KDS", "VS_SM"):
            rates = by_key[(input_name, algo)].rates()
            # The resiliency profile stays close to the baseline's.
            assert abs(rates["crash"] - base["crash"]) < 0.2
            assert abs(rates["mask"] - base["mask"]) < 0.2
            # Approximation never makes SDCs collapse or explode.
            assert rates["sdc"] < base["sdc"] + 0.15
