"""Fig. 11b — hot-function study: standalone WP vs in-situ warp.

Paper reference points (Section VI-C): injections into the warp
functions produce a *different* profile when observed at the end of the
full VS workflow than at the end of the standalone WP benchmark — the
compositional effect masks corruptions (an adjacent frame is stitched
over the corrupted area), so VS masks more and SDCs less than WP.
"""

from conftest import print_header, print_rates_row

from repro.analysis.experiments import fig11b_hot_function


def test_fig11b_hot_function(benchmark, scale):
    study = benchmark.pedantic(fig11b_hot_function, args=(scale,), rounds=1, iterations=1)

    print_header("Fig. 11b — warp-register injections: full VS vs standalone WP")
    print_rates_row(
        "VS (in-situ warp)", study.vs_counts.rates(), f"n={study.vs_counts.total}"
    )
    print_rates_row("WP (standalone)", study.wp_counts.rates(), f"n={study.wp_counts.total}")
    print(f"  compositional masking gain (VS - WP): {study.masking_gain():+.1%}")
    print("  paper: VS masks more than WP; hot-function profiles are not representative")

    assert study.vs_counts.total > 0 and study.wp_counts.total > 0
    if min(study.vs_counts.total, study.wp_counts.total) >= 60:
        from repro.faultinject.outcomes import Outcome

        # The paper's conclusion: the end-to-end workflow masks more and
        # converts would-be SDCs into masked outcomes.
        assert study.masking_gain() > 0.0
        assert study.vs_counts.rate(Outcome.SDC) < study.wp_counts.rate(Outcome.SDC)
