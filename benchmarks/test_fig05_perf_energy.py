"""Fig. 5 — IPC, execution time and energy of the approximate algorithms.

Paper reference points: VS_RFD gives the largest execution-time/energy
reduction on Input 1 (68% in the paper); VS_KDS gives the largest
improvement on Input 2 (~18%); IPC stays roughly constant everywhere, so
energy tracks execution time.
"""

from conftest import print_header

from repro.analysis.experiments import fig05_perf_energy


def test_fig05_perf_energy(benchmark, scale):
    rows = benchmark.pedantic(fig05_perf_energy, args=(scale,), rounds=1, iterations=1)

    print_header("Fig. 5 — normalized IPC / execution time / energy (baseline VS = 1.00)")
    for input_name in ("input1", "input2"):
        print(f"  {input_name}:")
        for row in rows:
            if row.input_name != input_name:
                continue
            print(
                f"    {row.algorithm:8s} ipc={row.normalized_ipc:5.3f}  "
                f"time={row.normalized_time:5.3f}  energy={row.normalized_energy:5.3f}"
            )
    print("  paper: RFD wins input1 (time 0.32); KDS wins input2 (time ~0.82); IPC ~ 1.0")

    # Shape assertions mirroring the paper's qualitative claims.
    by_key = {(r.input_name, r.algorithm): r for r in rows}
    for input_name in ("input1", "input2"):
        assert by_key[(input_name, "VS")].normalized_time == 1.0
        # IPC roughly constant across variants (paper Section IV-A).
        for algo in ("VS_RFD", "VS_KDS", "VS_SM"):
            assert 0.9 < by_key[(input_name, algo)].normalized_ipc < 1.1
    # Approximations save time on both inputs (SM may be ~neutral).
    assert by_key[("input1", "VS_RFD")].normalized_time < 0.95
    assert by_key[("input1", "VS_KDS")].normalized_time < 0.95
    assert by_key[("input2", "VS_KDS")].normalized_time < 0.95
    # Energy tracks execution time (constant-IPC power model).
    for row in rows:
        assert abs(row.normalized_energy - row.normalized_time) < 0.1
