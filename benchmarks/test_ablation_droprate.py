"""Ablation — VS_RFD drop-rate sweep (the knob behind Fig. 5's RFD bars).

The paper evaluates VS_RFD at up to 10% dropped frames.  This ablation
sweeps the drop rate and reports modelled time and output quality,
exposing the trade-off curve the paper samples at one point: more drops
-> more cascading discards -> more savings and more quality loss,
with Input 1 (low redundancy) degrading faster than Input 2.
"""

from conftest import print_header

from repro.analysis.experiments import input_stream
from repro.perfmodel.energy import estimate_from_profile
from repro.quality import compare_outputs
from repro.summarize.approximations import baseline_config, rfd_config
from repro.summarize.golden import golden_run

DROP_RATES = (0.0, 0.05, 0.10, 0.20, 0.30)


def test_ablation_droprate(benchmark, scale):
    def sweep():
        rows = []
        for input_name in ("input1", "input2"):
            stream = input_stream(input_name, scale)
            baseline = golden_run(stream, baseline_config())
            baseline_estimate = estimate_from_profile(baseline.profile)
            for rate in DROP_RATES:
                config = (
                    baseline_config()
                    if rate == 0.0
                    else rfd_config(drop_fraction=rate).with_name(f"VS_RFD_{rate:.2f}")
                )
                golden = golden_run(stream, config)
                estimate = estimate_from_profile(golden.profile)
                quality = compare_outputs(baseline.output, golden.output)
                rows.append(
                    (
                        input_name,
                        rate,
                        estimate.normalized_to(baseline_estimate)["time"],
                        quality.relative_l2_norm,
                        golden.result.frames_stitched,
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Ablation — VS_RFD drop-rate sweep (time vs quality)")
    for input_name, rate, rel_time, rel_l2, stitched in rows:
        print(
            f"  {input_name} drop={rate:4.0%}  time={rel_time:5.2f}x  "
            f"quality dev={rel_l2:7.2f}%  stitched={stitched}"
        )
    print("  paper evaluates the 10% point; the sweep shows the whole trade-off")

    by_key = {(r[0], r[1]): r for r in rows}
    for input_name in ("input1", "input2"):
        # More drops -> never more stitched frames.
        stitched = [by_key[(input_name, rate)][4] for rate in DROP_RATES]
        assert all(a >= b - 2 for a, b in zip(stitched, stitched[1:]))
        # The no-drop row is the baseline itself.
        assert by_key[(input_name, 0.0)][2] == 1.0
        assert by_key[(input_name, 0.0)][3] == 0.0
        # Heavy dropping saves real time.
        assert by_key[(input_name, 0.30)][2] < 0.95
