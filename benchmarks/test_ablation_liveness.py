"""Ablation — sensitivity of outcome rates to the register-liveness model.

The liveness leases (how long a bound value stays live in its modelled
register) are the main calibration knob of the fault-injection
substrate.  This ablation scales all leases down/up and shows the
expected monotone effect: shorter leases -> more dead-register masking,
fewer crashes; longer leases -> the opposite.  The default (1.0x) is the
model used by every paper experiment.
"""

from conftest import print_header, print_rates_row

from repro.analysis.experiments import input_stream, vs_workload
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import LivenessModel, RegKind
from repro.summarize.approximations import baseline_config
from repro.summarize.golden import golden_run

#: Lease multipliers swept by the ablation.
SCALES = (0.1, 1.0, 10.0)


def scaled_model(factor: float) -> LivenessModel:
    base = LivenessModel()
    return LivenessModel(
        gpr_data_ttl=int(base.gpr_data_ttl * factor),
        gpr_address_ttl=int(base.gpr_address_ttl * factor),
        gpr_control_ttl=int(base.gpr_control_ttl * factor),
        fpr_data_ttl=int(base.fpr_data_ttl * factor),
    )


def test_ablation_liveness(benchmark, scale):
    stream = input_stream("input2", scale)
    config = baseline_config()
    golden = golden_run(stream, config)
    n = max(40, scale.injections // 2)

    def sweep():
        rows = []
        for factor in SCALES:
            campaign = run_campaign(
                vs_workload(stream, config),
                golden.output,
                golden.total_cycles,
                CampaignConfig(
                    n_injections=n,
                    kind=RegKind.GPR,
                    seed=77,
                    liveness=scaled_model(factor),
                    keep_sdc_outputs=False,
                ),
            )
            rows.append((factor, campaign.counts))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Ablation — register liveness leases vs outcome rates (GPR, input2)")
    for factor, counts in rows:
        print_rates_row(f"leases x{factor:g}", counts.rates())
    print("  expectation: longer leases -> more live hits -> more crashes, less masking")

    by_factor = {factor: counts for factor, counts in rows}
    # Masking decreases (weakly) as leases grow.
    assert (
        by_factor[0.1].rate(_outcome("mask")) >= by_factor[10.0].rate(_outcome("mask")) - 0.05
    )
    # Crashes increase (weakly) as leases grow.
    assert (
        by_factor[10.0].rate(_outcome("crash")) >= by_factor[0.1].rate(_outcome("crash")) - 0.05
    )


def _outcome(name: str):
    from repro.faultinject.outcomes import Outcome

    return {o.value: o for o in Outcome}[name]
