# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test bench bench-medium bench-campaign bench-store examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-medium:
	REPRO_SCALE=medium $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Times the tracked campaign serial vs parallel and appends the result
# to BENCH_campaign.json. REPRO_BENCH_SCALE / REPRO_BENCH_WORKERS tune it.
bench-campaign:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_campaign.py -q -s

# Times store ingest and indexed-vs-scan slicing queries over a >=10k-row
# synthetic corpus, appending to BENCH_store.json. REPRO_BENCH_STORE_* tune it.
bench-store:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_store.py -q -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/surveillance_mission.py
	$(PYTHON) examples/fault_injection_campaign.py 60
	$(PYTHON) examples/sdc_quality_analysis.py 100
	$(PYTHON) examples/hot_function_study.py 120
	$(PYTHON) examples/event_summarization.py
	$(PYTHON) examples/protection_planning.py 100

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
