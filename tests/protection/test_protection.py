"""Tests for symptom coverage and selective protection planning."""

import pytest

from repro.faultinject.campaign import CampaignConfig, CampaignResult
from repro.faultinject.injector import InjectionPlan, InjectionRecord
from repro.faultinject.monitor import InjectionResult
from repro.faultinject.outcomes import CrashKind, Outcome, OutcomeCounts, RunningRates
from repro.faultinject.registers import RegKind
from repro.protection import (
    classify_sites,
    full_duplication_overhead,
    plan_protection,
    symptom_coverage,
)
from repro.quality.metrics import SDCQuality
from repro.runtime.context import CostProfile

import numpy as np


def make_result(outcome, site="imaging.warp.row_block", crash_kind=None):
    plan = InjectionPlan(0, RegKind.GPR, 0, 0)
    record = InjectionRecord(plan, fired=True, site=site)
    return InjectionResult(plan=plan, record=record, outcome=outcome, crash_kind=crash_kind)


def make_campaign(results):
    counts = OutcomeCounts()
    for result in results:
        counts.add(result.outcome, result.crash_kind)
    return CampaignResult(
        config=CampaignConfig(n_injections=len(results), kind=RegKind.GPR),
        counts=counts,
        running=RunningRates(),
        results=results,
        register_histogram=np.zeros(32, dtype=np.int64),
        bit_histogram=np.zeros(64, dtype=np.int64),
    )


@pytest.fixture()
def mixed_campaign():
    results = (
        [make_result(Outcome.MASKED)] * 10
        + [make_result(Outcome.CRASH, crash_kind=CrashKind.SEGV)] * 5
        + [make_result(Outcome.HANG)]
        + [make_result(Outcome.SDC, site="imaging.warp.store")] * 4
    )
    return make_campaign(results)


class TestSymptomCoverage:
    def test_partition(self, mixed_campaign):
        coverage = symptom_coverage(mixed_campaign)
        assert coverage.benign == 10
        assert coverage.symptomatic == 6
        assert coverage.silent == 4
        assert coverage.total_injections == 20

    def test_detector_coverage(self, mixed_campaign):
        coverage = symptom_coverage(mixed_campaign)
        assert coverage.detector_coverage == pytest.approx(0.6)

    def test_silent_fraction(self, mixed_campaign):
        assert symptom_coverage(mixed_campaign).silent_fraction == pytest.approx(0.2)

    def test_all_masked(self):
        campaign = make_campaign([make_result(Outcome.MASKED)] * 5)
        coverage = symptom_coverage(campaign)
        assert coverage.detector_coverage == 1.0
        assert coverage.silent_fraction == 0.0


class TestClassification:
    def _qualities(self, campaign, eds):
        """Assign EDs to the SDC results in order."""
        qualities = {}
        ed_iter = iter(eds)
        for index, result in enumerate(campaign.results):
            if result.outcome is Outcome.SDC:
                ed = next(ed_iter)
                qualities[index] = SDCQuality(
                    relative_l2_norm=float(ed) if ed is not None else 200.0,
                    egregious_degree=ed,
                )
        return qualities

    def test_tolerance_splits_sdcs(self, mixed_campaign):
        qualities = self._qualities(mixed_campaign, [2, 8, 30, None])
        classification = classify_sites(mixed_campaign, qualities, ed_tolerance=10)
        assert classification.tolerable_sdc == 2
        assert classification.critical_sdc == 2
        assert classification.tolerable_fraction == pytest.approx(0.5)

    def test_zero_tolerance_protects_all_sdcs(self, mixed_campaign):
        qualities = self._qualities(mixed_campaign, [2, 8, 30, 60])
        classification = classify_sites(mixed_campaign, qualities, ed_tolerance=0)
        assert classification.critical_sdc == 4

    def test_unassessed_sdcs_conservative(self, mixed_campaign):
        classification = classify_sites(mixed_campaign, {}, ed_tolerance=10)
        assert classification.critical_sdc == 4

    def test_totals_cover_campaign(self, mixed_campaign):
        qualities = self._qualities(mixed_campaign, [1, 1, 1, 1])
        classification = classify_sites(mixed_campaign, qualities, ed_tolerance=10)
        assert classification.total == 20


class TestPlanning:
    def _profile(self):
        profile = CostProfile()
        profile.charge("imaging.warp.warp_perspective_invoker", 500)
        profile.charge("vision.matching.hamming", 300)
        profile.charge("summarize.pipeline.frame", 200)
        return profile

    def test_no_critical_sdcs_cheap_plan(self, mixed_campaign):
        qualities = {
            index: SDCQuality(relative_l2_norm=1.0, egregious_degree=1)
            for index, result in enumerate(mixed_campaign.results)
            if result.outcome is Outcome.SDC
        }
        plan = plan_protection(mixed_campaign, qualities, self._profile(), ed_tolerance=10)
        assert plan.protected_scopes == {}
        assert plan.runtime_overhead < 0.01
        assert plan.runtime_overhead < full_duplication_overhead()

    def test_critical_sdcs_protect_their_region(self, mixed_campaign):
        qualities = {
            index: SDCQuality(relative_l2_norm=90.0, egregious_degree=90)
            for index, result in enumerate(mixed_campaign.results)
            if result.outcome is Outcome.SDC
        }
        plan = plan_protection(mixed_campaign, qualities, self._profile(), ed_tolerance=10)
        # The critical SDCs came from imaging.warp sites: the warp scope
        # is duplicated, matching and the app code are not.
        assert any(scope.startswith("imaging") for scope in plan.protected_scopes)
        assert plan.runtime_overhead < full_duplication_overhead()
        assert plan.runtime_overhead == pytest.approx(0.005 + 0.5, abs=1e-6)

    def test_overhead_scales_with_tolerance(self, mixed_campaign):
        qualities = {
            index: SDCQuality(relative_l2_norm=15.0, egregious_degree=15)
            for index, result in enumerate(mixed_campaign.results)
            if result.outcome is Outcome.SDC
        }
        strict = plan_protection(mixed_campaign, qualities, self._profile(), ed_tolerance=5)
        lenient = plan_protection(mixed_campaign, qualities, self._profile(), ed_tolerance=20)
        assert strict.runtime_overhead >= lenient.runtime_overhead
