"""Tests for the top-level compare_outputs entry point."""

import numpy as np
import pytest

from repro.quality import compare_outputs


@pytest.fixture()
def panorama(rng):
    img = (70 + 110 * rng.random((90, 120))).astype(np.uint8)
    img[30:60, 40:90] = 220
    return img


class TestCompareOutputs:
    def test_identical_outputs_are_perfect(self, panorama):
        quality = compare_outputs(panorama, panorama.copy())
        assert quality.relative_l2_norm == 0.0
        assert quality.egregious_degree == 0

    def test_shape_mismatch_handled(self, panorama):
        taller = np.vstack([panorama, np.zeros((30, 120), dtype=np.uint8)])
        quality = compare_outputs(panorama, taller)
        # The extra blank band is below the 128 threshold against the
        # zero padding, so the outputs still compare as near-identical.
        assert quality.relative_l2_norm < 5.0

    def test_extra_content_detected(self, panorama):
        extra = np.vstack([panorama, np.full((30, 120), 200, dtype=np.uint8)])
        quality = compare_outputs(panorama, extra)
        assert quality.relative_l2_norm > 5.0

    def test_global_shift_mostly_forgiven(self, panorama):
        shifted = np.zeros_like(panorama)
        shifted[5:, 7:] = panorama[:-5, :-7]
        raw_quality = compare_outputs(panorama, shifted)
        blackout = np.zeros_like(panorama)
        blackout_quality = compare_outputs(panorama, blackout)
        # The aligner forgives the shift far more than a real blackout.
        assert raw_quality.relative_l2_norm < blackout_quality.relative_l2_norm * 0.7

    def test_localized_corruption_scored(self, panorama):
        corrupted = panorama.copy()
        corrupted[10:25, 10:40] = 0  # blacked-out block: diffs above 128
        quality = compare_outputs(panorama, corrupted)
        assert 0.0 < quality.relative_l2_norm
        assert not quality.egregious

    def test_monotone_in_corruption_extent(self, panorama):
        small = panorama.copy()
        small[:6, :6] = 255 - small[:6, :6]
        big = panorama.copy()
        big[:45, :60] = 255 - big[:45, :60]
        small_quality = compare_outputs(panorama, small)
        big_quality = compare_outputs(panorama, big)
        assert big_quality.relative_l2_norm >= small_quality.relative_l2_norm
