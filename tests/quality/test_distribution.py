"""Tests for ED distribution curves (Fig. 12 machinery)."""

import pytest

from repro.quality.distribution import build_curve
from repro.quality.metrics import SDCQuality


def quality(ed):
    if ed is None:
        return SDCQuality(relative_l2_norm=150.0, egregious_degree=None)
    return SDCQuality(relative_l2_norm=float(ed) + 0.5, egregious_degree=ed)


class TestEDCurve:
    def test_cdf_monotone(self):
        curve = build_curve("t", [quality(e) for e in (1, 5, 5, 9, 30)])
        xs, ys = curve.curve(max_ed=40)
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert ys[-1] == pytest.approx(100.0)

    def test_fraction_at_or_below(self):
        curve = build_curve("t", [quality(e) for e in (2, 4, 6, 8)])
        assert curve.fraction_at_or_below(5) == pytest.approx(50.0)
        assert curve.fraction_at_or_below(1) == 0.0
        assert curve.fraction_at_or_below(8) == pytest.approx(100.0)

    def test_egregious_caps_curve(self):
        qualities = [quality(3), quality(None), quality(None), quality(7)]
        curve = build_curve("t", qualities)
        assert curve.egregious_count == 2
        assert curve.fraction_at_or_below(100) == pytest.approx(50.0)

    def test_ed_at_fraction(self):
        curve = build_curve("t", [quality(e) for e in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)])
        assert curve.ed_at_fraction(80.0) == 8
        assert curve.ed_at_fraction(100.0) == 10

    def test_ed_at_fraction_unreachable(self):
        curve = build_curve("t", [quality(1), quality(None)])
        assert curve.ed_at_fraction(90.0) is None

    def test_empty_population(self):
        curve = build_curve("t", [])
        assert curve.fraction_at_or_below(50) == 0.0
        assert curve.ed_at_fraction(50) is None
