"""Tests for the SDC quality metric (relative L2 norm and ED)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quality.metrics import (
    EGREGIOUS_LIMIT,
    PIXEL_DIFF_THRESHOLD,
    assess_sdc,
    egregiousness_degree,
    l2_norm,
    pixel_128_diff,
    pixel_diff,
    relative_l2_norm,
)

u8_images = hnp.arrays(
    np.uint8, st.tuples(st.integers(1, 12), st.integers(1, 12)), elements=st.integers(0, 255)
)


class TestL2Norm:
    def test_zero_image(self):
        assert l2_norm(np.zeros((5, 5), dtype=np.uint8)) == 0.0

    def test_single_pixel(self):
        img = np.zeros((3, 3), dtype=np.uint8)
        img[1, 1] = 3
        assert l2_norm(img) == pytest.approx(3.0)

    def test_pythagorean(self):
        img = np.zeros((1, 2), dtype=np.uint8)
        img[0] = [3, 4]
        assert l2_norm(img) == pytest.approx(5.0)


class TestPixelDiff:
    def test_symmetric_absolute(self):
        a = np.full((2, 2), 10, dtype=np.uint8)
        b = np.full((2, 2), 250, dtype=np.uint8)
        assert np.all(pixel_diff(a, b) == 240)
        assert np.all(pixel_diff(b, a) == 240)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pixel_diff(np.zeros((2, 2), dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8))

    @given(u8_images)
    def test_diff_with_self_is_zero(self, img):
        assert np.all(pixel_diff(img, img) == 0)


class TestThresholdedDiff:
    def test_small_differences_dropped(self):
        golden = np.full((2, 2), 100, dtype=np.uint8)
        faulty = np.full((2, 2), 100 + PIXEL_DIFF_THRESHOLD, dtype=np.uint8)
        assert np.all(pixel_128_diff(golden, faulty) == 0)  # exactly 128: not > 128

    def test_large_differences_kept(self):
        golden = np.zeros((2, 2), dtype=np.uint8)
        faulty = np.full((2, 2), 200, dtype=np.uint8)
        assert np.all(pixel_128_diff(golden, faulty) == 200)

    @given(u8_images, u8_images.map(lambda a: a))
    def test_never_exceeds_raw_diff(self, a, b):
        if a.shape != b.shape:
            return
        assert np.all(pixel_128_diff(a, b) <= pixel_diff(a, b))


class TestRelativeL2:
    def test_identical_images_zero(self):
        img = np.full((4, 4), 200, dtype=np.uint8)
        assert relative_l2_norm(img, img) == 0.0

    def test_tolerates_small_deviations(self):
        golden = np.full((4, 4), 100, dtype=np.uint8)
        faulty = np.full((4, 4), 150, dtype=np.uint8)  # diff 50 < threshold
        assert relative_l2_norm(golden, faulty) == 0.0

    def test_blackout_is_large(self):
        golden = np.full((4, 4), 200, dtype=np.uint8)
        faulty = np.zeros((4, 4), dtype=np.uint8)
        assert relative_l2_norm(golden, faulty) == pytest.approx(100.0)

    def test_partial_corruption_scales(self):
        golden = np.full((10, 10), 200, dtype=np.uint8)
        faulty = golden.copy()
        faulty[:5, :] = 0  # half the image blacked out
        expected = 100.0 * np.sqrt(0.5)
        assert relative_l2_norm(golden, faulty) == pytest.approx(expected)

    def test_blank_golden_with_content(self):
        golden = np.zeros((4, 4), dtype=np.uint8)
        faulty = np.full((4, 4), 250, dtype=np.uint8)
        assert relative_l2_norm(golden, faulty) == float("inf")

    def test_blank_golden_blank_faulty(self):
        blank = np.zeros((4, 4), dtype=np.uint8)
        assert relative_l2_norm(blank, blank.copy()) == 0.0


class TestED:
    def test_floor_semantics(self):
        assert egregiousness_degree(10.25) == 10
        assert egregiousness_degree(10.99) == 10
        assert egregiousness_degree(0.0) == 0

    def test_egregious_above_limit(self):
        assert egregiousness_degree(EGREGIOUS_LIMIT + 0.1) is None
        assert egregiousness_degree(float("inf")) is None

    def test_limit_itself_has_ed(self):
        assert egregiousness_degree(100.0) == 100

    @given(st.floats(min_value=0, max_value=100))
    def test_ed_never_exceeds_norm(self, rel):
        ed = egregiousness_degree(rel)
        assert ed is not None
        assert ed <= rel < ed + 1


class TestAssess:
    def test_sdc_quality_fields(self):
        golden = np.full((4, 4), 200, dtype=np.uint8)
        faulty = golden.copy()
        faulty[0, 0] = 0
        quality = assess_sdc(golden, faulty)
        assert quality.relative_l2_norm == pytest.approx(25.0)
        assert quality.egregious_degree == 25
        assert not quality.egregious

    def test_egregious_flag(self):
        golden = np.zeros((4, 4), dtype=np.uint8)
        golden[0, 0] = 1
        faulty = np.full((4, 4), 255, dtype=np.uint8)
        quality = assess_sdc(golden, faulty)
        assert quality.egregious
