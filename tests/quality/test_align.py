"""Tests for the corrective alignment before image comparison."""

import numpy as np
import pytest

from repro.quality.align import (
    align_for_comparison,
    best_translation,
    gain_correct,
    pad_to_common,
)
from repro.quality.metrics import relative_l2_norm


@pytest.fixture()
def scene(rng):
    img = (rng.random((60, 80)) * 120 + 60).astype(np.uint8)
    img[20:40, 30:60] = 230
    img[5:12, 5:20] = 15
    return img


class TestPadding:
    def test_common_shape(self):
        a = np.ones((4, 9), dtype=np.uint8)
        b = np.ones((7, 5), dtype=np.uint8)
        pa, pb = pad_to_common(a, b)
        assert pa.shape == pb.shape == (7, 9)

    def test_content_anchored_top_left(self):
        a = np.full((2, 2), 9, dtype=np.uint8)
        pa, _pb = pad_to_common(a, np.zeros((4, 4), dtype=np.uint8))
        assert np.all(pa[:2, :2] == 9)
        assert np.all(pa[2:, :] == 0)


class TestGainCorrection:
    def test_removes_global_gain(self, scene):
        brighter = np.clip(scene.astype(float) * 1.3, 0, 255).astype(np.uint8)
        corrected = gain_correct(scene, brighter)
        assert abs(float(corrected.mean()) - float(scene.mean())) < 8.0

    def test_identity_when_equal(self, scene):
        corrected = gain_correct(scene, scene.copy())
        assert np.array_equal(corrected, scene)

    def test_blank_faulty_untouched(self, scene):
        blank = np.zeros_like(scene)
        assert np.array_equal(gain_correct(scene, blank), blank)


class TestTranslationSearch:
    def test_finds_planted_shift(self, scene):
        shifted = np.zeros_like(scene)
        shifted[6:, 9:] = scene[:-6, :-9]
        dy, dx = best_translation(scene, shifted)
        assert (dy, dx) == (-6, -9)

    def test_zero_shift_for_identical(self, scene):
        assert best_translation(scene, scene.copy()) == (0, 0)


class TestFullAlignment:
    def test_shifted_image_scores_near_zero(self, scene):
        shifted = np.zeros_like(scene)
        shifted[4:, 8:] = scene[:-4, :-8]
        golden_aligned, faulty_aligned = align_for_comparison(scene, shifted)
        # After alignment the deviation is only the border sliver.
        assert relative_l2_norm(golden_aligned, faulty_aligned) < 30.0

    def test_unaligned_comparison_would_be_large(self, scene):
        shifted = np.zeros_like(scene)
        shifted[4:, 8:] = scene[:-4, :-8]
        raw = relative_l2_norm(scene, shifted)
        golden_aligned, faulty_aligned = align_for_comparison(scene, shifted)
        aligned = relative_l2_norm(golden_aligned, faulty_aligned)
        assert aligned < raw

    def test_different_shapes_handled(self, scene):
        taller = np.vstack([scene, scene[:10]])
        golden_aligned, faulty_aligned = align_for_comparison(scene, taller)
        assert golden_aligned.shape == faulty_aligned.shape

    def test_genuine_corruption_not_hidden(self, scene):
        corrupted = scene.copy()
        corrupted[10:30, 10:30] = 255 - corrupted[10:30, 10:30]
        golden_aligned, faulty_aligned = align_for_comparison(scene, corrupted)
        assert relative_l2_norm(golden_aligned, faulty_aligned) > 5.0
