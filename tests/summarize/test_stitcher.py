"""Tests for pairwise estimation and the mini-panorama compositor."""

import numpy as np
import pytest

from repro.imaging.geometry import rotation, translation
from repro.imaging.warp import warp_perspective
from repro.runtime.errors import InsufficientMatchesError
from repro.summarize.config import VSConfig
from repro.summarize.stitcher import (
    MiniPanorama,
    estimate_pairwise,
    match_features,
    matching_subset,
)
from repro.vision.orb import FeatureSet, orb_features


@pytest.fixture()
def frame_pair(ctx, textured_image):
    """Two overlapping views of the same scene plus their features."""
    shifted = warp_perspective(
        textured_image, translation(7, 4) @ rotation(0.03, center=(80, 60)),
        textured_image.shape, ctx,
    )
    feats_a = orb_features(textured_image, ctx, n_keypoints=120, fast_threshold=10)
    feats_b = orb_features(shifted, ctx, n_keypoints=120, fast_threshold=10)
    return feats_b, feats_a  # (current, previous)


class TestMatchingSubset:
    def _features(self, n):
        return FeatureSet(
            coords=np.zeros((n, 2), dtype=np.int64),
            descriptors=np.zeros((n, 32), dtype=np.uint8),
            angles=np.zeros(n),
        )

    def test_full_fraction_is_identity(self):
        subset = matching_subset(self._features(10), 1.0)
        assert list(subset) == list(range(10))

    def test_third_takes_every_third(self):
        subset = matching_subset(self._features(9), 1 / 3)
        assert list(subset) == [0, 3, 6]

    def test_empty_features(self):
        assert matching_subset(self._features(0), 0.5).size == 0


class TestMatchFeatures:
    def test_kds_subsamples_current_only(self, ctx, frame_pair):
        current, previous = frame_pair
        config = VSConfig(keypoint_fraction=1 / 3)
        _matches, cur_subset, prev_subset = match_features(current, previous, config, ctx)
        assert len(cur_subset) == len(matching_subset(current, 1 / 3))
        assert len(prev_subset) == len(previous)

    def test_simple_matcher_dispatch(self, ctx, frame_pair):
        current, previous = frame_pair
        config = VSConfig(matcher="simple", sm_max_distance=20)
        matches, _cs, _ps = match_features(current, previous, config, ctx)
        assert np.all(matches.distance <= 20)


class TestEstimatePairwise:
    def test_recovers_alignment(self, ctx, rng, frame_pair):
        current, previous = frame_pair
        config = VSConfig()
        pairwise = estimate_pairwise(
            current, previous, config, ctx, rng, (120, 160)
        )
        assert pairwise.model_type in ("homography", "affine")
        assert pairwise.num_inliers >= config.min_inliers_affine
        # current -> previous should be roughly the inverse translation.
        offset = pairwise.transform[:2, 2]
        assert np.hypot(offset[0] + 7, offset[1] + 4) < 6.0

    def test_unrelated_frames_rejected(self, ctx, rng, textured_image):
        # A different random scene: no geometrically consistent matches.
        gen = np.random.default_rng(99)
        other = (40 + 170 * gen.random(textured_image.shape)).astype(np.uint8)
        for _ in range(60):
            x = int(gen.integers(5, 150))
            y = int(gen.integers(5, 110))
            other[y : y + 6, x : x + 6] = int(gen.integers(0, 256))
        feats_a = orb_features(textured_image, ctx, n_keypoints=80, fast_threshold=10)
        feats_b = orb_features(other, ctx, n_keypoints=80, fast_threshold=10)
        with pytest.raises(InsufficientMatchesError):
            estimate_pairwise(feats_b, feats_a, VSConfig(), ctx, rng, (120, 160))


class TestMiniPanorama:
    def test_canvas_sizing(self):
        mini = MiniPanorama((72, 96), VSConfig(canvas_scale=3.0))
        assert mini.canvas.shape == (216, 288)
        assert mini.coverage.shape == (216, 288)

    def test_anchor_placed_at_center(self, ctx):
        mini = MiniPanorama((72, 96), VSConfig())
        frame = np.full((72, 96), 150, dtype=np.uint8)
        mini.place_anchor(frame, ctx)
        center_y, center_x = 216 // 2, 288 // 2
        assert mini.coverage[center_y, center_x] == 255
        assert mini.coverage[0, 0] == 0

    def test_coverage_fraction_grows(self, ctx):
        mini = MiniPanorama((72, 96), VSConfig())
        frame = np.full((72, 96), 150, dtype=np.uint8)
        mini.place_anchor(frame, ctx)
        first = mini.coverage_fraction
        mini.add(frame, translation(40, 10) @ mini.anchor_transform, ctx)
        assert mini.coverage_fraction > first

    def test_validate_chain_accepts_sane(self, ctx):
        mini = MiniPanorama((72, 96), VSConfig())
        chain = mini.anchor_transform @ translation(5, 5)
        validated = mini.validate_chain(chain, (72, 96))
        assert validated.shape == (3, 3)

    def test_validate_chain_rejects_extreme_scale(self):
        mini = MiniPanorama((72, 96), VSConfig())
        with pytest.raises(InsufficientMatchesError):
            mini.validate_chain(mini.anchor_transform @ np.diag([10.0, 10.0, 1.0]), (72, 96))

    def test_validate_chain_rejects_offcanvas_center(self):
        mini = MiniPanorama((72, 96), VSConfig())
        with pytest.raises(InsufficientMatchesError):
            mini.validate_chain(translation(5000, 5000), (72, 96))

    def test_cropped_trims_blank(self, ctx):
        mini = MiniPanorama((72, 96), VSConfig())
        frame = np.full((72, 96), 150, dtype=np.uint8)
        mini.place_anchor(frame, ctx)
        cropped = mini.cropped()
        assert cropped.shape == (72, 96)

    def test_cropped_empty_canvas(self):
        mini = MiniPanorama((72, 96), VSConfig())
        assert mini.cropped().shape == (1, 1)
