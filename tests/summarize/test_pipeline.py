"""Tests for the end-to-end VS pipeline."""

import numpy as np
import pytest

from repro.runtime.context import ExecutionContext
from repro.summarize.approximations import kds_config, rfd_config, sm_config
from repro.summarize.config import VSConfig
from repro.summarize.golden import clear_golden_cache, golden_run
from repro.summarize.pipeline import run_vs
from repro.video.frames import FrameStream


class TestBaselineRun:
    def test_produces_panorama(self, tiny_stream2, tiny_config):
        result = run_vs(tiny_stream2, tiny_config, ExecutionContext())
        assert result.panorama.ndim == 2
        assert result.panorama.dtype == np.uint8
        assert np.count_nonzero(result.panorama) > 0

    def test_accounts_every_frame(self, tiny_stream2, tiny_config):
        result = run_vs(tiny_stream2, tiny_config, ExecutionContext())
        assert len(result.outcomes) == len(tiny_stream2)
        assert result.frames_stitched + result.frames_discarded == len(tiny_stream2)

    def test_redundant_input_stitches_most(self, tiny_stream2, tiny_config):
        result = run_vs(tiny_stream2, tiny_config, ExecutionContext())
        assert result.frames_stitched >= 0.7 * len(tiny_stream2)
        assert result.num_minis <= 2

    def test_busy_input_generates_more_minis(self, tiny_stream1, tiny_stream2, tiny_config):
        busy = run_vs(tiny_stream1, tiny_config, ExecutionContext())
        steady = run_vs(tiny_stream2, tiny_config, ExecutionContext())
        assert busy.num_minis >= steady.num_minis

    def test_deterministic(self, tiny_stream2, tiny_config):
        first = run_vs(tiny_stream2, tiny_config, ExecutionContext())
        second = run_vs(tiny_stream2, tiny_config, ExecutionContext())
        assert np.array_equal(first.panorama, second.panorama)

    def test_panorama_stacks_minis(self, tiny_stream1, tiny_config):
        result = run_vs(tiny_stream1, tiny_config, ExecutionContext())
        canvas_h = result.minis[0].canvas.shape[0]
        assert result.panorama.shape[0] == canvas_h * result.num_minis

    def test_empty_stream(self, tiny_config):
        result = run_vs(FrameStream("empty", []), tiny_config, ExecutionContext())
        assert result.panorama.shape == (1, 1)
        assert result.outcomes == []

    def test_cycles_recorded(self, tiny_stream2, tiny_config):
        ctx = ExecutionContext()
        result = run_vs(tiny_stream2, tiny_config, ctx)
        assert result.cycles == ctx.cycles > 0


class TestApproximations:
    def test_rfd_processes_fewer_frames(self, tiny_stream2):
        result = run_vs(tiny_stream2, rfd_config(drop_fraction=0.25), ExecutionContext())
        assert len(result.outcomes) == 12  # 16 * 0.75

    def test_rfd_deterministic_drop_pattern(self, tiny_stream2):
        config = rfd_config(drop_fraction=0.25)
        first = run_vs(tiny_stream2, config, ExecutionContext())
        second = run_vs(tiny_stream2, config, ExecutionContext())
        assert np.array_equal(first.panorama, second.panorama)

    def test_kds_runs(self, tiny_stream2):
        result = run_vs(tiny_stream2, kds_config(), ExecutionContext())
        assert result.frames_stitched > 0

    def test_kds_cheaper_matching(self, tiny_stream2, tiny_config):
        base_ctx = ExecutionContext()
        run_vs(tiny_stream2, tiny_config, base_ctx)
        kds_ctx = ExecutionContext()
        run_vs(tiny_stream2, kds_config(), kds_ctx)
        assert kds_ctx.cycles < base_ctx.cycles

    def test_sm_runs_and_differs(self, tiny_stream1, tiny_config):
        base = run_vs(tiny_stream1, tiny_config, ExecutionContext())
        sm = run_vs(tiny_stream1, sm_config(), ExecutionContext())
        assert sm.frames_stitched > 0
        # A different matching policy must not crash; outputs may differ.
        assert sm.panorama.dtype == np.uint8
        assert base.panorama.dtype == np.uint8


class TestGoldenRuns:
    def test_caching(self, tiny_stream2, tiny_config):
        first = golden_run(tiny_stream2, tiny_config)
        second = golden_run(tiny_stream2, tiny_config)
        assert first is second
        clear_golden_cache()
        third = golden_run(tiny_stream2, tiny_config)
        assert third is not first
        assert np.array_equal(third.output, first.output)

    def test_profile_attached(self, tiny_stream2, tiny_config):
        golden = golden_run(tiny_stream2, tiny_config)
        assert golden.total_cycles > 0
        assert golden.profile.total_cycles == golden.total_cycles

    def test_distinct_configs_cached_separately(self, tiny_stream2, tiny_config):
        base = golden_run(tiny_stream2, tiny_config)
        kds = golden_run(tiny_stream2, kds_config())
        assert base is not kds
        assert kds.config.name == "VS_KDS"
