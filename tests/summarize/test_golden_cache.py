"""Tests for the process-wide golden-run cache and its counters."""

import pytest

from repro.analysis.experiments import TINY, QUICK, fig06_output_quality, fig13_diff_visualization
from repro.summarize.approximations import config_for
from repro.summarize.golden import clear_golden_cache, golden_cache_stats, golden_run
from repro.video.synthetic import make_input1


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_golden_cache()
    yield
    clear_golden_cache()


class TestCacheCounters:
    def test_second_lookup_is_a_hit(self):
        stream = make_input1(n_frames=8)
        config = config_for("VS")
        first = golden_run(stream, config)
        second = golden_run(stream, config)
        assert first is second
        stats = golden_cache_stats()
        assert stats.computes == 1
        assert stats.hits == 1

    def test_uncached_path_does_not_populate(self):
        stream = make_input1(n_frames=8)
        config = config_for("VS")
        golden_run(stream, config, use_cache=False)
        assert golden_cache_stats().computes == 1
        golden_run(stream, config)
        assert golden_cache_stats().computes == 2


class TestScaleAwareKey:
    def test_same_input_name_different_scale_does_not_collide(self):
        """TINY and QUICK both name their stream ``input1``; the cache
        must key on the stream's actual size, not just its name."""
        config = config_for("VS")
        tiny = golden_run(make_input1(n_frames=TINY.n_frames), config)
        quick = golden_run(make_input1(n_frames=QUICK.n_frames), config)
        assert golden_cache_stats().computes == 2
        assert tiny.total_cycles != quick.total_cycles


class TestFigureEntryPointsShareGoldens:
    def test_shared_cells_computed_exactly_once(self):
        """fig06 and fig13 overlap on the (input, VS) and (input, VS_SM)
        cells; across both entry points each distinct cell must be
        computed exactly once (2 inputs x 4 algorithms = 8)."""
        fig06_output_quality(TINY)
        computes_after_fig06 = golden_cache_stats().computes
        assert computes_after_fig06 == 8
        fig13_diff_visualization(TINY)
        stats = golden_cache_stats()
        assert stats.computes == 8  # fig13's four cells were all hits
        assert stats.hits >= 4
