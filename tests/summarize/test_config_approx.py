"""Tests for VSConfig and the approximation factories."""

import pytest

from repro.summarize.approximations import (
    ALGORITHM_FACTORIES,
    baseline_config,
    config_for,
    kds_config,
    rfd_config,
    sm_config,
)
from repro.summarize.config import VSConfig


class TestVSConfig:
    def test_defaults_are_baseline(self):
        config = VSConfig()
        assert config.name == "VS"
        assert config.drop_fraction == 0.0
        assert config.keypoint_fraction == 1.0
        assert config.matcher == "ratio"

    def test_rejects_unknown_matcher(self):
        with pytest.raises(ValueError):
            VSConfig(matcher="magic")

    def test_rejects_bad_drop_fraction(self):
        with pytest.raises(ValueError):
            VSConfig(drop_fraction=1.0)
        with pytest.raises(ValueError):
            VSConfig(drop_fraction=-0.1)

    def test_rejects_bad_keypoint_fraction(self):
        with pytest.raises(ValueError):
            VSConfig(keypoint_fraction=0.0)
        with pytest.raises(ValueError):
            VSConfig(keypoint_fraction=1.5)

    def test_rejects_small_canvas(self):
        with pytest.raises(ValueError):
            VSConfig(canvas_scale=0.5)

    def test_frozen(self):
        config = VSConfig()
        with pytest.raises(Exception):
            config.name = "other"

    def test_with_name(self):
        renamed = VSConfig().with_name("VS_X")
        assert renamed.name == "VS_X"
        assert renamed.drop_fraction == VSConfig().drop_fraction


class TestFactories:
    def test_four_algorithms(self):
        assert list(ALGORITHM_FACTORIES) == ["VS", "VS_RFD", "VS_KDS", "VS_SM"]

    def test_rfd_drops_ten_percent(self):
        assert rfd_config().drop_fraction == pytest.approx(0.10)
        assert rfd_config().name == "VS_RFD"

    def test_kds_matches_a_third(self):
        assert kds_config().keypoint_fraction == pytest.approx(1 / 3)

    def test_sm_uses_simple_matcher(self):
        config = sm_config()
        assert config.matcher == "simple"
        assert config.sm_max_distance > 0

    def test_baseline_is_precise(self):
        config = baseline_config()
        assert config.drop_fraction == 0.0
        assert config.keypoint_fraction == 1.0

    def test_config_for_dispatch(self):
        assert config_for("VS_KDS").name == "VS_KDS"
        with pytest.raises(ValueError):
            config_for("VS_UNKNOWN")

    def test_overrides_forwarded(self):
        config = config_for("VS_RFD", n_keypoints=33)
        assert config.n_keypoints == 33
        assert config.drop_fraction == pytest.approx(0.10)
