"""Tests for the per-frame chain transforms the pipeline records."""

import numpy as np
import pytest

from repro.imaging.geometry import apply_transform
from repro.runtime.context import ExecutionContext
from repro.summarize import baseline_config, run_vs


@pytest.fixture(scope="module")
def result(tiny_stream2_module, tiny_config_module):
    return run_vs(tiny_stream2_module, tiny_config_module, ExecutionContext())


@pytest.fixture(scope="module")
def tiny_stream2_module():
    from repro.video.synthetic import make_input2

    return make_input2(n_frames=16)


@pytest.fixture(scope="module")
def tiny_config_module():
    return baseline_config()


class TestChainRecording:
    def test_every_composited_frame_has_a_chain(self, result):
        for outcome in result.outcomes:
            if outcome.status in ("anchor", "stitched"):
                assert outcome.chain is not None
                assert outcome.chain.shape == (3, 3)
                assert 0 <= outcome.mini_index < result.num_minis
            else:
                assert outcome.chain is None

    def test_anchor_chain_is_translation(self, result):
        anchors = [o for o in result.outcomes if o.status == "anchor"]
        assert anchors
        for anchor in anchors:
            chain = anchor.chain
            assert np.allclose(chain[0, :2], [1, 0], atol=1e-9)
            assert np.allclose(chain[1, :2], [0, 1], atol=1e-9)
            assert np.allclose(chain[2], [0, 0, 1], atol=1e-9)

    def test_chains_project_into_canvas(self, result):
        frame_h, frame_w = 72, 96
        for outcome in result.outcomes:
            if outcome.chain is None:
                continue
            mini = result.minis[outcome.mini_index]
            center = apply_transform(
                outcome.chain, np.array([[frame_w / 2, frame_h / 2]])
            )[0]
            assert 0 <= center[0] < mini.canvas_w
            assert 0 <= center[1] < mini.canvas_h

    def test_consecutive_chains_are_close(self, result):
        """Successive stitched frames of a slow sweep sit near each other."""
        frame_h, frame_w = 72, 96
        centers = {}
        for outcome in result.outcomes:
            if outcome.chain is None:
                continue
            centers[outcome.index] = (
                outcome.mini_index,
                apply_transform(outcome.chain, np.array([[frame_w / 2, frame_h / 2]]))[0],
            )
        indices = sorted(centers)
        for a, b in zip(indices, indices[1:]):
            mini_a, center_a = centers[a]
            mini_b, center_b = centers[b]
            if mini_a != mini_b or b - a > 2:
                continue
            assert np.linalg.norm(center_b - center_a) < 30.0
