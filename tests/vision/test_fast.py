"""Tests for the FAST-9 corner detector."""

import numpy as np
import pytest

from repro.vision.fast import BORDER, CIRCLE_OFFSETS, Keypoint, detect_fast


def stamp_corner(image: np.ndarray, x: int, y: int, bright: int = 220) -> None:
    """Paint a solid quadrant whose corner sits at (x, y)."""
    image[y:, x:] = bright


class TestCircleGeometry:
    def test_sixteen_offsets(self):
        assert len(CIRCLE_OFFSETS) == 16

    def test_radius_three(self):
        for dx, dy in CIRCLE_OFFSETS:
            assert 2.8 <= np.hypot(dx, dy) <= 3.2

    def test_offsets_unique(self):
        assert len(set(CIRCLE_OFFSETS)) == 16


class TestDetect:
    def test_finds_strong_corner(self, ctx):
        img = np.full((40, 40), 50, dtype=np.uint8)
        stamp_corner(img, 20, 20)
        keypoints = detect_fast(img, ctx, threshold=20)
        assert keypoints, "no keypoints found"
        best = keypoints[0]
        assert abs(best.x - 20) <= 2 and abs(best.y - 20) <= 2

    def test_flat_image_has_no_corners(self, ctx):
        img = np.full((40, 40), 128, dtype=np.uint8)
        assert detect_fast(img, ctx) == []

    def test_straight_edge_is_not_a_corner(self, ctx):
        img = np.full((40, 40), 50, dtype=np.uint8)
        img[:, 20:] = 220  # vertical step edge
        keypoints = detect_fast(img, ctx, threshold=20)
        assert keypoints == []

    def test_keypoints_respect_border(self, ctx, textured_image):
        for kp in detect_fast(textured_image, ctx, threshold=15):
            assert BORDER <= kp.x < textured_image.shape[1] - BORDER
            assert BORDER <= kp.y < textured_image.shape[0] - BORDER

    def test_sorted_by_score(self, ctx, textured_image):
        keypoints = detect_fast(textured_image, ctx, threshold=15)
        scores = [kp.score for kp in keypoints]
        assert scores == sorted(scores, reverse=True)

    def test_higher_threshold_fewer_keypoints(self, ctx, textured_image):
        low = detect_fast(textured_image, ctx, threshold=10)
        high = detect_fast(textured_image, ctx, threshold=40)
        assert len(high) <= len(low)

    def test_tiny_image_is_empty(self, ctx):
        assert detect_fast(np.zeros((5, 5), dtype=np.uint8), ctx) == []

    def test_charges_cycles(self, textured_image):
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        detect_fast(textured_image, ctx)
        assert ctx.cycles > 0

    def test_deterministic(self, textured_image):
        from repro.runtime.context import ExecutionContext

        first = detect_fast(textured_image, ExecutionContext(), threshold=12)
        second = detect_fast(textured_image, ExecutionContext(), threshold=12)
        assert first == second

    def test_inverted_corner_also_detected(self, ctx):
        img = np.full((40, 40), 220, dtype=np.uint8)
        img[20:, 20:] = 30  # dark quadrant: darker-arc corner
        keypoints = detect_fast(img, ctx, threshold=20)
        assert keypoints


class TestNMS:
    def test_single_maximum_per_neighbourhood(self, ctx):
        img = np.full((40, 40), 60, dtype=np.uint8)
        stamp_corner(img, 15, 15, bright=230)
        keypoints = detect_fast(img, ctx, threshold=20, nms_radius=2)
        coords = [(kp.x, kp.y) for kp in keypoints]
        for i, (x1, y1) in enumerate(coords):
            for x2, y2 in coords[i + 1 :]:
                assert max(abs(x1 - x2), abs(y1 - y2)) > 1


class TestKeypointDataclass:
    def test_frozen(self):
        kp = Keypoint(1, 2, 3.0)
        with pytest.raises(AttributeError):
            kp.x = 9
