"""Tests for the FAST-9 corner detector."""

import numpy as np
import pytest

from repro.vision.fast import BORDER, CIRCLE_OFFSETS, Keypoint, detect_fast


def stamp_corner(image: np.ndarray, x: int, y: int, bright: int = 220) -> None:
    """Paint a solid quadrant whose corner sits at (x, y)."""
    image[y:, x:] = bright


class TestCircleGeometry:
    def test_sixteen_offsets(self):
        assert len(CIRCLE_OFFSETS) == 16

    def test_radius_three(self):
        for dx, dy in CIRCLE_OFFSETS:
            assert 2.8 <= np.hypot(dx, dy) <= 3.2

    def test_offsets_unique(self):
        assert len(set(CIRCLE_OFFSETS)) == 16


class TestDetect:
    def test_finds_strong_corner(self, ctx):
        img = np.full((40, 40), 50, dtype=np.uint8)
        stamp_corner(img, 20, 20)
        keypoints = detect_fast(img, ctx, threshold=20)
        assert keypoints, "no keypoints found"
        best = keypoints[0]
        assert abs(best.x - 20) <= 2 and abs(best.y - 20) <= 2

    def test_flat_image_has_no_corners(self, ctx):
        img = np.full((40, 40), 128, dtype=np.uint8)
        assert detect_fast(img, ctx) == []

    def test_straight_edge_is_not_a_corner(self, ctx):
        img = np.full((40, 40), 50, dtype=np.uint8)
        img[:, 20:] = 220  # vertical step edge
        keypoints = detect_fast(img, ctx, threshold=20)
        assert keypoints == []

    def test_keypoints_respect_border(self, ctx, textured_image):
        for kp in detect_fast(textured_image, ctx, threshold=15):
            assert BORDER <= kp.x < textured_image.shape[1] - BORDER
            assert BORDER <= kp.y < textured_image.shape[0] - BORDER

    def test_sorted_by_score(self, ctx, textured_image):
        keypoints = detect_fast(textured_image, ctx, threshold=15)
        scores = [kp.score for kp in keypoints]
        assert scores == sorted(scores, reverse=True)

    def test_higher_threshold_fewer_keypoints(self, ctx, textured_image):
        low = detect_fast(textured_image, ctx, threshold=10)
        high = detect_fast(textured_image, ctx, threshold=40)
        assert len(high) <= len(low)

    def test_tiny_image_is_empty(self, ctx):
        assert detect_fast(np.zeros((5, 5), dtype=np.uint8), ctx) == []

    def test_charges_cycles(self, textured_image):
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        detect_fast(textured_image, ctx)
        assert ctx.cycles > 0

    def test_deterministic(self, textured_image):
        from repro.runtime.context import ExecutionContext

        first = detect_fast(textured_image, ExecutionContext(), threshold=12)
        second = detect_fast(textured_image, ExecutionContext(), threshold=12)
        assert first == second

    def test_inverted_corner_also_detected(self, ctx):
        img = np.full((40, 40), 220, dtype=np.uint8)
        img[20:, 20:] = 30  # dark quadrant: darker-arc corner
        keypoints = detect_fast(img, ctx, threshold=20)
        assert keypoints


class TestNMS:
    def test_single_maximum_per_neighbourhood(self, ctx):
        img = np.full((40, 40), 60, dtype=np.uint8)
        stamp_corner(img, 15, 15, bright=230)
        keypoints = detect_fast(img, ctx, threshold=20, nms_radius=2)
        coords = [(kp.x, kp.y) for kp in keypoints]
        for i, (x1, y1) in enumerate(coords):
            for x2, y2 in coords[i + 1 :]:
                assert max(abs(x1 - x2), abs(y1 - y2)) > 1


def _reference_contiguous_arc(flags: np.ndarray, arc: int) -> np.ndarray:
    """The original windowed-``all`` formulation, kept as the oracle."""
    wrapped = np.concatenate([flags, flags[: arc - 1]], axis=0)
    result = np.zeros(flags.shape[1:], dtype=bool)
    for start in range(16):
        result |= wrapped[start : start + arc].all(axis=0)
    return result


def _reference_nms(score: np.ndarray, radius: int) -> np.ndarray:
    """The original O((2r+1)^2) shifted-copy NMS, kept as the oracle."""
    if radius < 1:
        return score > 0
    padded = np.pad(score, radius, mode="constant", constant_values=-np.inf)
    best = np.full_like(score, -np.inf)
    size = 2 * radius + 1
    for dy in range(size):
        for dx in range(size):
            neighbour = padded[dy : dy + score.shape[0], dx : dx + score.shape[1]]
            np.maximum(best, neighbour, out=best)
    return (score > 0) & (score >= best)


class TestVectorizedRewrites:
    """The cumsum arc test and separable NMS must equal the originals."""

    def test_contiguous_arc_matches_reference(self):
        from repro.vision.fast import _contiguous_arc

        gen = np.random.default_rng(99)
        for density in (0.3, 0.6, 0.9):
            flags = gen.random((16, 25, 35)) < density
            for arc in (2, 9, 15, 16):
                assert np.array_equal(
                    _contiguous_arc(flags, arc), _reference_contiguous_arc(flags, arc)
                )

    def test_nms_matches_reference(self):
        from repro.vision.fast import _nms

        gen = np.random.default_rng(123)
        for _ in range(5):
            score = np.where(
                gen.random((33, 47)) < 0.25, gen.random((33, 47)) * 100, 0.0
            )
            for radius in (0, 1, 2, 4):
                assert np.array_equal(_nms(score, radius), _reference_nms(score, radius))

    def test_detect_identical_keypoints_on_random_images(self, ctx):
        """End-to-end: detection on random images must be unchanged by
        the rewrites (keypoints re-derived from the reference kernels)."""
        from repro.vision.fast import ARC_LENGTH, _circle_stack, detect_fast

        gen = np.random.default_rng(7)
        for trial in range(3):
            image = (gen.random((48, 64)) * 255).astype(np.uint8)
            keypoints = detect_fast(image, ctx, threshold=12, nms_radius=1)

            image_f = image.astype(np.float64)
            h, w = image_f.shape
            center = image_f[BORDER : h - BORDER, BORDER : w - BORDER]
            circle = _circle_stack(image_f)
            brighter = circle > center + 12.0
            darker = circle < center - 12.0
            is_corner = _reference_contiguous_arc(
                brighter, ARC_LENGTH
            ) | _reference_contiguous_arc(darker, ARC_LENGTH)
            over = np.maximum(np.abs(circle - center) - 12.0, 0.0)
            score = np.where(is_corner, over.sum(axis=0), 0.0)
            keep = _reference_nms(score, 1)
            ys, xs = np.nonzero(keep)
            expected = {
                (int(x) + BORDER, int(y) + BORDER, float(score[y, x]))
                for x, y in zip(xs, ys)
            }
            assert {(kp.x, kp.y, kp.score) for kp in keypoints} == expected


class TestKeypointDataclass:
    def test_frozen(self):
        kp = Keypoint(1, 2, 3.0)
        with pytest.raises(AttributeError):
            kp.x = 9
