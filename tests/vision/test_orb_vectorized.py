"""Bit-identity of the vectorized ORB front-end kernels.

``orientation_angles`` and the FAST post-processing in ``_orb_features``
were rewritten from per-keypoint Python loops into batched array ops.
These tests pin them against brute-force reference implementations of
the original loops — equality is exact (``array_equal``), not
approximate, because the golden-run caches and the fault-injection
equivalence suite both assume byte-stable outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.context import ExecutionContext
from repro.vision.fast import detect_fast, detect_fast_arrays
from repro.vision.orb import (
    CENTROID_RADIUS,
    ORB_BORDER,
    orb_features,
    orientation_angles,
)


def _reference_orientation(image_f: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """The original per-keypoint intensity-centroid loop, verbatim."""
    radius = CENTROID_RADIUS
    offsets = np.arange(-radius, radius + 1)
    oy, ox = np.meshgrid(offsets, offsets, indexing="ij")
    disk = (ox**2 + oy**2) <= radius**2
    angles = np.empty(coords.shape[0], dtype=np.float64)
    for index, (x, y) in enumerate(coords):
        patch = image_f[y - radius : y + radius + 1, x - radius : x + radius + 1]
        masked = patch * disk
        m10 = float((masked * ox).sum())
        m01 = float((masked * oy).sum())
        angles[index] = float(np.arctan2(m01, m10))
    return angles


class TestOrientationVectorized:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_matches_bruteforce_bit_for_bit(self, seed):
        rng = np.random.default_rng(seed)
        image = rng.random((90, 130)) * 255.0
        n = 64
        coords = np.stack(
            [
                rng.integers(CENTROID_RADIUS, 130 - CENTROID_RADIUS, n),
                rng.integers(CENTROID_RADIUS, 90 - CENTROID_RADIUS, n),
            ],
            axis=1,
        ).astype(np.int64)
        reference = _reference_orientation(image, coords)
        vectorized = orientation_angles(image, coords)
        assert vectorized.dtype == np.float64
        assert np.array_equal(reference, vectorized)

    def test_border_hugging_patches(self):
        rng = np.random.default_rng(3)
        image = rng.random((40, 40)) * 255.0
        r = CENTROID_RADIUS
        corners = np.array(
            [[r, r], [39 - r, r], [r, 39 - r], [39 - r, 39 - r]], dtype=np.int64
        )
        assert np.array_equal(
            _reference_orientation(image, corners), orientation_angles(image, corners)
        )

    def test_empty_coords(self):
        image = np.zeros((30, 30))
        angles = orientation_angles(image, np.zeros((0, 2), dtype=np.int64))
        assert angles.shape == (0,)
        assert angles.dtype == np.float64


class TestDetectFastArrays:
    def test_arrays_match_keypoint_list(self, textured_image):
        coords, scores = detect_fast_arrays(
            textured_image, ExecutionContext(), threshold=15
        )
        keypoints = detect_fast(textured_image, ExecutionContext(), threshold=15)
        assert coords.shape == (len(keypoints), 2)
        assert coords.dtype == np.int64
        assert scores.dtype == np.float64
        for (x, y), s, kp in zip(coords, scores, keypoints):
            assert (int(x), int(y), float(s)) == (kp.x, kp.y, kp.score)

    def test_empty_image(self):
        coords, scores = detect_fast_arrays(
            np.zeros((5, 5), dtype=np.uint8), ExecutionContext()
        )
        assert coords.shape == (0, 2)
        assert scores.shape == (0,)

    def test_outputs_contiguous(self, textured_image):
        coords, scores = detect_fast_arrays(textured_image, ExecutionContext())
        assert coords.flags["C_CONTIGUOUS"]
        assert scores.flags["C_CONTIGUOUS"]


class TestOrbRankingVectorized:
    def test_selection_matches_object_sort(self, textured_image):
        """The stable argsort ranking must reproduce the original stable
        Python sort over keypoint objects, including tie-breaking by
        FAST rank order.
        """
        from repro.imaging.filters import harris_response

        h, w = textured_image.shape
        keypoints = detect_fast(textured_image, ExecutionContext(), threshold=20)
        in_bounds = [
            kp
            for kp in keypoints
            if ORB_BORDER <= kp.x < w - ORB_BORDER and ORB_BORDER <= kp.y < h - ORB_BORDER
        ]
        response = harris_response(textured_image)
        ranked = sorted(in_bounds, key=lambda kp: -response[kp.y, kp.x])
        expected = np.array([[kp.x, kp.y] for kp in ranked[:50]], dtype=np.int64)

        features = orb_features(textured_image, ExecutionContext(), n_keypoints=50)
        assert np.array_equal(features.coords, expected)

    def test_coords_contiguous_int64(self, textured_image):
        features = orb_features(textured_image, ExecutionContext(), n_keypoints=30)
        assert features.coords.dtype == np.int64
        assert features.coords.flags["C_CONTIGUOUS"]
