"""Tests for affine estimation."""

import numpy as np
import pytest

from repro.imaging.geometry import apply_transform, rotation, scaling, translation
from repro.runtime.errors import DegenerateModelError, InternalAbortError
from repro.vision.affine import (
    affine_residuals,
    estimate_affine,
    solve_affines_batched,
)


def planted_affine():
    return translation(4, -7) @ rotation(0.3) @ scaling(1.2, 0.9)


class TestEstimateAffine:
    def test_recovers_planted(self, rng):
        mat = planted_affine()
        src = rng.uniform(0, 100, (10, 2))
        dst = apply_transform(mat, src)
        estimated = estimate_affine(src, dst)
        assert np.allclose(estimated, mat, atol=1e-8)

    def test_last_row_is_affine(self, rng):
        src = rng.uniform(0, 100, (10, 2))
        estimated = estimate_affine(src, src + 2.0)
        assert np.allclose(estimated[2], [0, 0, 1])

    def test_minimum_three_points(self, rng):
        src = rng.uniform(0, 100, (3, 2))
        dst = apply_transform(planted_affine(), src)
        estimated = estimate_affine(src, dst)
        assert np.allclose(estimated, planted_affine(), atol=1e-8)

    def test_too_few_points_abort(self, rng):
        src = rng.uniform(0, 100, (2, 2))
        with pytest.raises(InternalAbortError):
            estimate_affine(src, src)

    def test_collinear_degenerate(self):
        xs = np.linspace(0, 10, 5)
        src = np.stack([xs, xs], axis=1)
        with pytest.raises(DegenerateModelError):
            estimate_affine(src, src)

    def test_noise_tolerance(self, rng):
        mat = planted_affine()
        src = rng.uniform(0, 100, (50, 2))
        dst = apply_transform(mat, src) + rng.normal(0, 0.1, (50, 2))
        estimated = estimate_affine(src, dst)
        assert affine_residuals(estimated, src, dst).mean() < 0.5


class TestBatchedAffine:
    def test_solves_triples(self, rng):
        mat = planted_affine()
        src = rng.uniform(0, 100, (5, 3, 2))
        dst = np.stack([apply_transform(mat, triple) for triple in src])
        models, ok = solve_affines_batched(src, dst)
        assert ok.all()
        for model in models:
            assert np.allclose(model, mat, atol=1e-6)

    def test_collinear_flagged(self, rng):
        src = rng.uniform(0, 100, (2, 3, 2))
        src[0, 1] = src[0, 0]  # coincident pair -> singular system
        models, ok = solve_affines_batched(src, src.copy())
        assert not bool(ok[0]) and bool(ok[1])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_affines_batched(np.zeros((2, 4, 2)), np.zeros((2, 4, 2)))


class TestResiduals:
    def test_exact_zero(self, rng):
        mat = planted_affine()
        src = rng.uniform(0, 100, (8, 2))
        dst = apply_transform(mat, src)
        assert affine_residuals(mat, src, dst).max() < 1e-9

    def test_known_offset(self):
        src = np.array([[0.0, 0.0]])
        dst = np.array([[3.0, 4.0]])
        assert affine_residuals(np.eye(3), src, dst)[0] == pytest.approx(5.0)
