"""Property-based regression tests for the vectorized Hamming popcount.

The uint64-lane fast path in :mod:`repro.vision.matching` must be
bit-for-bit equivalent to the per-byte lookup-table reference for every
descriptor shape it can encounter — including the shapes that force the
fallback (odd widths, non-contiguous row views) and the empty edge
cases.  Hypothesis drives the shape/content space; the byte table
``_POPCOUNT`` is the independent oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.context import ExecutionContext
from repro.vision.matching import (
    _POPCOUNT,
    _as_words,
    _popcount_words,
    hamming_distance_matrix,
)


def _reference_hamming(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """O(n1*n2*width) byte-table reference, independent of the fast path."""
    if first.shape[0] == 0 or second.shape[0] == 0:
        return np.zeros((first.shape[0], second.shape[0]), dtype=np.int64)
    xor = first[:, np.newaxis, :] ^ second[np.newaxis, :, :]
    return _POPCOUNT[xor].sum(axis=2, dtype=np.int64)


def _random_descriptors(rng: np.random.Generator, rows: int, width: int) -> np.ndarray:
    return rng.integers(0, 256, size=(rows, width), dtype=np.uint8)


@st.composite
def descriptor_pairs(draw):
    """Two descriptor tables of a shared width, biased toward edge shapes."""
    width = draw(st.sampled_from([1, 3, 7, 8, 16, 24, 31, 32, 33, 40, 64]))
    n1 = draw(st.integers(min_value=0, max_value=40))
    n2 = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    return _random_descriptors(rng, n1, width), _random_descriptors(rng, n2, width)


class TestHammingMatrixProperties:
    @settings(deadline=None, max_examples=120)
    @given(descriptor_pairs())
    def test_matches_byte_table_reference(self, pair):
        first, second = pair
        ctx = ExecutionContext()
        got = hamming_distance_matrix(first, second, ctx)
        expected = _reference_hamming(first, second)
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    @settings(deadline=None, max_examples=60)
    @given(descriptor_pairs())
    def test_symmetry_and_self_distance(self, pair):
        first, second = pair
        ctx = ExecutionContext()
        forward = hamming_distance_matrix(first, second, ctx)
        backward = hamming_distance_matrix(second, first, ctx)
        assert np.array_equal(forward, backward.T)
        self_dist = hamming_distance_matrix(first, first, ctx)
        assert np.array_equal(np.diag(self_dist), np.zeros(first.shape[0], dtype=np.int64))

    @settings(deadline=None, max_examples=60)
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_non_contiguous_views_fall_back_correctly(self, n1, n2, seed):
        """Column-sliced (non-contiguous) rows must take the byte path."""
        rng = np.random.default_rng(seed)
        wide_first = _random_descriptors(rng, n1, 64)
        wide_second = _random_descriptors(rng, n2, 64)
        first = wide_first[:, ::2]  # 32 bytes wide but stride 2: no uint64 view
        second = wide_second[:, ::2]
        assert _as_words(first) is None
        got = hamming_distance_matrix(first, second, ExecutionContext())
        assert np.array_equal(got, _reference_hamming(first, second))

    def test_empty_both_sides(self):
        ctx = ExecutionContext()
        empty = np.zeros((0, 32), dtype=np.uint8)
        some = np.ones((3, 32), dtype=np.uint8)
        assert hamming_distance_matrix(empty, some, ctx).shape == (0, 3)
        assert hamming_distance_matrix(some, empty, ctx).shape == (3, 0)
        assert hamming_distance_matrix(empty, empty, ctx).shape == (0, 0)


class TestPopcountWords:
    @settings(deadline=None, max_examples=100)
    @given(
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_word_popcount_matches_byte_table(self, count, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**63, size=count, dtype=np.uint64) * 2 + rng.integers(
            0, 2, size=count, dtype=np.uint64
        )
        got = _popcount_words(words).astype(np.int64)
        expected = _POPCOUNT[words.view(np.uint8)].reshape(count, 8).sum(axis=1)
        assert np.array_equal(got, expected.astype(np.int64))

    def test_extremes(self):
        words = np.array([0, np.iinfo(np.uint64).max, 1, 1 << 63], dtype=np.uint64)
        assert _popcount_words(words).tolist() == [0, 64, 1, 1]


class TestAsWords:
    @pytest.mark.parametrize("width", [1, 7, 9, 31, 33])
    def test_odd_widths_have_no_word_view(self, width):
        desc = np.zeros((4, width), dtype=np.uint8)
        assert _as_words(desc) is None

    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_aligned_widths_view_in_place(self, width):
        desc = np.arange(4 * width, dtype=np.uint8).reshape(4, width)
        words = _as_words(desc)
        assert words is not None
        assert words.shape == (4, width // 8)
        # It must be a *view*: in-place corruption stays visible.
        desc[0, 0] ^= 0xFF
        assert words.view(np.uint8)[0, 0] == desc[0, 0]
