"""Designed-corruption tests for the matcher's failure semantics."""

import numpy as np
import pytest

from repro.runtime.context import ExecutionContext
from repro.runtime.errors import SegmentationFault
from repro.vision.matching import hamming_distance_matrix


class CellCorruptor:
    """Fires once: overwrites a named bound cell at the first checkpoint."""

    def __init__(self, name, value, fire_at_visit=1):
        self.name = name
        self.value = value
        self.fire_at_visit = fire_at_visit
        self.visits = 0
        self.fired = False

    @property
    def observing(self):
        return not self.fired

    def visit(self, ctx, window):
        self.visits += 1
        if self.visits < self.fire_at_visit:
            return
        for binding in window.bindings:
            if binding.name == self.name and hasattr(binding, "cell"):
                binding.cell.value = self.value
                self.fired = True
                return


@pytest.fixture()
def descriptors(rng):
    a = rng.integers(0, 256, (70, 32)).astype(np.uint8)
    b = rng.integers(0, 256, (50, 32)).astype(np.uint8)
    return a, b


class TestMatchRowCorruption:
    def test_negative_row_segfaults(self, descriptors):
        a, b = descriptors
        ctx = ExecutionContext(injector=CellCorruptor("match_row", -3))
        with pytest.raises(SegmentationFault):
            hamming_distance_matrix(a, b, ctx)

    def test_huge_row_bound_segfaults(self, descriptors):
        a, b = descriptors
        ctx = ExecutionContext(injector=CellCorruptor("match_rows_end", 1 << 30))
        with pytest.raises(SegmentationFault):
            hamming_distance_matrix(a, b, ctx)

    def test_shortened_bound_leaves_rows_uncomputed(self, descriptors):
        a, b = descriptors
        clean = hamming_distance_matrix(a, b, ExecutionContext())
        ctx = ExecutionContext(injector=CellCorruptor("match_rows_end", 20))
        corrupted = hamming_distance_matrix(a, b, ctx)
        assert np.array_equal(corrupted[:20], clean[:20])
        assert np.all(corrupted[40:] == 0)  # never computed

    def test_backward_row_jump_masks(self, descriptors):
        a, b = descriptors
        clean = hamming_distance_matrix(a, b, ExecutionContext())
        # Jumping the row counter backwards recomputes identical rows.
        ctx = ExecutionContext(injector=CellCorruptor("match_row", 0, fire_at_visit=2))
        corrupted = hamming_distance_matrix(a, b, ctx)
        assert np.array_equal(clean, corrupted)
