"""Tests for homography estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.geometry import apply_transform, rotation, scaling, translation
from repro.runtime.errors import DegenerateModelError, InternalAbortError
from repro.vision.homography import (
    estimate_homography,
    homography_residuals,
    solve_homographies_batched,
)


def sample_points(rng, n=12):
    return rng.uniform(0, 100, (n, 2))


def planted_homography():
    mat = translation(8, -3) @ rotation(0.2, center=(50, 50)) @ scaling(1.1)
    mat[2, 0] = 1e-4
    return mat / mat[2, 2]


class TestEstimate:
    def test_recovers_planted_transform(self, rng):
        mat = planted_homography()
        src = sample_points(rng)
        dst = apply_transform(mat, src)
        estimated = estimate_homography(src, dst)
        assert np.allclose(estimated, mat, atol=1e-6)

    def test_zero_residuals_on_exact_data(self, rng):
        mat = planted_homography()
        src = sample_points(rng)
        dst = apply_transform(mat, src)
        estimated = estimate_homography(src, dst)
        assert homography_residuals(estimated, src, dst).max() < 1e-6

    def test_identity_from_identical_point_sets(self, rng):
        src = sample_points(rng)
        estimated = estimate_homography(src, src.copy())
        assert np.allclose(estimated, np.eye(3), atol=1e-8)

    @given(
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovers_translations(self, tx, ty):
        rng = np.random.default_rng(5)
        src = sample_points(rng)
        dst = src + [tx, ty]
        estimated = estimate_homography(src, dst)
        assert np.allclose(estimated, translation(tx, ty), atol=1e-6)

    def test_least_squares_tolerates_noise(self, rng):
        mat = planted_homography()
        src = sample_points(rng, n=40)
        dst = apply_transform(mat, src) + rng.normal(0, 0.05, (40, 2))
        estimated = estimate_homography(src, dst)
        assert homography_residuals(estimated, src, dst).mean() < 0.3


class TestPreconditions:
    def test_too_few_points_abort(self, rng):
        src = sample_points(rng, n=3)
        with pytest.raises(InternalAbortError):
            estimate_homography(src, src)

    def test_nonfinite_points_abort(self, rng):
        src = sample_points(rng)
        dst = src.copy()
        dst[0, 0] = np.nan
        with pytest.raises(InternalAbortError):
            estimate_homography(src, dst)

    def test_shape_mismatch_abort(self, rng):
        with pytest.raises(InternalAbortError):
            estimate_homography(sample_points(rng, 8), sample_points(rng, 9))

    def test_coincident_points_degenerate(self):
        src = np.ones((8, 2))
        with pytest.raises(DegenerateModelError):
            estimate_homography(src, src)

    def test_collinear_points_degenerate(self):
        xs = np.linspace(0, 50, 8)
        src = np.stack([xs, 2 * xs], axis=1)
        with pytest.raises(DegenerateModelError):
            estimate_homography(src, src + 1.0)


class TestBatchedSolver:
    def test_solves_valid_hypotheses(self, rng):
        mat = planted_homography()
        src = rng.uniform(0, 100, (6, 4, 2))
        dst = np.stack([apply_transform(mat, quad) for quad in src])
        models, ok = solve_homographies_batched(src, dst)
        assert ok.all()
        for model in models:
            assert np.allclose(model / model[2, 2], mat, atol=1e-5)

    def test_flags_degenerate_samples(self, rng):
        src = rng.uniform(0, 100, (3, 4, 2))
        src[1] = 5.0  # four coincident points
        dst = src.copy()
        _models, ok = solve_homographies_batched(src, dst)
        assert bool(ok[0]) and not bool(ok[1]) and bool(ok[2])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            solve_homographies_batched(np.zeros((2, 3, 2)), np.zeros((2, 3, 2)))


class TestResiduals:
    def test_infinite_for_horizon_points(self, rng):
        mat = np.eye(3)
        mat[2, 0] = -0.01  # horizon at x = 100
        src = np.array([[100.0, 0.0], [5.0, 5.0]])
        dst = src.copy()
        residuals = homography_residuals(mat, src, dst)
        assert np.isinf(residuals[0])
        assert np.isfinite(residuals[1])
