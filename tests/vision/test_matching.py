"""Tests for Hamming matching (ratio-test and simple policies)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.vision.matching import (
    MatchSet,
    hamming_distance_matrix,
    match_ratio,
    match_simple,
)

descriptor_arrays = hnp.arrays(
    np.uint8, st.tuples(st.integers(1, 12), st.just(32)), elements=st.integers(0, 255)
)


def popcount_reference(a: np.ndarray, b: np.ndarray) -> int:
    return sum(bin(x ^ y).count("1") for x, y in zip(a.tolist(), b.tolist()))


class TestHammingMatrix:
    def test_zero_distance_on_identical(self, ctx):
        desc = np.arange(64, dtype=np.uint8).reshape(2, 32)
        distances = hamming_distance_matrix(desc, desc, ctx)
        assert distances[0, 0] == 0 and distances[1, 1] == 0

    def test_matches_reference_popcount(self, ctx, rng):
        a = rng.integers(0, 256, (5, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (7, 32)).astype(np.uint8)
        distances = hamming_distance_matrix(a, b, ctx)
        for i in range(5):
            for j in range(7):
                assert distances[i, j] == popcount_reference(a[i], b[j])

    def test_empty_inputs(self, ctx):
        empty = np.zeros((0, 32), dtype=np.uint8)
        full = np.zeros((3, 32), dtype=np.uint8)
        assert hamming_distance_matrix(empty, full, ctx).shape == (0, 3)
        assert hamming_distance_matrix(full, empty, ctx).shape == (3, 0)

    @given(descriptor_arrays, descriptor_arrays)
    def test_symmetry(self, a, b):
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        forward = hamming_distance_matrix(a, b, ctx)
        backward = hamming_distance_matrix(b, a, ctx)
        assert np.array_equal(forward, backward.T)

    @given(descriptor_arrays)
    def test_diagonal_zero_and_bounds(self, a):
        from repro.runtime.context import ExecutionContext

        distances = hamming_distance_matrix(a, a, ExecutionContext())
        assert np.all(np.diag(distances) == 0)
        assert distances.max() <= 256

    def test_charges_quadratic_cost(self):
        from repro.perfmodel.cost import kernel_cost
        from repro.runtime.context import ExecutionContext

        a = np.zeros((10, 32), dtype=np.uint8)
        b = np.zeros((20, 32), dtype=np.uint8)
        ctx = ExecutionContext()
        hamming_distance_matrix(a, b, ctx)
        assert ctx.cycles >= kernel_cost("match.pair") * 10 * 20


class TestVectorizedPopcount:
    """The uint64-lane kernel must agree with the per-byte table exactly."""

    def test_large_random_matches_byte_reference(self, ctx, rng):
        from repro.vision.matching import _POPCOUNT

        a = rng.integers(0, 256, (70, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (55, 32)).astype(np.uint8)
        distances = hamming_distance_matrix(a, b, ctx)
        reference = _POPCOUNT[a[:, None, :] ^ b[None, :, :]].sum(axis=2, dtype=np.int64)
        assert np.array_equal(distances, reference)

    def test_non_contiguous_descriptors_fall_back(self, ctx, rng):
        # Row strides of 2 defeat the uint64 view; the fallback must
        # produce the same distances as contiguous copies.
        a = rng.integers(0, 256, (12, 64)).astype(np.uint8)[:, ::2]
        b = rng.integers(0, 256, (9, 64)).astype(np.uint8)[:, ::2]
        assert not a.flags["C_CONTIGUOUS"]
        strided = hamming_distance_matrix(a, b, ctx)
        from repro.runtime.context import ExecutionContext

        contiguous = hamming_distance_matrix(
            np.ascontiguousarray(a), np.ascontiguousarray(b), ExecutionContext()
        )
        assert np.array_equal(strided, contiguous)

    def test_word_view_shares_memory_with_descriptors(self):
        # In-place corruption by the fault injector must stay visible
        # to the vectorized kernel: the view must not be a copy.
        from repro.vision.matching import _as_words

        desc = np.zeros((3, 32), dtype=np.uint8)
        words = _as_words(desc)
        assert words is not None
        desc[1, 0] = 0xFF
        assert words[1, 0] == 0xFF

    def test_odd_width_descriptors_fall_back(self, ctx, rng):
        from repro.vision.matching import _POPCOUNT, _as_words

        a = rng.integers(0, 256, (6, 17)).astype(np.uint8)
        assert _as_words(a) is None
        distances = hamming_distance_matrix(a, a, ctx)
        reference = _POPCOUNT[a[:, None, :] ^ a[None, :, :]].sum(axis=2, dtype=np.int64)
        assert np.array_equal(distances, reference)


class TestRatioMatching:
    def test_finds_planted_matches(self, ctx, rng):
        base = rng.integers(0, 256, (20, 32)).astype(np.uint8)
        # Second set: same descriptors with one flipped bit each.
        noisy = base.copy()
        noisy[:, 0] ^= 1
        matches = match_ratio(base, noisy, ctx)
        assert len(matches) == 20
        assert np.array_equal(matches.query_idx, matches.train_idx)

    def test_ambiguous_match_rejected(self, ctx):
        # Two identical candidates: the ratio test cannot disambiguate.
        query = np.zeros((1, 32), dtype=np.uint8)
        train = np.zeros((2, 32), dtype=np.uint8)
        assert len(match_ratio(query, train, ctx)) == 0

    def test_needs_two_candidates(self, ctx):
        query = np.zeros((3, 32), dtype=np.uint8)
        train = np.zeros((1, 32), dtype=np.uint8)
        assert len(match_ratio(query, train, ctx)) == 0

    def test_distances_reported(self, ctx, rng):
        base = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        matches = match_ratio(base, base.copy(), ctx)
        assert np.all(matches.distance == 0)


class TestSimpleMatching:
    def test_absolute_bound_enforced(self, ctx, rng):
        base = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        far = (~base).astype(np.uint8)  # 256 bits away
        matches = match_simple(base, far, ctx, max_distance=32)
        assert len(matches) == 0

    def test_accepts_near_perfect(self, ctx, rng):
        base = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        matches = match_simple(base, base.copy(), ctx, max_distance=0)
        assert len(matches) == 10

    def test_identical_objects_both_match(self, ctx):
        """The VS_SM failure mode: two identical objects both pass the bound."""
        desc = np.full((1, 32), 7, dtype=np.uint8)
        train = np.vstack([desc, desc])
        matches = match_simple(desc, train, ctx, max_distance=10)
        # The single NN maps to one of them arbitrarily — a potential
        # wrong-object mapping the ratio test would have rejected.
        assert len(matches) == 1

    def test_empty(self, ctx):
        empty = np.zeros((0, 32), dtype=np.uint8)
        assert len(match_simple(empty, empty, ctx)) == 0


class TestMatchSet:
    def test_empty_constructor(self):
        empty = MatchSet.empty()
        assert len(empty) == 0

    def test_len(self):
        ms = MatchSet(
            np.array([0, 1]), np.array([1, 0]), np.array([3, 4])
        )
        assert len(ms) == 2
