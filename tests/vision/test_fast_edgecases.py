"""Edge-case tests for FAST-9 detection and its separable NMS.

The separable sliding-window NMS (two 1-D maxima) replaced a shifted-copy
loop; these tests pin it against a brute-force O((2r+1)^2) reference on
random score maps, and pin :func:`detect_fast` on degenerate frames —
flat images, frames thinner than the detector border, single-row /
single-column inputs — where the only correct answer is "no keypoints,
no crash".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.context import ExecutionContext
from repro.vision.fast import BORDER, Keypoint, _nms, detect_fast


def _reference_nms(score: np.ndarray, radius: int) -> np.ndarray:
    """Brute-force local-maximum map over the (2r+1) square window."""
    if radius < 1:
        return score > 0
    h, w = score.shape
    keep = np.zeros_like(score, dtype=bool)
    for y in range(h):
        for x in range(w):
            if score[y, x] <= 0:
                continue
            y0, y1 = max(0, y - radius), min(h, y + radius + 1)
            x0, x1 = max(0, x - radius), min(w, x + radius + 1)
            keep[y, x] = score[y, x] >= score[y0:y1, x0:x1].max()
    return keep


class TestSeparableNMS:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_on_random_maps(self, radius, seed):
        rng = np.random.default_rng(seed)
        score = rng.uniform(0.0, 10.0, size=(17, 23))
        score[rng.uniform(size=score.shape) < 0.6] = 0.0  # sparse, with ties
        assert np.array_equal(_nms(score, radius), _reference_nms(score, radius))

    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_tied_plateau_keeps_all_equal_maxima(self, radius):
        score = np.zeros((9, 9))
        score[4, 4] = score[4, 5] = 5.0  # adjacent equal maxima
        got = _nms(score, radius)
        assert np.array_equal(got, _reference_nms(score, radius))
        assert got[4, 4] and got[4, 5]

    def test_radius_zero_is_positive_mask(self):
        score = np.array([[0.0, 1.0], [2.0, 0.0]])
        assert np.array_equal(_nms(score, 0), score > 0)

    @pytest.mark.parametrize("shape", [(1, 12), (12, 1), (1, 1), (3, 3)])
    def test_thin_maps_do_not_crash(self, shape):
        rng = np.random.default_rng(0)
        score = rng.uniform(0.0, 5.0, size=shape)
        for radius in (1, 2, 3):
            assert np.array_equal(_nms(score, radius), _reference_nms(score, radius))


class TestDetectFastDegenerateFrames:
    def test_flat_frame_has_no_corners(self):
        frame = np.full((32, 32), 128, dtype=np.uint8)
        assert detect_fast(frame, ExecutionContext()) == []

    def test_uniform_gradient_has_no_corners(self):
        frame = np.tile(np.arange(32, dtype=np.uint8), (32, 1))
        keypoints = detect_fast(frame, ExecutionContext(), threshold=60)
        assert keypoints == []

    @pytest.mark.parametrize(
        "shape",
        [(1, 64), (64, 1), (1, 1), (2 * BORDER, 64), (64, 2 * BORDER), (6, 6)],
    )
    def test_frames_smaller_than_border_return_empty(self, shape):
        frame = np.random.default_rng(1).integers(0, 256, size=shape, dtype=np.uint8)
        assert detect_fast(frame, ExecutionContext()) == []

    def test_smallest_usable_frame_detects_a_corner(self):
        # 7x7 has exactly one interior pixel, (3, 3); make it a dark dot
        # on a bright field so all 16 circle pixels are brighter.
        frame = np.full((7, 7), 255, dtype=np.uint8)
        frame[3, 3] = 0
        keypoints = detect_fast(frame, ExecutionContext(), threshold=20)
        assert len(keypoints) == 1
        assert (keypoints[0].x, keypoints[0].y) == (3, 3)
        assert keypoints[0].score > 0

    def test_corner_at_border_limit_not_reported_outside(self):
        rng = np.random.default_rng(7)
        frame = rng.integers(0, 256, size=(24, 24), dtype=np.uint8)
        for kp in detect_fast(frame, ExecutionContext(), threshold=10):
            assert BORDER <= kp.x < 24 - BORDER
            assert BORDER <= kp.y < 24 - BORDER

    def test_scores_sorted_descending(self):
        rng = np.random.default_rng(11)
        frame = rng.integers(0, 256, size=(48, 48), dtype=np.uint8)
        keypoints = detect_fast(frame, ExecutionContext(), threshold=10)
        scores = [kp.score for kp in keypoints]
        assert scores == sorted(scores, reverse=True)
        assert all(isinstance(kp, Keypoint) for kp in keypoints)
