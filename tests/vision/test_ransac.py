"""Tests for robust estimation (RANSAC homography and affine)."""

import numpy as np
import pytest

from repro.imaging.geometry import apply_transform, rotation, translation
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import HangDetected, InsufficientMatchesError
from repro.vision.ransac import ransac_affine, ransac_homography


def planted():
    mat = translation(12, 5) @ rotation(0.15, center=(40, 40))
    mat[2, 0] = 5e-5
    return mat / mat[2, 2]


def make_correspondences(rng, n_inliers=30, n_outliers=0, noise=0.0):
    mat = planted()
    src = rng.uniform(0, 100, (n_inliers + n_outliers, 2))
    dst = apply_transform(mat, src)
    if noise:
        dst = dst + rng.normal(0, noise, dst.shape)
    if n_outliers:
        dst[n_inliers:] = rng.uniform(0, 100, (n_outliers, 2))
    return src, dst, mat


class TestRansacHomography:
    def test_clean_data(self, ctx, rng):
        src, dst, mat = make_correspondences(rng)
        result = ransac_homography(src, dst, ctx, rng)
        assert result.num_inliers == 30
        assert np.allclose(result.model, mat, atol=1e-5)

    def test_rejects_outliers(self, ctx, rng):
        src, dst, mat = make_correspondences(rng, n_inliers=30, n_outliers=15)
        result = ransac_homography(src, dst, ctx, rng)
        assert result.num_inliers >= 28
        assert not result.inlier_mask[30:].any() or result.inlier_mask[30:].sum() <= 2
        assert np.allclose(result.model, mat, atol=1e-3)

    def test_noise_tolerance(self, ctx, rng):
        src, dst, mat = make_correspondences(rng, noise=0.5)
        result = ransac_homography(src, dst, ctx, rng, inlier_threshold=3.0)
        assert result.num_inliers >= 25

    def test_insufficient_points(self, ctx, rng):
        src = rng.uniform(0, 100, (5, 2))
        with pytest.raises(InsufficientMatchesError):
            ransac_homography(src, src, ctx, rng, min_inliers=8)

    def test_pure_noise_fails(self, ctx, rng):
        src = rng.uniform(0, 100, (40, 2))
        dst = rng.uniform(0, 100, (40, 2))
        with pytest.raises(InsufficientMatchesError):
            ransac_homography(src, dst, ctx, rng, min_inliers=20)

    def test_adaptive_early_exit(self, ctx, rng):
        src, dst, _ = make_correspondences(rng, n_inliers=50)
        result = ransac_homography(src, dst, ctx, rng, max_iterations=512)
        assert result.iterations < 128

    def test_corrupted_budget_hangs(self, rng):
        """A control-register flip inflating the budget must trip the watchdog."""
        src, dst, _ = make_correspondences(rng, n_inliers=12, n_outliers=30)

        class BudgetCorruptor:
            observing = True

            def visit(self, ctx, window):
                for binding in window.bindings:
                    if binding.name == "ransac_budget" and hasattr(binding, "cell"):
                        binding.cell.value = 1 << 40

        ctx = ExecutionContext(injector=BudgetCorruptor(), watchdog_cycles=3_000_000)
        with pytest.raises((HangDetected, InsufficientMatchesError)):
            # Outlier-heavy data keeps the consensus low so the loop
            # cannot terminate early; the watchdog must fire.
            ransac_homography(src, dst, ctx, rng, min_inliers=40)


class TestRansacAffine:
    def test_clean_affine(self, ctx, rng):
        mat = translation(3, 4) @ rotation(0.2)
        src = rng.uniform(0, 100, (20, 2))
        dst = apply_transform(mat, src)
        result = ransac_affine(src, dst, ctx, rng)
        assert result.num_inliers == 20
        assert np.allclose(result.model, mat, atol=1e-6)

    def test_fewer_points_than_homography_needs(self, ctx, rng):
        mat = translation(3, 4)
        src = rng.uniform(0, 100, (6, 2))
        dst = apply_transform(mat, src)
        result = ransac_affine(src, dst, ctx, rng, min_inliers=5)
        assert result.num_inliers == 6

    def test_outlier_rejection(self, ctx, rng):
        mat = translation(3, 4) @ rotation(0.1)
        src = rng.uniform(0, 100, (30, 2))
        dst = apply_transform(mat, src)
        dst[25:] += 50.0
        result = ransac_affine(src, dst, ctx, rng)
        assert result.num_inliers >= 24
        assert result.inlier_mask[:25].sum() >= 24

    def test_insufficient(self, ctx, rng):
        src = rng.uniform(0, 100, (2, 2))
        with pytest.raises(InsufficientMatchesError):
            ransac_affine(src, src, ctx, rng)


class TestDeterminism:
    def test_same_seed_same_result(self):
        gen = np.random.default_rng(3)
        src, dst, _ = make_correspondences(gen, n_inliers=25, n_outliers=10)
        results = []
        for _ in range(2):
            ctx = ExecutionContext()
            rng = np.random.default_rng(77)
            results.append(ransac_homography(src, dst, ctx, rng))
        assert np.array_equal(results[0].model, results[1].model)
        assert np.array_equal(results[0].inlier_mask, results[1].inlier_mask)
