"""Tests for ORB-style descriptors."""

import numpy as np
import pytest

from repro.imaging.geometry import rotation, translation
from repro.imaging.warp import warp_perspective
from repro.runtime.context import ExecutionContext
from repro.runtime.errors import InternalAbortError
from repro.vision.matching import hamming_distance_matrix
from repro.vision.orb import (
    DESCRIPTOR_BITS,
    DESCRIPTOR_BYTES,
    ORB_BORDER,
    brief_pattern,
    describe,
    orb_features,
    orientation_angles,
)


class TestBriefPattern:
    def test_shape(self):
        assert brief_pattern().shape == (DESCRIPTOR_BITS, 2, 2)

    def test_deterministic(self):
        assert np.array_equal(brief_pattern(), brief_pattern())

    def test_offsets_bounded(self):
        pattern = brief_pattern()
        assert np.abs(pattern).max() <= 6


class TestOrbFeatures:
    def test_extracts_features(self, ctx, textured_image):
        features = orb_features(textured_image, ctx, n_keypoints=50)
        assert 0 < len(features) <= 50
        assert features.descriptors.shape == (len(features), DESCRIPTOR_BYTES)
        assert features.coords.shape == (len(features), 2)
        assert features.angles.shape == (len(features),)

    def test_respects_keypoint_cap(self, ctx, textured_image):
        features = orb_features(textured_image, ctx, n_keypoints=5)
        assert len(features) <= 5

    def test_coords_inside_orb_border(self, ctx, textured_image):
        features = orb_features(textured_image, ctx)
        h, w = textured_image.shape
        assert np.all(features.coords[:, 0] >= ORB_BORDER)
        assert np.all(features.coords[:, 0] < w - ORB_BORDER)
        assert np.all(features.coords[:, 1] >= ORB_BORDER)
        assert np.all(features.coords[:, 1] < h - ORB_BORDER)

    def test_flat_image_no_features(self, ctx):
        features = orb_features(np.full((60, 60), 99, dtype=np.uint8), ctx)
        assert len(features) == 0

    def test_deterministic(self, textured_image):
        first = orb_features(textured_image, ExecutionContext())
        second = orb_features(textured_image, ExecutionContext())
        assert np.array_equal(first.descriptors, second.descriptors)
        assert np.array_equal(first.coords, second.coords)


class TestDescriptorStability:
    def test_descriptors_match_across_translation(self, ctx, textured_image):
        """The same world point should get a similar descriptor after a shift."""
        shifted = warp_perspective(
            textured_image, translation(6, 4), textured_image.shape, ctx
        )
        feats_a = orb_features(textured_image, ctx, n_keypoints=60, fast_threshold=12)
        feats_b = orb_features(shifted, ctx, n_keypoints=60, fast_threshold=12)
        assert len(feats_a) > 10 and len(feats_b) > 10
        distances = hamming_distance_matrix(feats_a.descriptors, feats_b.descriptors, ctx)
        # A healthy share of keypoints should find a near-duplicate.
        good = (distances.min(axis=1) < 40).mean()
        assert good > 0.4

    def test_rotation_invariance_beats_chance(self, ctx, textured_image):
        h, w = textured_image.shape
        rotated = warp_perspective(
            textured_image,
            rotation(0.35, center=(w / 2, h / 2)),
            textured_image.shape,
            ctx,
        )
        feats_a = orb_features(textured_image, ctx, n_keypoints=60, fast_threshold=12)
        feats_b = orb_features(rotated, ctx, n_keypoints=60, fast_threshold=12)
        distances = hamming_distance_matrix(feats_a.descriptors, feats_b.descriptors, ctx)
        # Chance level for 256-bit descriptors is ~128; steered BRIEF
        # should find substantially closer matches for many keypoints.
        assert np.median(distances.min(axis=1)) < 80


class TestOrientation:
    def test_gradient_patch_angle(self):
        image = np.tile(np.arange(64, dtype=np.float64) * 4, (64, 1))
        angles = orientation_angles(image, np.array([[32, 32]]))
        # Intensity grows along +x, so the centroid points along +x.
        assert abs(angles[0]) < 0.2

    def test_rotated_gradient_rotates_angle(self):
        image = np.tile(np.arange(64, dtype=np.float64) * 4, (64, 1)).T
        angles = orientation_angles(image, np.array([[32, 32]]))
        assert abs(angles[0] - np.pi / 2) < 0.2


class TestDescribePreconditions:
    def test_wild_coordinates_abort(self, ctx, textured_image):
        blurred = textured_image.astype(np.float64)
        wild = np.array([[10**9, 20]], dtype=np.int64)
        with pytest.raises(InternalAbortError):
            describe(blurred, wild, ctx)

    def test_empty_coords_ok(self, ctx, textured_image):
        descriptors, angles = describe(
            textured_image.astype(np.float64), np.zeros((0, 2), dtype=np.int64), ctx
        )
        assert descriptors.shape == (0, DESCRIPTOR_BYTES)
        assert angles.shape == (0,)
