"""Tests for the error taxonomy."""

import pytest

from repro.runtime.errors import (
    DegenerateModelError,
    HangDetected,
    InsufficientMatchesError,
    InternalAbortError,
    ReproError,
    SegmentationFault,
    SimulatedMachineError,
)


class TestHierarchy:
    def test_machine_errors_are_repro_errors(self):
        assert issubclass(SimulatedMachineError, ReproError)

    @pytest.mark.parametrize("exc_type", [SegmentationFault, InternalAbortError, HangDetected])
    def test_machine_error_subtypes(self, exc_type):
        assert issubclass(exc_type, SimulatedMachineError)

    @pytest.mark.parametrize("exc_type", [InsufficientMatchesError, DegenerateModelError])
    def test_application_errors_are_not_machine_errors(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert not issubclass(exc_type, SimulatedMachineError)


class TestSegmentationFault:
    def test_carries_address(self):
        exc = SegmentationFault(0xDEAD)
        assert exc.address == 0xDEAD
        assert "0xdead" in str(exc)

    def test_custom_message(self):
        exc = SegmentationFault(1, "ran off the table")
        assert "ran off the table" in str(exc)


class TestHangDetected:
    def test_carries_budget(self):
        exc = HangDetected(cycles=1000, budget=500)
        assert exc.cycles == 1000
        assert exc.budget == 500
        assert "1000" in str(exc)
