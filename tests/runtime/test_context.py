"""Tests for the execution context: cycles, scopes, watchdog, checkpoints."""

import pytest

from repro.runtime.context import Cell, CostProfile, ExecutionContext, fresh_context
from repro.runtime.errors import HangDetected


class TestCell:
    def test_holds_value(self):
        cell = Cell(7)
        assert cell.value == 7

    def test_mutable(self):
        cell = Cell(1)
        cell.value = 99
        assert cell.value == 99

    def test_repr_mentions_value(self):
        assert "42" in repr(Cell(42))


class TestTick:
    def test_accumulates_cycles(self):
        ctx = ExecutionContext()
        ctx.tick(10)
        ctx.tick(5)
        assert ctx.cycles == 15

    def test_starts_at_zero(self):
        assert ExecutionContext().cycles == 0

    def test_fresh_context_is_plain(self):
        ctx = fresh_context()
        assert ctx.injector is None
        assert ctx.watchdog_cycles is None
        assert ctx.profile is None


class TestWatchdog:
    def test_raises_past_budget(self):
        ctx = ExecutionContext(watchdog_cycles=100)
        ctx.tick(100)  # exactly at budget: fine
        with pytest.raises(HangDetected):
            ctx.tick(1)

    def test_exception_carries_counts(self):
        ctx = ExecutionContext(watchdog_cycles=50)
        with pytest.raises(HangDetected) as excinfo:
            ctx.tick(80)
        assert excinfo.value.cycles == 80
        assert excinfo.value.budget == 50

    def test_no_watchdog_never_raises(self):
        ctx = ExecutionContext()
        ctx.tick(10**12)
        assert ctx.cycles == 10**12


class TestScopes:
    def test_profile_charges_current_scope(self):
        profile = CostProfile()
        ctx = ExecutionContext(profile=profile)
        with ctx.scope("alpha"):
            ctx.tick(10)
            with ctx.scope("beta"):
                ctx.tick(5)
            ctx.tick(1)
        assert profile.by_scope() == {"alpha": 11, "beta": 5}

    def test_toplevel_scope_name(self):
        profile = CostProfile()
        ctx = ExecutionContext(profile=profile)
        ctx.tick(3)
        assert profile.by_scope() == {"<toplevel>": 3}

    def test_current_scope_tracks_stack(self):
        ctx = ExecutionContext()
        assert ctx.current_scope == "<toplevel>"
        with ctx.scope("outer"):
            assert ctx.current_scope == "outer"
        assert ctx.current_scope == "<toplevel>"

    def test_scope_pops_on_exception(self):
        ctx = ExecutionContext()
        with pytest.raises(RuntimeError):
            with ctx.scope("failing"):
                raise RuntimeError("boom")
        assert ctx.current_scope == "<toplevel>"


class TestCostProfile:
    def test_fractions_sum_to_one(self):
        profile = CostProfile()
        profile.charge("a", 30)
        profile.charge("b", 70)
        fractions = profile.fractions()
        assert fractions["a"] == pytest.approx(0.3)
        assert fractions["b"] == pytest.approx(0.7)

    def test_empty_profile_fractions(self):
        assert CostProfile().fractions() == {}

    def test_merged_groups(self):
        profile = CostProfile()
        profile.charge("x.one", 10)
        profile.charge("x.two", 20)
        profile.charge("y.one", 5)
        merged = profile.merged(lambda scope: scope.split(".")[0])
        assert merged == {"x": 30, "y": 5}

    def test_total_cycles(self):
        profile = CostProfile()
        profile.charge("a", 12)
        profile.charge("a", 8)
        assert profile.total_cycles == 20


class TestCheckpoints:
    def test_window_none_when_unarmed(self):
        ctx = ExecutionContext()
        assert ctx.window("some.site") is None
        assert not ctx.armed

    def test_checkpoint_calls_injector(self):
        class Probe:
            def __init__(self):
                self.visits = []

            observing = True

            def visit(self, ctx, window):
                self.visits.append(window.site)

        probe = Probe()
        ctx = ExecutionContext(injector=probe)
        window = ctx.window("probe.site")
        assert window is not None
        ctx.checkpoint(window)
        assert probe.visits == ["probe.site"]

    def test_window_none_when_injector_done(self):
        class Done:
            observing = False

            def visit(self, ctx, window):  # pragma: no cover
                raise AssertionError("should not be called")

        ctx = ExecutionContext(injector=Done())
        assert ctx.window("site") is None
        assert not ctx.armed
