"""Shared fixtures: tiny synthetic inputs, contexts and RNGs.

Expensive artifacts (streams, feature sets, golden runs) are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.context import CostProfile, ExecutionContext
from repro.summarize.config import VSConfig
from repro.summarize.golden import clear_golden_cache
from repro.video.synthetic import make_input1, make_input2


@pytest.fixture()
def ctx() -> ExecutionContext:
    """A fresh plain execution context."""
    return ExecutionContext()


@pytest.fixture()
def profiled_ctx() -> ExecutionContext:
    """A context with an attached cost profile."""
    return ExecutionContext(profile=CostProfile())


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic RNG."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def textured_image() -> np.ndarray:
    """A feature-rich grayscale test image (session-scoped, read-only)."""
    gen = np.random.default_rng(7)
    image = (40 + 170 * gen.random((120, 160))).astype(np.uint8)
    # Stamp some strong corners.
    for _ in range(60):
        x = int(gen.integers(5, 150))
        y = int(gen.integers(5, 110))
        image[y : y + 6, x : x + 6] = int(gen.integers(0, 256))
    image.setflags(write=False)
    return image


@pytest.fixture(scope="session")
def tiny_stream1():
    """A small Input-1-like stream (session-scoped, frames read-only)."""
    return make_input1(n_frames=16)


@pytest.fixture(scope="session")
def tiny_stream2():
    """A small Input-2-like stream (session-scoped, frames read-only)."""
    return make_input2(n_frames=16)


@pytest.fixture(scope="session")
def tiny_config() -> VSConfig:
    """The baseline config used by the tiny integration tests."""
    return VSConfig()


@pytest.fixture(autouse=True)
def _fresh_golden_cache():
    """Isolate golden-run caching between tests."""
    yield
    clear_golden_cache()
