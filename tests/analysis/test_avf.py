"""Tests for the AVF analysis over campaign data."""

import numpy as np
import pytest

from repro.analysis.avf import bit_avf, register_avf, role_avf, workload_avf
from repro.faultinject.campaign import CampaignConfig, CampaignResult
from repro.faultinject.injector import InjectionPlan, InjectionRecord
from repro.faultinject.monitor import InjectionResult
from repro.faultinject.outcomes import Outcome, OutcomeCounts, RunningRates
from repro.faultinject.registers import FlipEffect, RegKind, Role


def make_result(outcome, register=0, bit=0, role=None, effect=FlipEffect.APPLIED):
    plan = InjectionPlan(0, RegKind.GPR, register, bit)
    record = InjectionRecord(plan, fired=True, role=role, effect=effect)
    return InjectionResult(plan=plan, record=record, outcome=outcome)


def make_campaign(results):
    counts = OutcomeCounts()
    for result in results:
        counts.add(result.outcome, result.crash_kind)
    return CampaignResult(
        config=CampaignConfig(n_injections=len(results), kind=RegKind.GPR),
        counts=counts,
        running=RunningRates(),
        results=results,
        register_histogram=np.zeros(32, dtype=np.int64),
        bit_histogram=np.zeros(64, dtype=np.int64),
    )


class TestRegisterAVF:
    def test_vulnerable_register_identified(self):
        results = [make_result(Outcome.CRASH, register=3)] * 8
        results += [make_result(Outcome.MASKED, register=7)] * 8
        avfs = register_avf(make_campaign(results))
        assert avfs[3].avf == 1.0
        assert avfs[7].avf == 0.0
        assert avfs[0].total == 0

    def test_interval_contains_point(self):
        results = [make_result(Outcome.CRASH, register=1)] * 3
        results += [make_result(Outcome.MASKED, register=1)] * 7
        avfs = register_avf(make_campaign(results))
        lo, hi = avfs[1].confidence_interval
        assert lo <= avfs[1].avf <= hi


class TestBitAVF:
    def test_bucketing(self):
        results = [make_result(Outcome.CRASH, bit=60)] * 4
        results += [make_result(Outcome.MASKED, bit=2)] * 4
        buckets = bit_avf(make_campaign(results), bucket_size=8)
        assert len(buckets) == 8
        assert buckets[7].avf == 1.0  # bits 56-63
        assert buckets[0].avf == 0.0  # bits 0-7

    def test_bad_bucket_size_rejected(self):
        with pytest.raises(ValueError):
            bit_avf(make_campaign([]), bucket_size=7)


class TestRoleAVF:
    def test_roles_separated(self):
        results = [make_result(Outcome.CRASH, role=Role.ADDRESS)] * 5
        results += [make_result(Outcome.SDC, role=Role.DATA)] * 2
        results += [make_result(Outcome.MASKED, role=Role.DATA)] * 3
        results += [make_result(Outcome.MASKED, role=None, effect=FlipEffect.DEAD_EMPTY)] * 4
        by_label = {est.label: est for est in role_avf(make_campaign(results))}
        assert by_label["address"].avf == 1.0
        assert by_label["data"].avf == pytest.approx(0.4)
        assert by_label["dead"].avf == 0.0
        assert by_label["dead"].total == 4

    def test_stale_hits_count_as_dead(self):
        results = [
            make_result(Outcome.MASKED, role=Role.ADDRESS, effect=FlipEffect.DEAD_STALE)
        ]
        by_label = {est.label: est for est in role_avf(make_campaign(results))}
        assert by_label["dead"].total == 1
        assert by_label["address"].total == 0


class TestWorkloadAVF:
    def test_overall(self):
        results = [make_result(Outcome.CRASH)] * 3 + [make_result(Outcome.MASKED)] * 7
        estimate = workload_avf(make_campaign(results))
        assert estimate.avf == pytest.approx(0.3)
        assert estimate.total == 10

    def test_empty_campaign(self):
        estimate = workload_avf(make_campaign([]))
        assert estimate.avf == 0.0


class TestOnRealCampaign:
    def test_address_role_most_vulnerable(self, tiny_stream2, tiny_config):
        """On the real pipeline, ADDRESS hits must out-AVF dead slots."""
        from repro.faultinject.campaign import run_campaign
        from repro.runtime.context import ExecutionContext
        from repro.summarize.golden import golden_run
        from repro.summarize.pipeline import run_vs

        golden = golden_run(tiny_stream2, tiny_config)

        def workload(ctx: ExecutionContext):
            return run_vs(tiny_stream2, tiny_config, ctx).panorama

        campaign = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            CampaignConfig(n_injections=50, kind=RegKind.GPR, seed=3, keep_sdc_outputs=False),
        )
        by_label = {est.label: est for est in role_avf(campaign)}
        assert by_label["dead"].avf == 0.0
        if by_label["address"].total >= 5:
            assert by_label["address"].avf > 0.5
