"""Tests for the ASCII figure renderers."""

import numpy as np
import pytest

from repro.analysis.figures import render_cdf_panel, render_histogram, render_series, sparkline


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(np.arange(500), width=60)) <= 60

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_glyphs(self):
        glyphs = " .:-=+*#%@"
        line = sparkline(np.linspace(0, 1, 10))
        ranks = [glyphs.index(ch) for ch in line]
        assert ranks == sorted(ranks)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_custom_bounds(self):
        # With hi anchored at 100, a low series stays near the bottom.
        line = sparkline([1, 2, 1], lo=0, hi=100)
        assert set(line) <= {" ", "."}


class TestRenderers:
    def test_series_row_contains_endpoints(self):
        row = render_series("mask", [1, 2, 3], [0.5, 0.52, 0.54])
        assert "mask" in row
        assert "50.0%" in row and "54.0%" in row

    def test_series_empty(self):
        assert "(empty)" in render_series("x", [], [])

    def test_histogram_line(self):
        line = render_histogram(np.ones(32) * 5)
        assert len(line) == 32

    def test_cdf_panel(self):
        xs = np.arange(11)
        panel = render_cdf_panel(
            {
                "VS": (xs, np.linspace(0, 100, 11)),
                "VS_RFD": (xs, np.linspace(0, 80, 11)),
            }
        )
        lines = panel.splitlines()
        assert len(lines) == 2
        assert "VS" in lines[0]
        assert "top  80.0%" in lines[1]
