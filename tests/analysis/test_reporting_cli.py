"""Tests for result serialization and the CLI."""

import json

import numpy as np
import pytest

from repro.analysis.reporting import (
    campaign_to_dict,
    counts_to_dict,
    load_json,
    markdown_table,
    save_json,
)
from repro.cli import build_parser, main
from repro.faultinject.outcomes import CrashKind, Outcome, OutcomeCounts


class TestReporting:
    def test_counts_roundtrip_fields(self):
        counts = OutcomeCounts(masked=5, sdc=1, crash_segv=3, crash_abort=1, hang=0)
        payload = counts_to_dict(counts)
        assert payload["total"] == 10
        assert payload["rates"]["crash"] == pytest.approx(0.4)

    def test_save_and_load(self, tmp_path):
        path = save_json(tmp_path / "sub" / "result.json", {"a": 1, "b": [1, 2]})
        assert path.exists()
        assert load_json(path) == {"a": 1, "b": [1, 2]}

    def test_campaign_serialization(self, tmp_path):
        from repro.faultinject.campaign import CampaignConfig, run_campaign
        from repro.faultinject.registers import RegKind
        from tests.faultinject.test_monitor_campaign import toy_workload
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        output = toy_workload(ctx)
        campaign = run_campaign(
            toy_workload,
            output,
            ctx.cycles,
            CampaignConfig(n_injections=10, kind=RegKind.GPR, seed=1),
        )
        payload = campaign_to_dict(campaign)
        assert payload["n_injections"] == 10
        assert len(payload["records"]) == 10
        # Must be valid JSON end to end.
        json.dumps(payload)

    def test_markdown_table(self):
        table = markdown_table(["name", "value"], [["a", 1.23456], ["b", 2]])
        lines = table.splitlines()
        assert lines[0] == "| name | value |"
        assert "1.235" in lines[2]
        assert len(lines) == 4

    def test_markdown_table_escapes_pipes(self):
        table = markdown_table(["a|b", "value"], [["x|y", "plain"]])
        lines = table.splitlines()
        # Escaped pipes must not add table columns.
        assert lines[0] == "| a\\|b | value |"
        assert lines[2] == "| x\\|y | plain |"
        assert all(line.count(" | ") == 1 for line in (lines[0], lines[2]))

    def test_markdown_table_escapes_newlines(self):
        table = markdown_table(["h"], [["one\ntwo"], ["crlf\r\nend"], ["cr\rend"]])
        lines = table.splitlines()
        # Every cell stays on its own table row.
        assert len(lines) == 5
        assert lines[2] == "| one<br>two |"
        assert lines[3] == "| crlf<br>end |"
        assert lines[4] == "| cr<br>end |"


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summarize_command(self, tmp_path, capsys):
        out = tmp_path / "pano.pgm"
        code = main(["summarize", "--input", "input2", "--frames", "8", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "stitched=" in capsys.readouterr().out

    def test_campaign_command(self, tmp_path, capsys):
        record = tmp_path / "campaign.json"
        code = main(
            [
                "campaign",
                "--input",
                "input2",
                "--frames",
                "8",
                "-n",
                "6",
                "--out",
                str(record),
            ]
        )
        assert code == 0
        payload = load_json(record)
        assert payload["n_injections"] == 6
        assert "mask" in capsys.readouterr().out

    def test_experiment_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        code = main(["experiment", "fig08", "--scale", "tiny"])
        assert code == 0
        assert "fig08" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
