"""Smoke tests for the campaign-based experiment entry points (TINY scale).

These run real (small) injection campaigns end to end, so they are the
slowest tests in the suite (~2-3 minutes together).  The benchmark
harness exercises the same entry points at full scale with shape
assertions; here we only check structural integrity.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ALGORITHMS,
    TINY,
    fig09_coverage,
    fig10_resiliency,
    fig11a_approx_resiliency,
    fig12_sdc_quality,
)
from repro.faultinject.registers import RegKind


class TestFig09:
    def test_structure(self):
        study = fig09_coverage(TINY)
        assert study.campaign.counts.total == TINY.convergence_injections
        assert study.campaign.register_histogram.sum() == TINY.convergence_injections
        assert study.register_cv >= 0.0
        xs, ys = study.campaign.running.series(
            __import__("repro.faultinject.outcomes", fromlist=["Outcome"]).Outcome.MASKED
        )
        assert len(xs) == TINY.convergence_injections
        assert np.all((ys >= 0) & (ys <= 1))


class TestFig10:
    def test_structure(self):
        cells = fig10_resiliency(TINY)
        assert len(cells) == 4  # 2 inputs x 2 register kinds
        kinds = {(c.input_name, c.kind) for c in cells}
        assert ("input1", RegKind.GPR) in kinds
        assert ("input2", RegKind.FPR) in kinds
        for cell in cells:
            assert cell.counts.total == TINY.injections
            assert sum(cell.rates().values()) == pytest.approx(1.0)

    def test_fpr_masks_more_than_gpr(self):
        cells = fig10_resiliency(TINY)
        from repro.faultinject.outcomes import Outcome

        gpr = [c for c in cells if c.kind is RegKind.GPR]
        fpr = [c for c in cells if c.kind is RegKind.FPR]
        mean_gpr_mask = np.mean([c.counts.rate(Outcome.MASKED) for c in gpr])
        mean_fpr_mask = np.mean([c.counts.rate(Outcome.MASKED) for c in fpr])
        assert mean_fpr_mask > mean_gpr_mask


class TestFig11a:
    def test_structure(self):
        cells = fig11a_approx_resiliency(TINY)
        assert len(cells) == 2 * len(ALGORITHMS)
        for cell in cells:
            assert cell.kind is RegKind.GPR
            assert cell.counts.total == TINY.injections


class TestFig12:
    def test_structure(self):
        studies = fig12_sdc_quality(TINY)
        assert len(studies) == 2
        for study in studies:
            assert set(study.vs_golden_curves) == set(ALGORITHMS)
            assert set(study.approx_golden_curves) == set(ALGORITHMS)
            for algorithm in ALGORITHMS:
                curve = study.approx_golden_curves[algorithm]
                assert curve.total_sdcs == study.sdc_counts[algorithm]
