"""Tests for the WP toy benchmark and the hot-function study plumbing."""

import numpy as np
import pytest

from repro.analysis.hot import (
    WARP_SITE_PREFIX,
    make_wp_workload,
    run_hot_function_study,
    wp_transform,
)
from repro.runtime.context import ExecutionContext
from repro.summarize.config import VSConfig
from repro.video.synthetic import make_input2


class TestWPWorkload:
    def test_transform_is_perspective(self):
        mat = wp_transform((72, 96))
        assert mat.shape == (3, 3)
        assert mat[2, 0] != 0.0 or mat[2, 1] != 0.0  # genuine projective part

    def test_workload_runs(self, textured_image):
        workload = make_wp_workload(
            textured_image.copy(), wp_transform(textured_image.shape), (240, 320)
        )
        ctx = ExecutionContext()
        out = workload(ctx)
        assert out.shape == (240, 320)
        assert np.count_nonzero(out) > 0
        assert ctx.cycles > 0

    def test_workload_deterministic(self, textured_image):
        workload = make_wp_workload(
            textured_image.copy(), wp_transform(textured_image.shape), (240, 320)
        )
        first = workload(ExecutionContext())
        second = workload(ExecutionContext())
        assert np.array_equal(first, second)


class TestHotFunctionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        stream = make_input2(n_frames=10)
        return run_hot_function_study(stream, VSConfig(), n_injections=40, seed=5)

    def test_both_sides_ran(self, study):
        assert study.vs_campaign.counts.total == 40
        assert study.wp_campaign.counts.total == 40

    def test_in_study_filtering(self, study):
        # Only runs whose flip hit a warp-owned register count.
        assert study.vs_counts.total <= 40
        assert study.wp_counts.total <= 40
        for result in study.vs_campaign.results:
            if result.record.fired and result.record.in_study:
                assert result.record.site.startswith(WARP_SITE_PREFIX)

    def test_masking_gain_defined(self, study):
        gain = study.masking_gain()
        assert -1.0 <= gain <= 1.0
