"""Tests for the experiment harness at tiny scale.

These are smoke-level integration checks: each figure entry point must
run end to end at TINY scale and produce structurally valid results.
The benchmark harness exercises the same entry points at full scale.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ALGORITHMS,
    INPUTS,
    TINY,
    fig05_perf_energy,
    fig06_output_quality,
    fig08_profile,
    fig13_diff_visualization,
    input_stream,
    scale_from_env,
)


class TestScale:
    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env().name == "tiny"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env().name == "quick"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            scale_from_env()


class TestInputs:
    def test_streams_cached(self):
        assert input_stream("input1", TINY) is input_stream("input1", TINY)

    def test_both_inputs_available(self):
        for name in INPUTS:
            stream = input_stream(name, TINY)
            assert len(stream) == TINY.n_frames


class TestFig05:
    def test_rows_cover_grid(self):
        rows = fig05_perf_energy(TINY)
        assert len(rows) == len(INPUTS) * len(ALGORITHMS)
        for row in rows:
            assert row.normalized_time > 0
            assert row.normalized_energy > 0

    def test_baseline_normalized_to_one(self):
        rows = fig05_perf_energy(TINY)
        for row in rows:
            if row.algorithm == "VS":
                assert row.normalized_time == pytest.approx(1.0)
                assert row.normalized_energy == pytest.approx(1.0)
                assert row.normalized_ipc == pytest.approx(1.0)

    def test_ipc_roughly_constant(self):
        """The paper observes IPC stays ~constant across variants."""
        rows = fig05_perf_energy(TINY)
        for row in rows:
            assert 0.9 < row.normalized_ipc < 1.1

    def test_energy_tracks_time(self):
        rows = fig05_perf_energy(TINY)
        for row in rows:
            assert row.normalized_energy == pytest.approx(row.normalized_time, rel=0.1)


class TestFig06:
    def test_quality_rows(self):
        rows = fig06_output_quality(TINY)
        assert len(rows) == len(INPUTS) * len(ALGORITHMS)
        for row in rows:
            assert row.relative_l2_norm >= 0.0
            if row.algorithm == "VS":
                assert row.relative_l2_norm == pytest.approx(0.0)


class TestFig08:
    def test_profile_reports(self):
        reports = fig08_profile(TINY)
        assert len(reports) == len(INPUTS)
        for report in reports:
            assert 0.0 < report.hot_fraction < 1.0
            assert report.hot_fraction <= report.library_fraction <= 1.0
            assert sum(line.fraction for line in report.lines) == pytest.approx(1.0)

    def test_warp_is_hot(self):
        reports = fig08_profile(TINY)
        for report in reports:
            assert report.lines[0].bucket in (
                "warpPerspectiveInvoker",
                "cv::BFMatcher (Hamming)",
            )


class TestFig13:
    def test_panels(self):
        panels = fig13_diff_visualization(TINY)
        assert len(panels) == len(INPUTS)
        for panel in panels:
            assert panel.default_output.shape == panel.approx_output.shape
            assert panel.absolute_diff.shape == panel.default_output.shape
            # Thresholding keeps a subset of the raw difference.
            assert np.all(panel.thresholded_diff <= panel.absolute_diff)
            assert panel.relative_l2_norm >= 0.0

    def test_threshold_reduces_energy(self):
        panels = fig13_diff_visualization(TINY)
        for panel in panels:
            raw = float((panel.absolute_diff.astype(np.float64) ** 2).sum())
            kept = float((panel.thresholded_diff.astype(np.float64) ** 2).sum())
            assert kept <= raw
