"""Edge cases for the injection-sufficiency machinery.

These are the degenerate inputs the stratified planner leans on:
empty, constant and oscillating rate series for the knee detector,
zero histograms for coverage uniformity, and the n=0 / n=1 extremes of
the Wilson-CI width that drive per-cell convergence stopping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import coverage_uniformity, knee_point, wilson_width
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.outcomes import Outcome, OutcomeCounts, RunningRates
from repro.faultinject.registers import RegKind
from tests.analysis.test_convergence import build_running
from tests.faultinject.test_parallel import toy_workload


class TestKneeEdges:
    def test_empty_series_has_no_knee(self):
        assert knee_point(RunningRates()) is None

    def test_single_point_series_settles_immediately(self):
        running = build_running([Outcome.MASKED])
        assert knee_point(running) == 1

    def test_constant_series_settles_at_first_checkpoint(self):
        running = build_running([Outcome.CRASH] * 50)
        assert knee_point(running, tolerance=0.0) == 1

    def test_oscillating_series_never_settles_below_amplitude(self):
        # mask rate alternates 1, 1/2, 2/3, 2/4, ... — every prefix of
        # the alternation deviates from the 0.5 limit by ~1/(2n), so a
        # tolerance far below the tail oscillation leaves no knee before
        # the very last checkpoints.
        outcomes = [Outcome.MASKED, Outcome.CRASH] * 20
        running = build_running(outcomes)
        knee = knee_point(running, tolerance=1e-9)
        assert knee is None or knee >= len(outcomes) - 1

    def test_oscillating_series_settles_within_amplitude(self):
        outcomes = [Outcome.MASKED, Outcome.CRASH] * 200
        running = build_running(outcomes)
        knee = knee_point(running, tolerance=0.05)
        assert knee is not None
        assert knee <= 25


class TestCoverageEdges:
    def test_zero_histogram_is_defined_and_zero(self):
        assert coverage_uniformity(np.zeros(64)) == 0.0

    def test_single_nonzero_bin_scales_with_size(self):
        small = np.zeros(4)
        small[0] = 4
        large = np.zeros(64)
        large[0] = 64
        assert coverage_uniformity(large) > coverage_uniformity(small)

    def test_accepts_plain_lists(self):
        assert coverage_uniformity([1, 1, 1, 1]) == 0.0


class TestWilsonWidthEdges:
    def test_no_samples_is_maximally_unresolved(self):
        assert wilson_width(0, 0) == 1.0

    def test_one_sample_is_wide_but_below_one(self):
        width = wilson_width(1, 1)
        assert 0.5 < width < 1.0
        assert wilson_width(0, 1) == pytest.approx(width)

    def test_symmetric_in_successes(self):
        assert wilson_width(3, 10) == pytest.approx(wilson_width(7, 10))

    def test_decreases_with_samples(self):
        # Hold the point estimate at 0.5 so only n varies (at mixed
        # tiny n the estimate itself moves and the width need not be
        # monotone).
        widths = [wilson_width(n // 2, n) for n in (2, 8, 32, 128, 512)]
        assert widths == sorted(widths, reverse=True)

    def test_scales_with_z(self):
        assert wilson_width(5, 20, z=2.58) > wilson_width(5, 20, z=1.96)

    def test_degenerate_cell_still_needs_samples(self):
        # All-masked cells are not instantly converged: at width target
        # 0.02 a zero-variance rate still needs ~z^2/width samples
        # before the Wilson interval closes.
        assert wilson_width(10, 10) > 0.02
        assert wilson_width(500, 500) < 0.02


class TestNeverConvergingCell:
    def test_unreachable_width_stops_at_the_budget(self):
        """A cell that cannot converge must hit --max-injections cleanly."""
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        golden = toy_workload(ctx)
        config = CampaignConfig(
            n_injections=1,
            kind=RegKind.GPR,
            seed=3,
            workers=1,
            sampling="stratified",
            # A width no finite sample count on this toy can reach
            # within the budget.
            ci_width=0.001,
            round_size=8,
            strata=(1, 2, 2),
            max_injections=64,
        )
        campaign = run_campaign(toy_workload, golden, ctx.cycles, config)
        summary = campaign.sampling
        assert summary.budget_exhausted
        assert summary.total_draws == 64
        assert summary.cells_converged == 0
        for stats in summary.cells:
            assert stats.converged_round is None
