"""Tests for knee detection and coverage uniformity."""

import numpy as np
import pytest

from repro.analysis.convergence import coverage_uniformity, knee_point
from repro.faultinject.outcomes import Outcome, OutcomeCounts, RunningRates


def build_running(outcomes: list[Outcome]) -> RunningRates:
    counts = OutcomeCounts()
    running = RunningRates()
    for outcome in outcomes:
        counts.add(outcome)
        running.record(counts)
    return running


class TestKnee:
    def test_settles_after_burn_in(self):
        # 10 crashes, then a long steady alternation: rates converge.
        outcomes = [Outcome.CRASH] * 10 + [Outcome.MASKED, Outcome.CRASH] * 200
        running = build_running(outcomes)
        knee = knee_point(running, tolerance=0.05)
        assert knee is not None
        assert knee < 150

    def test_never_settles(self):
        # Distribution keeps drifting: first all masked, then all crash.
        outcomes = [Outcome.MASKED] * 100 + [Outcome.CRASH] * 100
        running = build_running(outcomes)
        knee = knee_point(running, tolerance=0.01)
        assert knee is None or knee > 150

    def test_empty_running(self):
        assert knee_point(RunningRates()) is None

    def test_tolerance_monotone(self):
        outcomes = [Outcome.CRASH] * 5 + [Outcome.MASKED, Outcome.CRASH] * 100
        running = build_running(outcomes)
        loose = knee_point(running, tolerance=0.2)
        tight = knee_point(running, tolerance=0.01)
        assert loose is not None
        if tight is not None:
            assert loose <= tight


class TestCoverageUniformity:
    def test_uniform_histogram_is_zero(self):
        assert coverage_uniformity(np.full(32, 10)) == 0.0

    def test_skewed_histogram_is_large(self):
        hist = np.zeros(32)
        hist[0] = 320
        assert coverage_uniformity(hist) > 3.0

    def test_empty_histogram(self):
        assert coverage_uniformity(np.zeros(32)) == 0.0

    def test_random_uniform_is_small(self):
        rng = np.random.default_rng(0)
        hist = np.bincount(rng.integers(0, 32, 2000), minlength=32)
        assert coverage_uniformity(hist) < 0.3
