"""Tests for the content-addressed campaign result store (both layouts)."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.forensics.store import (
    LAYOUT_V1,
    LAYOUT_V2,
    CampaignStore,
    StoreError,
    build_record,
    campaign_id,
    encode_record_line,
    record_summary,
)
from repro.forensics.synth import synthesize_corpus, synthesize_record

from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload

LAYOUTS = (LAYOUT_V1, LAYOUT_V2)


@pytest.fixture(scope="module")
def toy_campaign():
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    campaign = run_campaign(
        toy_workload,
        golden,
        cycles,
        CampaignConfig(
            n_injections=40, kind=RegKind.GPR, seed=9, probe=True, keep_sdc_outputs=True
        ),
    )
    return campaign, golden


class TestBuildRecord:
    def test_record_is_json_and_content_addressed(self, toy_campaign):
        campaign, golden = toy_campaign
        record = build_record(campaign, golden_output=golden, label="toy")
        json.dumps(record)  # storable end to end
        assert len(record["injections"]) == 40
        assert record["counts"]["total"] == 40
        assert record["divergence"]["probed"] == 40
        # Identical campaign -> identical id (content addressing).
        again = build_record(campaign, golden_output=golden, label="toy")
        assert campaign_id(record) == campaign_id(again)
        assert len(campaign_id(record)) == 16

    def test_label_changes_id(self, toy_campaign):
        campaign, golden = toy_campaign
        a = build_record(campaign, label="a")
        b = build_record(campaign, label="b")
        assert campaign_id(a) != campaign_id(b)

    def test_sdc_quality_requires_golden(self, toy_campaign):
        campaign, golden = toy_campaign
        assert build_record(campaign)["sdc_quality"] == []
        scored = build_record(campaign, golden_output=golden)["sdc_quality"]
        assert len(scored) == campaign.counts.sdc
        for entry in scored:
            assert set(entry) == {"index", "relative_l2", "ed"}


@pytest.mark.parametrize("layout", LAYOUTS)
class TestCampaignStoreBothLayouts:
    """Behaviour every layout must share, campaign-record in, record out."""

    def test_put_get_roundtrip(self, toy_campaign, tmp_path, layout):
        campaign, golden = toy_campaign
        store = CampaignStore(tmp_path / "store", layout=layout)
        record = build_record(campaign, golden_output=golden, label="toy")
        cid = store.put(record)
        assert store.get(cid) == record
        assert store.ids() == [cid]
        assert store.summaries()[cid]["probe"] is True
        assert store.summaries()[cid]["sampling"] == "uniform"

    def test_put_is_idempotent(self, toy_campaign, tmp_path, layout):
        campaign, _ = toy_campaign
        store = CampaignStore(tmp_path / "store", layout=layout)
        record = build_record(campaign, label="same")
        assert store.put(record) == store.put(record)
        assert len(store.ids()) == 1
        assert len(list(store.records())) == 1

    def test_insertion_order_preserved(self, toy_campaign, tmp_path, layout):
        campaign, _ = toy_campaign
        store = CampaignStore(tmp_path / "store", layout=layout)
        ids = [store.put(build_record(campaign, label=label)) for label in "abc"]
        assert store.ids() == ids
        assert [cid for cid, _record in store.records()] == ids

    def test_autodetect_matches_creating_layout(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "store", layout=layout)
        store.put(synthesize_record(seed=1, n_injections=8))
        store.close()
        detected = CampaignStore(tmp_path / "store")
        assert detected.layout == layout
        assert len(detected.ids()) == 1

    def test_missing_id_rejected(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "store", layout=layout)
        with pytest.raises(StoreError, match="not in store"):
            store.get("deadbeefdeadbeef")

    def test_wrong_schema_rejected(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "store", layout=layout)
        with pytest.raises(StoreError, match="schema"):
            store.put({"schema": 999})

    def test_ids_stable_across_layouts(self, tmp_path, layout):
        # Content addressing is layout-independent: the same records get
        # the same ids whether they land in a v1 log or v2 segments.
        record = synthesize_record(seed=5, n_injections=12)
        store = CampaignStore(tmp_path / "store", layout=layout)
        assert store.put(record) == campaign_id(record)

    def test_put_campaign_shortcut(self, toy_campaign, tmp_path, layout):
        campaign, golden = toy_campaign
        store = CampaignStore(tmp_path / "store", layout=layout)
        cid = store.put_campaign(campaign, golden_output=golden, label="short")
        assert store.get(cid)["label"] == "short"


class TestV1Layout:
    def test_corrupted_record_detected(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        cid = store.put(synthesize_record(seed=2, n_injections=10, label="x"))
        text = store.records_path.read_text()
        # Flip a stored count without recomputing the CRC.
        store.records_path.write_text(text.replace('"masked":', '"maskex":', 1))
        with pytest.raises(StoreError):
            CampaignStore(tmp_path / "store").get(cid)

    def test_put_appends_index_incrementally(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        records = synthesize_corpus(3, seed=7, n_injections=10)
        sizes = []
        for record in records:
            store.put(record)
            sizes.append(store.index_jsonl_path.stat().st_size)
        # One appended line per put: strictly growing, never rewritten
        # smaller, and exactly one line per record.
        assert sizes == sorted(sizes)
        assert len(store.index_jsonl_path.read_text().splitlines()) == 3
        # The legacy monolithic index is never written anymore.
        assert not store.index_path.exists()

    def test_missing_side_index_rebuilt(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        ids = [store.put(r) for r in synthesize_corpus(3, seed=20, n_injections=10)]
        store.index_jsonl_path.unlink()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids
        assert fresh.index_jsonl_path.exists()

    def test_corrupt_side_index_rebuilt(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        ids = [store.put(r) for r in synthesize_corpus(2, seed=21, n_injections=10)]
        store.index_jsonl_path.write_text("definitely{not json\n")
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids
        assert fresh.summaries()[ids[0]]["total"] == 10

    def test_legacy_index_json_read(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        records = synthesize_corpus(2, seed=22, n_injections=10)
        ids = [store.put(r) for r in records]
        # Simulate a store written before the incremental index: only
        # the monolithic index.json is present.
        legacy = {
            "schema": 1,
            "order": ids,
            "campaigns": {c: record_summary(r) for c, r in zip(ids, records)},
        }
        store.index_path.write_text(json.dumps(legacy, indent=2, sort_keys=True) + "\n")
        store.index_jsonl_path.unlink()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids
        assert fresh.get(ids[1]) == records[1]

    def test_legacy_index_json_put_preserves_prior_records(self, tmp_path):
        # Putting into an index.json-only store must materialize the
        # full side index first: a lone appended index.jsonl line would
        # shadow index.json on reopen and hide every prior campaign.
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        records = synthesize_corpus(2, seed=23, n_injections=10)
        ids = [store.put(r) for r in records]
        legacy = {
            "schema": 1,
            "order": ids,
            "campaigns": {c: record_summary(r) for c, r in zip(ids, records)},
        }
        store.index_path.write_text(json.dumps(legacy, indent=2, sort_keys=True) + "\n")
        store.index_jsonl_path.unlink()
        writer = CampaignStore(tmp_path / "store")
        third = writer.put(synthesize_record(seed=24, n_injections=10))
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids + [third]
        assert set(fresh.summaries()) == {*ids, third}
        # Dedupe still works after reopen: re-putting an old record must
        # not append a duplicate log line.
        assert fresh.put(records[0]) == ids[0]
        assert len(fresh.records_path.read_text().splitlines()) == 3

    def test_torn_log_tail_ignored_by_readers(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        cid = store.put(synthesize_record(seed=25, n_injections=10))
        with open(store.records_path, "ab") as handle:
            handle.write(b'{"id":"torn-partial-line')
        before = store.records_path.read_bytes()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == [cid]
        assert [c for c, _r in fresh.records()] == [cid]
        assert fresh.records_path.read_bytes() == before

    def test_torn_log_tail_truncated_before_write(self, tmp_path):
        # A crashed put's partial final line must be dropped before the
        # next append, or the fragment fuses with the new record into
        # one unparseable line.
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        first = store.put(synthesize_record(seed=26, n_injections=10))
        with open(store.records_path, "ab") as handle:
            handle.write(b'{"id":"torn-partial-line')
        fresh = CampaignStore(tmp_path / "store")
        second = fresh.put(synthesize_record(seed=27, n_injections=10))
        assert fresh.ids() == [first, second]
        assert b"torn-partial-line" not in fresh.records_path.read_bytes()
        for line in fresh.records_path.read_text().splitlines():
            json.loads(line)  # every surviving line is whole
        assert [c for c, _r in CampaignStore(tmp_path / "store").records()] == [
            first,
            second,
        ]

    def test_stale_side_index_resynced_on_open(self, tmp_path):
        # A crash between the log append and the index append loses only
        # the index line; the next open re-derives it from the log tail.
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V1)
        records = synthesize_corpus(2, seed=28, n_injections=10)
        first, second = (store.put(r) for r in records)
        index_lines = store.index_jsonl_path.read_text().splitlines()
        store.index_jsonl_path.write_text(index_lines[0] + "\n")
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == [first, second]
        assert fresh.summaries()[second]["total"] == 10
        # ...and dedupe agrees with the log again: no duplicate append.
        assert fresh.put(records[1]) == second
        assert len(fresh.records_path.read_text().splitlines()) == 2
        again = CampaignStore(tmp_path / "store")
        assert again.ids() == [first, second]


class TestV2Layout:
    def test_segments_roll_at_size_cap(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2, segment_max_bytes=2048)
        ids = [store.put(r) for r in synthesize_corpus(5, seed=30, n_injections=20)]
        segments = sorted(p.name for p in store.segments_dir.iterdir())
        assert len(segments) > 1
        # Every segment stays bounded by cap + one record's overflow.
        for name in segments[:-1]:
            assert (store.segments_dir / name).stat().st_size >= 2048
        assert store.ids() == ids
        for cid in ids:
            assert campaign_id(store.get(cid)) == cid

    def test_get_reads_one_seek_not_a_scan(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2, segment_max_bytes=2048)
        records = synthesize_corpus(4, seed=31, n_injections=20)
        ids = [store.put(r) for r in records]
        segment, offset, length = store.location(ids[2])
        raw = (store.segments_dir / segment).read_bytes()[offset : offset + length]
        entry = json.loads(raw.decode("utf-8"))
        assert entry["id"] == ids[2]
        assert entry["record"] == records[2]

    def test_corrupted_record_detected(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        cid = store.put(synthesize_record(seed=32, n_injections=10))
        store.close()
        segment = tmp_path / "store" / "segments" / "seg-000001.jsonl"
        segment.write_bytes(segment.read_bytes().replace(b'"masked":', b'"maskex":', 1))
        fresh = CampaignStore(tmp_path / "store")
        with pytest.raises(StoreError, match="CRC"):
            fresh.get(cid)

    def test_missing_sqlite_rebuilt_on_open(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        ids = [store.put(r) for r in synthesize_corpus(3, seed=33, n_injections=10)]
        store.close()
        (tmp_path / "store" / "index.sqlite").unlink()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids

    def test_corrupt_sqlite_rebuilt_on_open(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        ids = [store.put(r) for r in synthesize_corpus(2, seed=34, n_injections=10)]
        store.close()
        (tmp_path / "store" / "index.sqlite").write_bytes(b"not a database")
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids

    def test_stale_sqlite_synced_incrementally(self, tmp_path):
        # A record appended to the segment but missing from the index
        # (the index write raced a crash) is picked up on the next open.
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        first = store.put(synthesize_record(seed=35, n_injections=10))
        store.close()
        stale = CampaignStore(tmp_path / "store")
        second = stale.put(synthesize_record(seed=36, n_injections=10))
        stale.close()
        # Roll the index back to the first record's state.
        conn = sqlite3.connect(tmp_path / "store" / "index.sqlite")
        seq, segment, offset = conn.execute(
            "SELECT seq, segment, offset FROM campaigns WHERE cid = ?", (second,)
        ).fetchone()
        conn.execute("DELETE FROM injections WHERE campaign_seq = ?", (seq,))
        conn.execute("DELETE FROM campaigns WHERE seq = ?", (seq,))
        conn.execute(
            "UPDATE segments SET indexed_bytes = ? WHERE name = ?", (offset, segment)
        )
        conn.commit()
        conn.close()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == [first, second]

    def test_torn_tail_ignored_by_readers(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        cid = store.put(synthesize_record(seed=40, n_injections=10))
        store.close()
        segment = tmp_path / "store" / "segments" / "seg-000001.jsonl"
        before = segment.read_bytes()
        # A crashed put leaves a partial, never-acknowledged final line.
        with open(segment, "ab") as handle:
            handle.write(b'{"id":"torn-partial-line')
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == [cid]
        assert [c for c, _r in fresh.records()] == [cid]
        # A pure read never modifies the file.
        assert segment.read_bytes() == before + b'{"id":"torn-partial-line'

    def test_torn_tail_truncated_before_write(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        first = store.put(synthesize_record(seed=41, n_injections=10))
        store.close()
        segment = tmp_path / "store" / "segments" / "seg-000001.jsonl"
        with open(segment, "ab") as handle:
            handle.write(b'{"id":"torn-partial-line')
        fresh = CampaignStore(tmp_path / "store")
        second = fresh.put(synthesize_record(seed=42, n_injections=10))
        assert fresh.ids() == [first, second]
        assert b"torn-partial-line" not in segment.read_bytes()
        for line in segment.read_text().splitlines():
            json.loads(line)  # every surviving line is whole

    def test_put_indexes_foreign_tail_before_append(self, tmp_path):
        # Another writer appended a record but crashed before committing
        # its index rows (or is still mid-put): our put must index that
        # tail before recording indexed_bytes past it, or the foreign
        # record would be marked covered without ever getting rows.
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        first = store.put(synthesize_record(seed=50, n_injections=10))
        orphan = synthesize_record(seed=51, n_injections=10)
        ocid, line = encode_record_line(orphan)
        with open(tmp_path / "store" / "segments" / "seg-000001.jsonl", "ab") as handle:
            handle.write((line + "\n").encode("utf-8"))
        third = store.put(synthesize_record(seed=52, n_injections=10))
        assert store.ids() == [first, ocid, third]
        assert store.get(ocid) == orphan
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == [first, ocid, third]

    def test_interleaved_writers_share_store(self, tmp_path):
        # Two long-lived handles on the same root must see each other's
        # appends (the advisory lock + per-put tail sync make this safe
        # across processes too).
        a = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        b = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        first = a.put(synthesize_record(seed=53, n_injections=10))
        second = b.put(synthesize_record(seed=54, n_injections=10))
        third = a.put(synthesize_record(seed=55, n_injections=10))
        a.close()
        b.close()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == [first, second, third]
        for cid in (first, second, third):
            assert campaign_id(fresh.get(cid)) == cid

    def test_schema_version_bump_forces_rebuild(self, tmp_path):
        store = CampaignStore(tmp_path / "store", layout=LAYOUT_V2)
        ids = [store.put(synthesize_record(seed=37, n_injections=10))]
        store.close()
        conn = sqlite3.connect(tmp_path / "store" / "index.sqlite")
        conn.execute("PRAGMA user_version = 999")
        conn.commit()
        conn.close()
        fresh = CampaignStore(tmp_path / "store")
        assert fresh.ids() == ids
