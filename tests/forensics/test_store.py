"""Tests for the content-addressed campaign result store."""

from __future__ import annotations

import json

import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.forensics.store import CampaignStore, StoreError, build_record, campaign_id

from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload


@pytest.fixture(scope="module")
def toy_campaign():
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    campaign = run_campaign(
        toy_workload,
        golden,
        cycles,
        CampaignConfig(
            n_injections=40, kind=RegKind.GPR, seed=9, probe=True, keep_sdc_outputs=True
        ),
    )
    return campaign, golden


class TestBuildRecord:
    def test_record_is_json_and_content_addressed(self, toy_campaign):
        campaign, golden = toy_campaign
        record = build_record(campaign, golden_output=golden, label="toy")
        json.dumps(record)  # storable end to end
        assert len(record["injections"]) == 40
        assert record["counts"]["total"] == 40
        assert record["divergence"]["probed"] == 40
        # Identical campaign -> identical id (content addressing).
        again = build_record(campaign, golden_output=golden, label="toy")
        assert campaign_id(record) == campaign_id(again)
        assert len(campaign_id(record)) == 16

    def test_label_changes_id(self, toy_campaign):
        campaign, golden = toy_campaign
        a = build_record(campaign, label="a")
        b = build_record(campaign, label="b")
        assert campaign_id(a) != campaign_id(b)

    def test_sdc_quality_requires_golden(self, toy_campaign):
        campaign, golden = toy_campaign
        assert build_record(campaign)["sdc_quality"] == []
        scored = build_record(campaign, golden_output=golden)["sdc_quality"]
        assert len(scored) == campaign.counts.sdc
        for entry in scored:
            assert set(entry) == {"index", "relative_l2", "ed"}


class TestCampaignStore:
    def test_put_get_roundtrip(self, toy_campaign, tmp_path):
        campaign, golden = toy_campaign
        store = CampaignStore(tmp_path / "store")
        record = build_record(campaign, golden_output=golden, label="toy")
        cid = store.put(record)
        assert store.get(cid) == record
        assert store.ids() == [cid]
        assert store.summaries()[cid]["probe"] is True

    def test_put_is_idempotent(self, toy_campaign, tmp_path):
        campaign, _ = toy_campaign
        store = CampaignStore(tmp_path / "store")
        record = build_record(campaign, label="same")
        assert store.put(record) == store.put(record)
        assert len(store.ids()) == 1
        assert len(store.records_path.read_text().splitlines()) == 1

    def test_insertion_order_preserved(self, toy_campaign, tmp_path):
        campaign, _ = toy_campaign
        store = CampaignStore(tmp_path / "store")
        ids = [store.put(build_record(campaign, label=label)) for label in "abc"]
        assert store.ids() == ids

    def test_missing_id_rejected(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(StoreError, match="not in store"):
            store.get("deadbeefdeadbeef")

    def test_corrupted_record_detected(self, toy_campaign, tmp_path):
        campaign, _ = toy_campaign
        store = CampaignStore(tmp_path / "store")
        cid = store.put(build_record(campaign, label="x"))
        text = store.records_path.read_text()
        # Flip a stored count without recomputing the CRC.
        store.records_path.write_text(text.replace('"masked":', '"maskex":', 1))
        with pytest.raises(StoreError):
            store.get(cid)

    def test_wrong_schema_rejected(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(StoreError, match="schema"):
            store.put({"schema": 999})

    def test_put_campaign_shortcut(self, toy_campaign, tmp_path):
        campaign, golden = toy_campaign
        store = CampaignStore(tmp_path / "store")
        cid = store.put_campaign(campaign, golden_output=golden, label="short")
        assert store.get(cid)["label"] == "short"
