"""Acceptance: divergence probes never change campaign results.

The forensics determinism contract: a probed campaign produces
bit-identical outcome counts, running-rate series, histograms and SDC
outputs to an unprobed one, at ``workers=1`` and ``workers>1``, and a
probed journaled campaign survives interrupt + resume with its
divergence records intact.
"""

from __future__ import annotations

import os
from unittest import mock

import pytest

from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.journal import ABORT_AFTER_ENV, CampaignInterrupted
from repro.faultinject.registers import RegKind

from tests.faultinject.test_parallel import (
    ToyWorkloadSpec,
    _campaigns_equal,
    toy_workload,
)


def _toy_campaign(workers: int, probe: bool, **overrides) -> CampaignResult:
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    base = dict(n_injections=60, kind=RegKind.GPR, seed=9, workers=workers, probe=probe)
    base.update(overrides)
    return run_campaign(
        toy_workload,
        golden,
        cycles,
        CampaignConfig(**base),
        spec=spec if workers > 1 else None,
    )


def _divergences_equal(first: CampaignResult, second: CampaignResult) -> None:
    assert len(first.results) == len(second.results)
    for a, b in zip(first.results, second.results):
        assert a.divergence == b.divergence


class TestToyProbeEquivalence:
    def test_probed_serial_matches_unprobed(self):
        _campaigns_equal(_toy_campaign(1, probe=False), _toy_campaign(1, probe=True))

    def test_probed_parallel_matches_unprobed_serial(self):
        _campaigns_equal(_toy_campaign(1, probe=False), _toy_campaign(3, probe=True))

    def test_probed_parallel_matches_probed_serial(self):
        serial = _toy_campaign(1, probe=True)
        parallel = _toy_campaign(3, probe=True)
        _campaigns_equal(serial, parallel)
        # Divergence records merge in chunk order: same per-injection
        # records regardless of worker count.
        _divergences_equal(serial, parallel)

    def test_divergence_only_on_probed_runs(self):
        assert all(r.divergence is None for r in _toy_campaign(1, probe=False).results)
        assert all(r.divergence is not None for r in _toy_campaign(1, probe=True).results)


class TestVSProbeEquivalence:
    @pytest.fixture(scope="class")
    def vs_setup(self):
        from repro.analysis.experiments import TINY, input_stream, vs_workload
        from repro.faultinject.parallel import VSWorkloadSpec
        from repro.summarize.approximations import config_for
        from repro.summarize.golden import golden_run

        stream = input_stream("input1", TINY)
        config = config_for("VS")
        golden = golden_run(stream, config)
        spec = VSWorkloadSpec.for_stream(stream, config)
        assert spec is not None
        return vs_workload(stream, config), golden, spec

    def _run(self, vs_setup, workers: int, probe: bool) -> CampaignResult:
        workload, golden, spec = vs_setup
        return run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            CampaignConfig(
                n_injections=6,
                kind=RegKind.GPR,
                seed=21,
                workers=workers,
                probe=probe,
                keep_sdc_outputs=True,
            ),
            spec=spec,
        )

    def test_vs_campaign_unchanged_by_probing(self, vs_setup):
        unprobed = self._run(vs_setup, workers=1, probe=False)
        probed = self._run(vs_setup, workers=1, probe=True)
        _campaigns_equal(unprobed, probed)
        _campaigns_equal(unprobed, self._run(vs_setup, workers=2, probe=True))

    def test_vs_divergence_attributes_stages(self, vs_setup):
        probed = self._run(vs_setup, workers=1, probe=True)
        # Every probed run carries a record; completed runs reached the
        # stitch, and any SDC must have diverged somewhere upstream.
        assert all(r.divergence is not None for r in probed.results)
        for result in probed.results:
            if result.outcome.value == "mask":
                assert result.divergence.last_stage == "stitch"
            if result.outcome.value == "sdc":
                assert result.divergence.first_divergence is not None
                assert result.divergence.diverged("stitch")


class TestJournaledProbeResume:
    def _config(self) -> CampaignConfig:
        return CampaignConfig(
            n_injections=40, kind=RegKind.GPR, seed=9, workers=1, probe=True
        )

    def test_interrupt_resume_preserves_divergence(self, tmp_path):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        reference = run_campaign(toy_workload, golden, cycles, self._config())
        journal = tmp_path / "probed.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(
                    toy_workload, golden, cycles, self._config(), journal_path=journal
                )
        resumed = run_campaign(
            toy_workload, golden, cycles, self._config(), journal_path=journal, resume=True
        )
        _campaigns_equal(reference, resumed)
        _divergences_equal(reference, resumed)
        assert all(r.divergence is not None for r in resumed.results)

    def test_probe_flag_in_fingerprint_refuses_mixed_resume(self, tmp_path):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        journal = tmp_path / "probed.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(
                    toy_workload, golden, cycles, self._config(), journal_path=journal
                )
        unprobed = CampaignConfig(n_injections=40, kind=RegKind.GPR, seed=9, workers=1)
        with pytest.raises(ValueError, match="fingerprint|config"):
            run_campaign(
                toy_workload, golden, cycles, unprobed, journal_path=journal, resume=True
            )
