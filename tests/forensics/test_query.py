"""Query engine tests: the SQLite index must equal the brute scan."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.forensics.query import (
    CAMPAIGN_FIELDS,
    INJECTION_FIELDS,
    QUERY_FIELDS,
    QueryError,
    StoreQuery,
    index_query,
    query_sections,
    run_query,
    scan_query,
)
from repro.forensics.report import render_sections
from repro.forensics.store import (
    LAYOUT_V1,
    LAYOUT_V2,
    CampaignStore,
    StoreError,
)
from repro.forensics.synth import synthesize_corpus

pytest.importorskip("hypothesis")


@pytest.fixture(scope="module")
def corpus():
    return synthesize_corpus(6, seed=100, n_injections=40, stratified_every=3)


@pytest.fixture(scope="module")
def v2_store(tmp_path_factory, corpus):
    store = CampaignStore(tmp_path_factory.mktemp("qv2") / "store", layout=LAYOUT_V2)
    for record in corpus:
        store.put(record)
    return store


@pytest.fixture(scope="module")
def v1_store(tmp_path_factory, corpus):
    store = CampaignStore(tmp_path_factory.mktemp("qv1") / "store", layout=LAYOUT_V1)
    for record in corpus:
        store.put(record)
    return store


class TestStoreQuery:
    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown query field"):
            StoreQuery(group_by=("nope",))
        with pytest.raises(QueryError, match="unknown query field"):
            StoreQuery(filters={"nope": ("x",)})

    def test_from_options_parses_clauses(self):
        query = StoreQuery.from_options(
            where=["outcome=sdc", "outcome=hang", "register_class=2"],
            group_by="stage,kind",
        )
        assert query.filters == {"outcome": ("sdc", "hang"), "register_class": (2,)}
        assert query.group_by == ("stage", "kind")

    def test_from_options_rejects_bad_clause(self):
        with pytest.raises(QueryError, match="field=value"):
            StoreQuery.from_options(where=["outcome"])
        with pytest.raises(QueryError, match="integer"):
            StoreQuery.from_options(where=["register_class=warp"])

    def test_empty_group_by_rejected(self):
        with pytest.raises(QueryError, match="at least one"):
            StoreQuery(group_by=())


class TestEngineParity:
    """index_query is the fast path; scan_query is the semantics."""

    def test_default_query_matches(self, v2_store):
        query = StoreQuery()
        assert index_query(v2_store, query) == scan_query(v2_store, query)

    def test_rates_sum_to_one_without_filters(self, v2_store):
        result = index_query(v2_store, StoreQuery(group_by=("outcome",)))
        assert result["total"] == sum(row["count"] for row in result["rows"])
        assert sum(row["rate"] for row in result["rows"]) == pytest.approx(1.0)

    def test_v1_scan_equals_v2_index(self, v1_store, v2_store):
        # Same corpus, both layouts: the layout must be invisible.
        query = StoreQuery(
            filters={"outcome": ("sdc", "crash")}, group_by=("register_class", "stage")
        )
        assert run_query(v1_store, query) == run_query(v2_store, query)

    def test_index_query_requires_v2(self, v1_store):
        with pytest.raises(StoreError, match="no SQLite index"):
            index_query(v1_store, StoreQuery())

    def test_campaign_filters_scope_population(self, v2_store, corpus):
        result = index_query(
            v2_store, StoreQuery(filters={"kind": ("gpr",)}, group_by=("campaign",))
        )
        gpr_records = [r for r in corpus if r["fingerprint"]["kind"] == "gpr"]
        assert result["total"] == sum(len(r["injections"]) for r in gpr_records)
        assert len(result["rows"]) == len(gpr_records)

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_property_index_equals_scan(self, data, v2_store):
        # Generated group-bys over the full vocabulary, plus filters on a
        # vocabulary-appropriate value pool (hit and miss values mixed).
        group_by = tuple(
            data.draw(
                st.lists(
                    st.sampled_from(QUERY_FIELDS), min_size=1, max_size=3, unique=True
                )
            )
        )
        pools = {
            "campaign": st.sampled_from(v2_store.ids() + ["absent" * 2]),
            "label": st.sampled_from(["synthetic-100", "synthetic-103", "missing"]),
            "kind": st.sampled_from(["gpr", "fpr", "simd"]),
            "sampling": st.sampled_from(["uniform", "stratified"]),
            "seed": st.integers(min_value=98, max_value=107),
            "probe": st.sampled_from([0, 1]),
            "outcome": st.sampled_from(["mask", "sdc", "crash", "hang"]),
            "crash_kind": st.sampled_from(["", "segv", "abort"]),
            "register": st.integers(min_value=0, max_value=33),
            "bit": st.integers(min_value=0, max_value=65),
            "register_class": st.integers(min_value=0, max_value=4),
            "bit_octet": st.integers(min_value=0, max_value=8),
            "stage": st.sampled_from(
                ["fast", "orb", "match", "homography", "warp", "stitch", "none", "unprobed"]
            ),
            "last_stage": st.sampled_from(["fast", "stitch", "none", "unprobed"]),
            "fired": st.sampled_from([0, 1]),
        }
        filter_fields = data.draw(
            st.lists(st.sampled_from(QUERY_FIELDS), max_size=3, unique=True)
        )
        filters = {
            field: tuple(
                data.draw(st.lists(pools[field], min_size=1, max_size=2, unique=True))
            )
            for field in filter_fields
        }
        query = StoreQuery(filters=filters, group_by=group_by)
        assert index_query(v2_store, query) == scan_query(v2_store, query)


class TestRendering:
    def test_sections_render_all_formats(self, v2_store):
        result = run_query(
            v2_store,
            StoreQuery(filters={"outcome": ("sdc",)}, group_by=("stage",)),
        )
        for fmt in ("terminal", "markdown", "html"):
            text = render_sections("Store query", query_sections(result), fmt)
            assert "stage" in text
        # Deterministic: same query, same bytes.
        again = run_query(
            v2_store,
            StoreQuery(filters={"outcome": ("sdc",)}, group_by=("stage",)),
        )
        assert render_sections(
            "Store query", query_sections(result), "markdown"
        ) == render_sections("Store query", query_sections(again), "markdown")

    def test_empty_result_notes(self, v2_store):
        result = run_query(
            v2_store, StoreQuery(filters={"kind": ("simd",)}, group_by=("outcome",))
        )
        text = render_sections("Store query", query_sections(result), "terminal")
        assert "no injections match" in text

    def test_field_vocabulary_is_closed(self):
        assert set(QUERY_FIELDS) == set(CAMPAIGN_FIELDS) | set(INJECTION_FIELDS)
