"""Tests for deterministic reports and cross-campaign regression diffs."""

from __future__ import annotations

import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.forensics.report import (
    diff_records,
    render_diff,
    render_report,
    two_proportion_z,
)
from repro.forensics.store import build_record
from repro.runtime.context import ExecutionContext
from repro.runtime.errors import SegmentationFault

from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload


@pytest.fixture(scope="module")
def toy_record():
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    campaign = run_campaign(
        toy_workload,
        golden,
        cycles,
        CampaignConfig(
            n_injections=60, kind=RegKind.GPR, seed=9, probe=True, keep_sdc_outputs=True
        ),
    )
    return build_record(campaign, golden_output=golden, label="baseline"), golden


def _crashier_workload(ctx: ExecutionContext):
    """A 'regression': every injected run dies with a memory fault."""
    toy_workload(ctx)
    raise SegmentationFault(0, "regressed build always faults")


@pytest.fixture(scope="module")
def regressed_record(toy_record):
    _, golden = toy_record
    spec = ToyWorkloadSpec()
    _, _, cycles = spec.build()
    campaign = run_campaign(
        _crashier_workload,
        golden,
        cycles,
        CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=31),
    )
    return build_record(campaign, label="regressed")


class TestRenderReport:
    def test_byte_deterministic_across_formats(self, toy_record):
        record, _ = toy_record
        for fmt in ("terminal", "markdown", "html"):
            assert render_report(record, fmt, cid="abc") == render_report(
                record, fmt, cid="abc"
            )

    def test_sections_present(self, toy_record):
        record, _ = toy_record
        text = render_report(record, "terminal", cid="abc")
        assert "Campaign report abc" in text
        assert "Outcome rates (Wilson 95% CI)" in text
        assert "Heatmap: sdc by register x bit octet" in text
        assert "Divergence flow" in text
        assert "Pipeline reach" in text

    def test_markdown_renders_tables(self, toy_record):
        record, _ = toy_record
        text = render_report(record, "markdown")
        assert "## Outcome rates (Wilson 95% CI)" in text
        assert "| outcome | count | rate | ci_low | ci_high |" in text

    def test_html_is_escaped_document(self, toy_record):
        record, _ = toy_record
        text = render_report(dict(record, label="<b>evil</b>"), "html")
        assert text.startswith("<!DOCTYPE html>")
        assert "<b>evil</b>" not in text
        assert "&lt;b&gt;evil&lt;/b&gt;" in text

    def test_unknown_format_rejected(self, toy_record):
        record, _ = toy_record
        with pytest.raises(ValueError, match="unknown report format"):
            render_report(record, "pdf")


class TestTwoProportionZ:
    def test_degenerate_inputs(self):
        assert two_proportion_z(0, 0, 5, 10) == 0.0
        assert two_proportion_z(0, 10, 0, 10) == 0.0
        assert two_proportion_z(10, 10, 10, 10) == 0.0

    def test_large_shift_is_significant(self):
        assert abs(two_proportion_z(50, 100, 10, 100)) > 1.96

    def test_symmetric(self):
        assert two_proportion_z(30, 100, 10, 100) == pytest.approx(
            -two_proportion_z(10, 100, 30, 100)
        )


class TestDiff:
    def test_identical_records_are_quiet(self, toy_record):
        record, _ = toy_record
        diff = diff_records(record, record)
        assert diff["flagged"] == []
        assert all(row["z"] == 0.0 for row in diff["rows"])
        text = render_diff(diff, "terminal", cid_a="a", cid_b="a")
        assert "no statistically significant shifts" in text

    def test_injected_regression_is_flagged(self, toy_record, regressed_record):
        record, _ = toy_record
        diff = diff_records(record, regressed_record)
        assert "outcome:crash" in diff["flagged"]
        flagged_row = next(r for r in diff["rows"] if r["metric"] == "outcome:crash")
        assert flagged_row["rate_b"] == 1.0
        assert flagged_row["z"] > 1.96
        text = render_diff(diff, "terminal", cid_a="a", cid_b="b")
        assert "SHIFT" in text
        assert "significant shift(s)" in text

    def test_divergence_rates_compared_only_when_both_probed(
        self, toy_record, regressed_record
    ):
        record, _ = toy_record
        # regressed_record is unprobed: only outcome metrics compared.
        diff = diff_records(record, regressed_record)
        assert all(row["metric"].startswith("outcome:") for row in diff["rows"])
        both = diff_records(record, record)
        assert any(
            row["metric"].startswith("first_divergence:") for row in both["rows"]
        )

    def test_diff_render_deterministic(self, toy_record):
        record, _ = toy_record
        diff = diff_records(record, record)
        for fmt in ("terminal", "markdown", "html"):
            assert render_diff(diff, fmt) == render_diff(diff, fmt)
