"""Migration tests: v1 -> v2 must be lossless, id-stable, byte-stable."""

from __future__ import annotations

import pytest

from repro.forensics.query import StoreQuery, run_query
from repro.forensics.report import diff_records, render_report
from repro.forensics.store import (
    LAYOUT_V1,
    LAYOUT_V2,
    CampaignStore,
    StoreError,
    migrate_store,
    rebuild_store,
)
from repro.forensics.synth import synthesize_corpus, synthesize_record
from repro.observe.trend import build_trend, render_trend


@pytest.fixture
def v1_root(tmp_path):
    root = tmp_path / "store"
    store = CampaignStore(root, layout=LAYOUT_V1)
    for record in synthesize_corpus(5, seed=200, n_injections=30, stratified_every=4):
        store.put(record)
    return root


class TestMigrate:
    def test_ids_and_records_survive(self, v1_root):
        v1 = CampaignStore(v1_root)
        ids = v1.ids()
        records = {cid: v1.get(cid) for cid in ids}
        report = migrate_store(v1_root)
        assert report.ids == ids
        assert report.records == len(ids)
        v2 = CampaignStore(v1_root)
        assert v2.layout == LAYOUT_V2
        assert v2.ids() == ids
        for cid in ids:
            assert v2.get(cid) == records[cid]

    def test_segment_bytes_are_verbatim_copies(self, v1_root):
        original = (v1_root / "campaigns.jsonl").read_bytes()
        migrate_store(v1_root)
        store = CampaignStore(v1_root)
        concatenated = b"".join(
            (store.segments_dir / name).read_bytes()
            for name in sorted(p.name for p in store.segments_dir.iterdir())
        )
        assert concatenated == original

    def test_rendered_reports_are_byte_identical(self, v1_root):
        v1 = CampaignStore(v1_root)
        ids = v1.ids()
        before = {
            cid: render_report(v1.get(cid), cid=cid, fmt="markdown") for cid in ids
        }
        trend_before = render_trend(build_trend(v1), fmt="markdown")
        migrate_store(v1_root)
        v2 = CampaignStore(v1_root)
        for cid in ids:
            assert render_report(v2.get(cid), cid=cid, fmt="markdown") == before[cid]
        assert render_trend(build_trend(v2), fmt="markdown") == trend_before

    def test_diff_unchanged_after_migration(self, v1_root):
        v1 = CampaignStore(v1_root)
        a, b = v1.ids()[:2]
        before = diff_records(v1.get(a), v1.get(b))
        migrate_store(v1_root)
        v2 = CampaignStore(v1_root)
        assert diff_records(v2.get(a), v2.get(b)) == before

    def test_queries_unchanged_after_migration(self, v1_root):
        query = StoreQuery(
            filters={"outcome": ("sdc", "crash")}, group_by=("register_class", "stage")
        )
        before = run_query(CampaignStore(v1_root), query)
        migrate_store(v1_root)
        assert run_query(CampaignStore(v1_root), query) == before

    def test_v1_files_kept_as_backups(self, v1_root):
        report = migrate_store(v1_root)
        assert "campaigns.jsonl.v1" in report.backups
        assert (v1_root / "campaigns.jsonl.v1").exists()
        assert not (v1_root / "campaigns.jsonl").exists()

    def test_segments_respect_size_cap(self, v1_root):
        report = migrate_store(v1_root, segment_max_bytes=4096)
        assert report.segments > 1
        store = CampaignStore(v1_root)
        assert len(store.ids()) == report.records

    def test_store_stays_writable_after_migration(self, v1_root):
        migrate_store(v1_root)
        store = CampaignStore(v1_root)
        count = len(store.ids())
        cid = store.put(synthesize_record(seed=999, n_injections=10))
        assert len(store.ids()) == count + 1
        assert store.get(cid)["fingerprint"]["seed"] == 999

    def test_already_v2_rejected(self, v1_root):
        migrate_store(v1_root)
        with pytest.raises(StoreError, match="already"):
            migrate_store(v1_root)

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="no campaigns.jsonl"):
            migrate_store(tmp_path / "empty")

    def test_duplicate_log_lines_deduped(self, v1_root):
        # Logs written before the v1 dedupe fix can hold the same cid
        # line twice; migration keeps the first occurrence (matching
        # index semantics) and still verifies cleanly.
        ids = CampaignStore(v1_root).ids()
        log = v1_root / "campaigns.jsonl"
        duplicate = log.read_text().splitlines()[0]
        with open(log, "a") as handle:
            handle.write(duplicate + "\n")
        report = migrate_store(v1_root)
        assert report.ids == ids
        v2 = CampaignStore(v1_root)
        assert v2.ids() == ids
        assert [cid for cid, _record in v2.records()] == ids

    def test_torn_v1_tail_dropped_not_migrated(self, v1_root):
        # A torn final line was never acknowledged; migration carries
        # only complete records over.
        ids = CampaignStore(v1_root).ids()
        with open(v1_root / "campaigns.jsonl", "ab") as handle:
            handle.write(b'{"id":"torn-partial')
        report = migrate_store(v1_root)
        assert report.ids == ids


class TestRebuild:
    def test_rebuild_v1(self, v1_root):
        ids = CampaignStore(v1_root).ids()
        (v1_root / "index.jsonl").unlink()
        result = rebuild_store(v1_root)
        assert result == {"layout": LAYOUT_V1, "records": len(ids)}
        assert CampaignStore(v1_root).ids() == ids

    def test_rebuild_v2(self, v1_root):
        migrate_store(v1_root)
        ids = CampaignStore(v1_root).ids()
        (v1_root / "index.sqlite").unlink()
        result = rebuild_store(v1_root)
        assert result == {"layout": LAYOUT_V2, "records": len(ids)}
        assert CampaignStore(v1_root).ids() == ids

    def test_rebuild_v2_truncates_torn_tail(self, v1_root):
        migrate_store(v1_root)
        store = CampaignStore(v1_root)
        ids = store.ids()
        live = sorted(p.name for p in store.segments_dir.iterdir())[-1]
        with open(store.segments_dir / live, "ab") as handle:
            handle.write(b'{"id":"torn-partial')
        store.close()
        result = rebuild_store(v1_root)
        assert result["records"] == len(ids)
        assert b"torn-partial" not in (store.segments_dir / live).read_bytes()
