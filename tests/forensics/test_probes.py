"""Tests for stage-boundary probes and checksum semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forensics import probes
from repro.forensics.probes import StageProbe, capturing, checksum_parts


class TestChecksumParts:
    def test_deterministic(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert checksum_parts(arr, 7, "tag") == checksum_parts(arr.copy(), 7, "tag")

    def test_dtype_participates(self):
        ones_i = np.zeros(4, dtype=np.int64)
        ones_f = np.zeros(4, dtype=np.float64)
        # Same raw bytes (all zero), different dtype: must not alias.
        assert ones_i.tobytes() == ones_f.tobytes()
        assert checksum_parts(ones_i) != checksum_parts(ones_f)

    def test_shape_participates(self):
        arr = np.arange(12, dtype=np.uint8)
        assert checksum_parts(arr) != checksum_parts(arr.reshape(3, 4))

    def test_noncontiguous_array_matches_contiguous_copy(self):
        arr = np.arange(16, dtype=np.int32).reshape(4, 4)
        assert checksum_parts(arr[:, ::2]) == checksum_parts(arr[:, ::2].copy())

    def test_scalar_type_tags_distinct(self):
        assert checksum_parts(1) != checksum_parts("1")
        assert checksum_parts(1) != checksum_parts(1.0)
        assert checksum_parts(b"x") != checksum_parts("x")

    def test_numpy_scalars_match_python_scalars(self):
        assert checksum_parts(np.int64(42)) == checksum_parts(42)
        assert checksum_parts(np.float64(0.5)) == checksum_parts(0.5)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="unprobeable"):
            checksum_parts(object())


class TestStageProbe:
    def test_records_in_execution_order(self):
        probe = StageProbe()
        probe.record("fast", 1)
        probe.record("orb", 2)
        probe.record("fast", 3)
        assert probe.events == [("fast", 1), ("orb", 2), ("fast", 3)]
        assert probe.last_stage == "fast"

    def test_empty_probe(self):
        assert StageProbe().last_stage is None
        signature = StageProbe().signature()
        assert set(signature) == set(probes.STAGES)
        assert all(value == () for value in signature.values())

    def test_signature_groups_by_stage(self):
        probe = StageProbe()
        probe.record("fast", 1)
        probe.record("orb", 2)
        probe.record("fast", 3)
        signature = probe.signature()
        assert signature["fast"] == (1, 3)
        assert signature["orb"] == (2,)
        assert signature["stitch"] == ()


class TestCapturing:
    def test_record_is_noop_when_inactive(self):
        assert not probes.active()
        probes.record("fast", 123)  # must not raise or leak anywhere

    def test_capturing_activates_and_restores(self):
        probe = StageProbe()
        assert not probes.active()
        with capturing(probe):
            assert probes.active()
            probes.record("match", 5)
        assert not probes.active()
        assert probe.events == [("match", probes.checksum_parts(5))]

    def test_none_probe_is_noop(self):
        with capturing(None):
            assert not probes.active()

    def test_nested_capture_restores_outer(self):
        outer, inner = StageProbe(), StageProbe()
        with capturing(outer):
            probes.record("fast", 1)
            with capturing(inner):
                probes.record("orb", 2)
            probes.record("warp", 3)
        assert [stage for stage, _ in outer.events] == ["fast", "warp"]
        assert [stage for stage, _ in inner.events] == ["orb"]

    def test_capture_run_returns_probe(self):
        probe = probes.capture_run(lambda: probes.record("stitch", 9))
        assert probe.last_stage == "stitch"


class TestGoldenSignatureCache:
    def test_compute_once_per_workload(self):
        calls = []

        def compute():
            calls.append(1)
            return {"fast": (1,)}

        workload = object()
        first = probes.golden_signature_for(workload, compute)
        second = probes.golden_signature_for(workload, compute)
        assert first is second
        assert len(calls) == 1
        probes.clear_golden_signatures()
        probes.golden_signature_for(workload, compute)
        assert len(calls) == 2
        probes.clear_golden_signatures()
