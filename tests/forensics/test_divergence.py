"""Tests for divergence records and prefix-aware golden comparison."""

from __future__ import annotations

from repro.forensics.divergence import (
    DivergenceRecord,
    diff_against_golden,
    summarize_divergence,
)
from repro.forensics.probes import STAGES, StageProbe


def _golden() -> dict[str, tuple[int, ...]]:
    """A golden signature: two frames of fast/orb/match, one stitch."""
    return {
        "fast": (11, 12),
        "orb": (21, 22),
        "match": (31,),
        "homography": (41,),
        "warp": (51,),
        "stitch": (61,),
    }


def _probe(events: list[tuple[str, int]]) -> StageProbe:
    probe = StageProbe()
    for stage, crc in events:
        probe.record(stage, crc)
    return probe


class TestDiffAgainstGolden:
    def test_identical_run_has_no_divergence(self):
        events = [
            ("fast", 11), ("orb", 21), ("fast", 12), ("orb", 22),
            ("match", 31), ("homography", 41), ("warp", 51), ("stitch", 61),
        ]
        record = diff_against_golden(_golden(), _probe(events))
        assert record.first_divergence is None
        assert record.last_stage == "stitch"
        assert record.diverged_bits == 0
        assert record.stages_diverged == ()
        assert not record.absorbed

    def test_truncation_is_not_divergence(self):
        # Crashed after the first frame's orb: a golden prefix.
        record = diff_against_golden(_golden(), _probe([("fast", 11), ("orb", 21)]))
        assert record.first_divergence is None
        assert record.last_stage == "orb"
        assert record.observed("fast") and record.observed("orb")
        assert not record.observed("stitch")

    def test_last_stage_is_final_event_stage(self):
        # Regression: last_stage must come from the global event stream,
        # not from whichever per-stage bucket was iterated last.
        record = diff_against_golden(_golden(), _probe([("stitch", 61), ("fast", 11)]))
        assert record.last_stage == "fast"

    def test_mismatch_marks_divergence(self):
        events = [("fast", 99), ("orb", 21)]
        record = diff_against_golden(_golden(), _probe(events))
        assert record.first_divergence == "fast"
        assert record.diverged("fast")
        assert not record.diverged("orb")

    def test_first_divergence_follows_execution_order(self):
        # orb corrupts on frame 1, fast only on frame 2: orb came first
        # in execution order even though fast is earlier in the pipeline.
        events = [("fast", 11), ("orb", 99), ("fast", 98), ("orb", 22)]
        record = diff_against_golden(_golden(), _probe(events))
        assert record.first_divergence == "orb"
        assert record.diverged("fast") and record.diverged("orb")

    def test_extra_invocation_is_divergence(self):
        # A third fast call has no golden counterpart: control flow
        # diverged even if every checksum so far matched.
        events = [("fast", 11), ("fast", 12), ("fast", 13)]
        record = diff_against_golden(_golden(), _probe(events))
        assert record.first_divergence == "fast"

    def test_absorbed_divergence(self):
        events = [("fast", 99), ("stitch", 61)]
        record = diff_against_golden(_golden(), _probe(events))
        assert record.first_divergence == "fast"
        assert not record.diverged("stitch")
        assert record.absorbed

    def test_diverged_stitch_not_absorbed(self):
        events = [("fast", 99), ("stitch", 66)]
        record = diff_against_golden(_golden(), _probe(events))
        assert not record.absorbed

    def test_empty_run(self):
        record = diff_against_golden(_golden(), _probe([]))
        assert record.first_divergence is None
        assert record.last_stage is None
        assert record.observed_bits == 0


class TestDivergenceRecord:
    def test_dict_roundtrip(self):
        record = DivergenceRecord("orb", "stitch", 0b000010, 0b100011)
        assert DivergenceRecord.from_dict(record.to_dict()) == record

    def test_bitmap_accessors_cover_all_stages(self):
        record = DivergenceRecord("fast", "stitch", 0b111111, 0b111111)
        assert record.stages_diverged == STAGES
        assert all(record.observed(stage) for stage in STAGES)


class _Result:
    """Minimal stand-in for InjectionResult in summarize tests."""

    def __init__(self, outcome_value: str, divergence: DivergenceRecord | None):
        class _Outcome:
            value = outcome_value

        self.outcome = _Outcome()
        self.divergence = divergence


class TestSummarizeDivergence:
    def test_mixed_results(self):
        absorbed = DivergenceRecord("fast", "stitch", 0b000001, 0b111111)
        sdc = DivergenceRecord("match", "stitch", 0b100100, 0b111111)
        results = [
            _Result("mask", absorbed),
            _Result("sdc", sdc),
            _Result("crash", DivergenceRecord(None, "orb", 0, 0b000011)),
            _Result("mask", None),
        ]
        summary = summarize_divergence(results)
        assert summary["probed"] == 3
        assert summary["unprobed"] == 1
        assert summary["absorbed"] == 1
        assert summary["first_divergence"]["fast"] == {"mask": 1}
        assert summary["first_divergence"]["match"] == {"sdc": 1}
        assert summary["first_divergence"]["none"] == {"crash": 1}
        assert summary["last_stage"] == {"orb": 1, "stitch": 2}
        assert summary["stage_diverged"]["fast"] == 1
        assert summary["stage_diverged"]["match"] == 1
        assert summary["stage_diverged"]["stitch"] == 1

    def test_empty_results(self):
        summary = summarize_divergence([])
        assert summary["probed"] == 0
        assert summary["first_divergence"] == {}
