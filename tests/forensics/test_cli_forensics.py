"""CLI tests: campaign --probe/--store, report, and store subcommands."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.forensics.store import LAYOUT_V1, LAYOUT_V2, CampaignStore
from repro.forensics.synth import synthesize_corpus


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    """Two small probed campaigns stored via the CLI."""
    store = tmp_path_factory.mktemp("store")
    base = [
        "campaign", "--input", "input2", "--frames", "8", "-n", "10",
        "--workers", "1", "--probe", "--store", str(store),
    ]
    assert main([*base, "--seed", "3", "--label", "first"]) == 0
    assert main([*base, "--seed", "9", "--label", "second"]) == 0
    return store


def _stored_ids(store, capsys) -> list[str]:
    assert main(["report", "list", str(store)]) == 0
    return [line.split()[0] for line in capsys.readouterr().out.splitlines()]


class TestCampaignForensicsFlags:
    def test_probe_and_store_announced(self, stored, capsys, tmp_path):
        code = main(
            [
                "campaign", "--input", "input2", "--frames", "8", "-n", "6",
                "--workers", "1", "--seed", "5", "--probe", "--store", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "divergence:" in out
        assert "stored campaign" in out


class TestReportCommand:
    def test_list_shows_both_campaigns(self, stored, capsys):
        ids = _stored_ids(stored, capsys)
        assert len(ids) == 2
        assert len(set(ids)) == 2

    def test_show_writes_deterministic_report(self, stored, capsys, tmp_path):
        cid = _stored_ids(stored, capsys)[0]
        first = tmp_path / "a.md"
        second = tmp_path / "b.md"
        assert main(["report", "show", str(stored), cid, "--format", "markdown",
                     "--out", str(first)]) == 0
        assert main(["report", "show", str(stored), cid, "--format", "markdown",
                     "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "## Outcome rates" in first.read_text()

    def test_show_html(self, stored, capsys, tmp_path):
        cid = _stored_ids(stored, capsys)[0]
        out = tmp_path / "report.html"
        assert main(["report", "show", str(stored), cid, "--format", "html",
                     "--out", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_self_diff_quiet_exit_zero(self, stored, capsys):
        cid = _stored_ids(stored, capsys)[0]
        assert main(["report", "diff", str(stored), cid, cid]) == 0
        assert "no statistically significant shifts" in capsys.readouterr().out

    def test_diff_two_seeds_runs(self, stored, capsys):
        ids = _stored_ids(stored, capsys)
        # Two tiny same-config campaigns: the gate may or may not flag,
        # but the command must render and exit 0 or 4, nothing else.
        code = main(["report", "diff", str(stored), ids[0], ids[1]])
        assert code in (0, 4)
        assert "Rate shifts" in capsys.readouterr().out

    def test_list_shows_sampling_mode_column(self, stored, capsys):
        assert main(["report", "list", str(stored)]) == 0
        for line in capsys.readouterr().out.splitlines():
            assert " uniform " in f" {line} "

    def test_query_groups_outcomes(self, stored, capsys):
        assert main(["report", "query", str(stored)]) == 0
        out = capsys.readouterr().out
        assert "Grouped counts" in out
        assert "matching injections" in out

    def test_query_where_and_group_by(self, stored, capsys, tmp_path):
        out_path = tmp_path / "query.md"
        assert main(
            [
                "report", "query", str(stored),
                "--where", "outcome=sdc", "--where", "outcome=crash",
                "--group-by", "register_class,outcome",
                "--format", "markdown", "--out", str(out_path),
            ]
        ) == 0
        text = out_path.read_text()
        assert "register_class" in text
        assert "outcome in (sdc, crash)" in text

    def test_query_bad_field_is_usage_error(self, stored, capsys):
        assert main(["report", "query", str(stored), "--group-by", "nope"]) == 2
        assert "unknown query field" in capsys.readouterr().err


@pytest.fixture
def v1_store_root(tmp_path):
    root = tmp_path / "v1store"
    store = CampaignStore(root, layout=LAYOUT_V1)
    for record in synthesize_corpus(3, seed=400, n_injections=20):
        store.put(record)
    return root


class TestStoreCommand:
    def test_migrate_reports_and_converts(self, v1_store_root, capsys):
        assert main(["store", "migrate", str(v1_store_root)]) == 0
        out = capsys.readouterr().out
        assert "migrated 3 record(s)" in out
        assert "ids unchanged" in out
        assert CampaignStore(v1_store_root).layout == LAYOUT_V2

    def test_migrate_twice_is_usage_error(self, v1_store_root, capsys):
        assert main(["store", "migrate", str(v1_store_root)]) == 0
        capsys.readouterr()
        assert main(["store", "migrate", str(v1_store_root)]) == 2
        assert "already" in capsys.readouterr().err

    def test_rebuild_both_layouts(self, v1_store_root, capsys):
        assert main(["store", "rebuild", str(v1_store_root)]) == 0
        assert "rebuilt the v1 side index" in capsys.readouterr().out
        assert main(["store", "migrate", str(v1_store_root)]) == 0
        capsys.readouterr()
        assert main(["store", "rebuild", str(v1_store_root)]) == 0
        out = capsys.readouterr().out
        assert "rebuilt the v2 side index" in out
        assert "3 record(s)" in out

    def test_report_commands_work_after_migrate(self, v1_store_root, capsys):
        assert main(["report", "list", str(v1_store_root)]) == 0
        before = capsys.readouterr().out
        assert main(["store", "migrate", str(v1_store_root)]) == 0
        capsys.readouterr()
        assert main(["report", "list", str(v1_store_root)]) == 0
        assert capsys.readouterr().out == before
        assert main(["report", "query", str(v1_store_root),
                     "--where", "outcome=sdc", "--group-by", "stage"]) == 0
        assert "Grouped counts" in capsys.readouterr().out
