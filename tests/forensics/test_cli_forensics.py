"""CLI tests: campaign --probe/--store and the report subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    """Two small probed campaigns stored via the CLI."""
    store = tmp_path_factory.mktemp("store")
    base = [
        "campaign", "--input", "input2", "--frames", "8", "-n", "10",
        "--workers", "1", "--probe", "--store", str(store),
    ]
    assert main([*base, "--seed", "3", "--label", "first"]) == 0
    assert main([*base, "--seed", "9", "--label", "second"]) == 0
    return store


def _stored_ids(store, capsys) -> list[str]:
    assert main(["report", "list", str(store)]) == 0
    return [line.split()[0] for line in capsys.readouterr().out.splitlines()]


class TestCampaignForensicsFlags:
    def test_probe_and_store_announced(self, stored, capsys, tmp_path):
        code = main(
            [
                "campaign", "--input", "input2", "--frames", "8", "-n", "6",
                "--workers", "1", "--seed", "5", "--probe", "--store", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "divergence:" in out
        assert "stored campaign" in out


class TestReportCommand:
    def test_list_shows_both_campaigns(self, stored, capsys):
        ids = _stored_ids(stored, capsys)
        assert len(ids) == 2
        assert len(set(ids)) == 2

    def test_show_writes_deterministic_report(self, stored, capsys, tmp_path):
        cid = _stored_ids(stored, capsys)[0]
        first = tmp_path / "a.md"
        second = tmp_path / "b.md"
        assert main(["report", "show", str(stored), cid, "--format", "markdown",
                     "--out", str(first)]) == 0
        assert main(["report", "show", str(stored), cid, "--format", "markdown",
                     "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "## Outcome rates" in first.read_text()

    def test_show_html(self, stored, capsys, tmp_path):
        cid = _stored_ids(stored, capsys)[0]
        out = tmp_path / "report.html"
        assert main(["report", "show", str(stored), cid, "--format", "html",
                     "--out", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_self_diff_quiet_exit_zero(self, stored, capsys):
        cid = _stored_ids(stored, capsys)[0]
        assert main(["report", "diff", str(stored), cid, cid]) == 0
        assert "no statistically significant shifts" in capsys.readouterr().out

    def test_diff_two_seeds_runs(self, stored, capsys):
        ids = _stored_ids(stored, capsys)
        # Two tiny same-config campaigns: the gate may or may not flag,
        # but the command must render and exit 0 or 4, nothing else.
        code = main(["report", "diff", str(stored), ids[0], ids[1]])
        assert code in (0, 4)
        assert "Rate shifts" in capsys.readouterr().out
