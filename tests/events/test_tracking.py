"""Tests for the nearest-neighbour tracker."""

import pytest

from repro.events.tracking import NearestNeighbourTracker, Track, TrackPoint
from repro.runtime.context import ExecutionContext


@pytest.fixture()
def tracker():
    return NearestNeighbourTracker(gate_distance=15.0, confirm_after=2, drop_after_misses=2)


def feed(tracker, ctx, trajectory, mini_index=0):
    """Feed a list of per-frame detection lists."""
    for frame_index, detections in enumerate(trajectory):
        tracker.update(detections, frame_index, mini_index, ctx)


class TestSingleObject:
    def test_continuous_motion_forms_one_track(self, tracker, ctx):
        feed(tracker, ctx, [[(10.0 + 3 * i, 20.0)] for i in range(8)])
        tracks = tracker.finish()
        assert len(tracks) == 1
        assert len(tracks[0].points) == 8

    def test_track_confirmed_after_hits(self, tracker, ctx):
        feed(tracker, ctx, [[(10.0, 10.0)], [(12.0, 10.0)]])
        assert tracker.active[0].confirmed

    def test_single_sighting_never_confirmed(self, tracker, ctx):
        feed(tracker, ctx, [[(10.0, 10.0)], [], [], []])
        assert tracker.finish() == []

    def test_prediction_bridges_a_missed_frame(self, tracker, ctx):
        trajectory = [[(10.0 + 4 * i, 20.0)] for i in range(4)]
        trajectory += [[]]  # detector missed one frame
        trajectory += [[(10.0 + 4 * 5, 20.0)]]
        feed(tracker, ctx, trajectory)
        tracks = tracker.finish()
        assert len(tracks) == 1
        assert len(tracks[0].points) == 5


class TestMultipleObjects:
    def test_two_separated_objects_two_tracks(self, tracker, ctx):
        trajectory = [
            [(10.0 + 2 * i, 10.0), (80.0 - 2 * i, 60.0)] for i in range(6)
        ]
        feed(tracker, ctx, trajectory)
        assert len(tracker.finish()) == 2

    def test_objects_in_different_minis_do_not_merge(self, tracker, ctx):
        for frame in range(4):
            tracker.update([(10.0 + frame, 10.0)], frame, mini_index=0, ctx=ctx)
        for frame in range(4, 8):
            tracker.update([(13.0 + frame, 10.0)], frame, mini_index=1, ctx=ctx)
        tracks = tracker.finish()
        minis = sorted(t.mini_index for t in tracks)
        assert minis == [0, 1]


class TestTrackLifecycle:
    def test_lost_track_retired(self, tracker, ctx):
        trajectory = [[(10.0, 10.0)], [(12.0, 10.0)], [], [], [], []]
        feed(tracker, ctx, trajectory)
        assert tracker.active == [] or all(t.misses == 0 for t in tracker.active)
        tracks = tracker.finished
        assert len(tracks) == 1

    def test_velocity_estimate(self):
        track = Track(track_id=0, mini_index=0)
        track.points = [TrackPoint(0, 0.0, 0.0), TrackPoint(1, 3.0, 4.0)]
        assert track.velocity() == (3.0, 4.0)
        assert track.predict(3) == (9.0, 12.0)

    def test_velocity_single_point(self):
        track = Track(track_id=0, mini_index=0)
        track.points = [TrackPoint(0, 5.0, 5.0)]
        assert track.velocity() == (0.0, 0.0)
        assert track.predict(4) == (5.0, 5.0)

    def test_track_ids_unique(self, tracker, ctx):
        feed(tracker, ctx, [[(10.0, 10.0), (60.0, 60.0)], [(10.0, 10.0), (60.0, 60.0)]])
        ids = [t.track_id for t in tracker.active]
        assert len(ids) == len(set(ids))
