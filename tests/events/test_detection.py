"""Tests for moving-object detection by registered differencing."""

import numpy as np
import pytest

from repro.events.detection import detect_moving_objects
from repro.imaging.geometry import identity, translation


@pytest.fixture()
def static_scene(rng):
    return (60 + 140 * rng.random((72, 96))).astype(np.uint8)


def with_blob(scene, x, y, size=6, tone=250):
    frame = scene.copy()
    frame[y : y + size, x : x + size] = tone
    return frame


class TestStaticCamera:
    def test_moving_blob_detected(self, ctx, static_scene):
        prev = with_blob(static_scene, 20, 30)
        cur = with_blob(static_scene, 30, 30)
        detections = detect_moving_objects(cur, prev, identity(), ctx)
        assert detections
        best = detections[0]
        # The strongest blob sits where the object appeared (or left).
        assert abs(best.x - 33) < 8 or abs(best.x - 23) < 8

    def test_no_motion_no_detections(self, ctx, static_scene):
        detections = detect_moving_objects(
            static_scene, static_scene.copy(), identity(), ctx
        )
        assert detections == []

    def test_min_area_filters_specks(self, ctx, static_scene):
        prev = static_scene.copy()
        cur = static_scene.copy()
        cur[10, 10] = 255 if cur[10, 10] < 128 else 0  # single-pixel change
        detections = detect_moving_objects(cur, prev, identity(), ctx, min_area=4)
        assert detections == []


class TestMovingCamera:
    def test_camera_motion_alone_is_masked_by_registration(self, ctx, static_scene):
        """A translating camera must not produce phantom detections."""
        shift = 6
        cur = static_scene[:, shift:].copy()
        prev = static_scene[:, :-shift].copy()
        # prev-frame coords -> cur-frame coords: shift left by `shift`.
        detections = detect_moving_objects(
            cur, prev, translation(-shift, 0), ctx, diff_threshold=80
        )
        assert len(detections) <= 1  # at most border noise

    def test_object_found_despite_camera_motion(self, ctx, static_scene):
        shift = 6
        base_prev = static_scene[:, :-shift]
        base_cur = static_scene[:, shift:]
        prev = with_blob(base_prev.copy(), 40, 30)
        cur = with_blob(base_cur.copy(), 52, 30)  # moved right by 12+shift
        detections = detect_moving_objects(
            cur, prev, translation(-shift, 0), ctx, diff_threshold=80
        )
        assert detections


class TestDetectionProperties:
    def test_bbox_contains_centroid(self, ctx, static_scene):
        prev = with_blob(static_scene, 20, 30)
        cur = with_blob(static_scene, 32, 30)
        for det in detect_moving_objects(cur, prev, identity(), ctx):
            x0, y0, x1, y1 = det.bbox
            assert x0 <= det.x <= x1
            assert y0 <= det.y <= y1
            assert det.area > 0

    def test_max_detections_cap(self, ctx, static_scene):
        prev = static_scene.copy()
        cur = static_scene.copy()
        gen = np.random.default_rng(0)
        for _ in range(30):
            x, y = int(gen.integers(0, 88)), int(gen.integers(0, 64))
            cur[y : y + 4, x : x + 4] = 255
        detections = detect_moving_objects(
            cur, prev, identity(), ctx, max_detections=5
        )
        assert len(detections) <= 5
