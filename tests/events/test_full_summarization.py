"""Integration tests: the complete Fig. 2 workflow with planted movers."""

import numpy as np
import pytest

from repro.events import overlay_tracks, run_full_summarization
from repro.events.tracking import Track, TrackPoint
from repro.runtime.context import ExecutionContext
from repro.summarize import baseline_config
from repro.video import make_event_input


@pytest.fixture(scope="module")
def summary():
    event_input = make_event_input(n_frames=24, n_objects=2)
    return (
        event_input,
        run_full_summarization(event_input.stream, baseline_config(), ExecutionContext()),
    )


class TestFullWorkflow:
    def test_coverage_branch_healthy(self, summary):
        _event_input, result = summary
        assert result.coverage.frames_stitched >= 16

    def test_movers_detected(self, summary):
        _event_input, result = summary
        total = sum(len(d) for d in result.detections_per_frame.values())
        assert total >= 10

    def test_tracks_confirmed(self, summary):
        event_input, result = summary
        assert result.num_tracks >= len(event_input.objects) - 1
        for track in result.tracks:
            assert track.confirmed
            assert len(track.points) >= 2

    def test_tracks_move_consistently(self, summary):
        """Confirmed tracks of linear movers have consistent velocity."""
        _event_input, result = summary
        long_tracks = [t for t in result.tracks if len(t.points) >= 6]
        assert long_tracks
        for track in long_tracks:
            xs = np.array([p.x for p in track.points])
            frames = np.array([p.frame_index for p in track.points])
            # Fit a line; residuals should be small for linear motion.
            coeffs = np.polyfit(frames, xs, 1)
            residuals = xs - np.polyval(coeffs, frames)
            assert np.abs(residuals).max() < 8.0

    def test_overlay_changes_panorama(self, summary):
        _event_input, result = summary
        assert result.overlay is not None
        assert result.overlay.shape == result.coverage.panorama.shape
        assert not np.array_equal(result.overlay, result.coverage.panorama)

    def test_deterministic(self):
        event_input = make_event_input(n_frames=12, n_objects=2)
        first = run_full_summarization(
            event_input.stream, baseline_config(), ExecutionContext()
        )
        second = run_full_summarization(
            event_input.stream, baseline_config(), ExecutionContext()
        )
        assert np.array_equal(first.overlay, second.overlay)
        assert first.num_tracks == second.num_tracks


class TestOverlay:
    def test_draws_confirmed_tracks_only(self, ctx):
        panorama = np.full((60, 80), 100, dtype=np.uint8)
        confirmed = Track(track_id=0, mini_index=0, confirmed=True)
        confirmed.points = [TrackPoint(0, 10.0, 10.0), TrackPoint(1, 40.0, 40.0)]
        tentative = Track(track_id=1, mini_index=0, confirmed=False)
        tentative.points = [TrackPoint(0, 60.0, 10.0), TrackPoint(1, 70.0, 20.0)]
        out = overlay_tracks(panorama, [confirmed, tentative], ctx)
        assert out[10, 10] == 255  # confirmed polyline drawn
        assert out[10, 60] == 100  # tentative track untouched

    def test_mini_offset_applied(self, ctx):
        panorama = np.full((120, 80), 100, dtype=np.uint8)  # two stacked 60-row minis
        track = Track(track_id=0, mini_index=1, confirmed=True)
        track.points = [TrackPoint(0, 10.0, 10.0), TrackPoint(1, 30.0, 10.0)]
        out = overlay_tracks(panorama, [track], ctx, mini_canvas_h=60)
        assert out[70, 20] == 255  # drawn in the second mini's band
        assert out[10, 20] == 100
