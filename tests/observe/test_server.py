"""Tests for the observatory endpoints and Prometheus rendering."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.observe.events import EventBus
from repro.observe.server import ObservatoryServer, render_prometheus, _sanitize
from repro.observe.status import StatusWriter, validate_status


def _writer_with_progress() -> StatusWriter:
    bus = EventBus()
    writer = StatusWriter()
    bus.subscribe(writer)
    bus.publish("campaign_start", {"mode": "uniform", "kind": "gpr", "total": 40})
    bus.publish("chunk_done", {"done": 10, "outcomes": {"mask": 8, "sdc": 2}})
    bus.publish("retry", {"attempt": 1})
    return writer


class TestRenderPrometheus:
    def test_campaign_series(self):
        text = render_prometheus(_writer_with_progress().snapshot(), None)
        assert "repro_campaign_injections_done 10" in text
        assert "repro_campaign_injections_total 40" in text
        assert 'repro_campaign_outcome_count{outcome="sdc"} 2' in text
        assert 'repro_campaign_outcome_rate{outcome="mask"} 0.8' in text
        assert "repro_campaign_retries_total 1" in text
        assert 'repro_campaign_state{state="running"} 1' in text

    def test_telemetry_series(self):
        snapshot = {
            "counters": {"campaign.retries": 2},
            "gauges": {"trace.event_cap": 250000.0},
            "timers": {"span.vision.orb": {"count": 3, "total_s": 1.5, "max_s": 0.9}},
        }
        text = render_prometheus(None, snapshot)
        assert "repro_campaign_retries_total 2" in text
        assert "repro_trace_event_cap 250000.0" in text
        assert "repro_span_vision_orb_seconds_total 1.5" in text
        assert "repro_span_vision_orb_count 3" in text

    def test_deterministic_for_equal_inputs(self):
        status = _writer_with_progress().snapshot()
        assert render_prometheus(status, None) == render_prometheus(status, None)

    def test_sanitize(self):
        assert _sanitize("span.vision-orb/2") == "span_vision_orb_2"


class TestObservatoryServer:
    @pytest.fixture()
    def server(self):
        writer = _writer_with_progress()
        server = ObservatoryServer(writer, port=0).start()
        yield server
        server.stop()

    def _get(self, server, path):
        with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as response:
            return response.status, response.headers.get("Content-Type"), response.read()

    def test_status_endpoint_serves_schema_valid_json(self, server):
        code, content_type, body = self._get(server, "/status")
        assert code == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert validate_status(payload) == []
        assert payload["progress"]["done"] == 10

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        code, content_type, body = self._get(server, "/metrics")
        assert code == 200
        assert content_type.startswith("text/plain")
        assert b"repro_campaign_injections_done 10" in body

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_ephemeral_port_is_bound(self, server):
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")
