"""Unit tests for the bounded flight recorder."""

from __future__ import annotations

import pytest

from repro.observe.events import EVENT_SCHEMA_VERSION, EventBus
from repro.observe.recorder import (
    DEFAULT_CAPACITY,
    TRIGGER_KINDS,
    FlightRecorder,
    read_dump,
)


def _fill(recorder: FlightRecorder, n: int, kind: str = "note") -> EventBus:
    bus = EventBus()
    bus.subscribe(recorder)
    for i in range(n):
        bus.publish(kind, {"i": i})
    return bus


class TestRing:
    def test_keeps_only_the_last_capacity_events(self):
        recorder = FlightRecorder(capacity=4)
        _fill(recorder, 10)
        assert recorder.events_seen == 10
        assert len(recorder.ring) == 4
        assert [event.payload["i"] for event in recorder.ring] == [6, 7, 8, 9]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity must be positive"):
            FlightRecorder(capacity=0)

    @pytest.mark.parametrize("kind", sorted(TRIGGER_KINDS))
    def test_trigger_kinds_arm_the_dump(self, kind):
        recorder = FlightRecorder(capacity=4)
        _fill(recorder, 2)
        assert not recorder.triggered
        _fill(recorder, 1, kind=kind)
        assert recorder.triggered
        assert recorder.trigger_kinds_seen == [kind]

    def test_benign_kinds_never_trigger(self):
        recorder = FlightRecorder(capacity=4)
        _fill(recorder, 50, kind="chunk_done")
        assert not recorder.triggered


class TestDump:
    def test_dump_read_round_trip(self, tmp_path):
        recorder = FlightRecorder(capacity=3)
        _fill(recorder, 5)
        _fill(recorder, 1, kind="retry")
        path = recorder.dump(tmp_path / "flight.jsonl")
        header, events = read_dump(path)
        assert header["flight_recorder"] == 1
        assert header["event_schema"] == EVENT_SCHEMA_VERSION
        assert header["capacity"] == 3
        assert header["events_seen"] == 6
        assert header["events_kept"] == 3
        assert header["triggered"] is True
        assert header["trigger_kinds"] == ["retry"]
        assert [event["kind"] for event in events] == ["note", "note", "retry"]

    def test_dump_is_atomic(self, tmp_path):
        recorder = FlightRecorder(capacity=2)
        _fill(recorder, 2)
        recorder.dump(tmp_path / "flight.jsonl")
        assert not (tmp_path / "flight.jsonl.tmp").exists()

    def test_read_empty_dump_raises(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="is empty"):
            read_dump(empty)
