"""Shared hygiene for observe tests: never leak a bus across tests."""

from __future__ import annotations

import pytest

from repro.observe import events


@pytest.fixture(autouse=True)
def _no_bus_leak():
    """The event bus is process-global state; every test starts clean."""
    events.uninstall()
    yield
    events.uninstall()
