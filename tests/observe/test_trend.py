"""Tests for the cross-campaign trend dashboard."""

from __future__ import annotations

import json

import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.forensics.store import CampaignStore
from repro.observe.trend import (
    BENCH_TIMING_FIELDS,
    build_trend,
    render_trend,
    sparkline,
)
from repro.runtime.errors import SegmentationFault
from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload


def _crashier_workload(ctx):
    """A 'regression': every injected run dies with a memory fault."""
    toy_workload(ctx)
    raise SegmentationFault(0, "regressed build always faults")


@pytest.fixture(scope="module")
def history_store(tmp_path_factory):
    """A store holding a baseline and a crash-regressed campaign."""
    root = tmp_path_factory.mktemp("trend-store")
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    store = CampaignStore(root)
    baseline = run_campaign(
        toy_workload,
        golden,
        cycles,
        CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=9),
    )
    regressed = run_campaign(
        _crashier_workload,
        golden,
        cycles,
        CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=31),
    )
    ids = [
        store.put_campaign(baseline, label="baseline"),
        store.put_campaign(regressed, label="regressed"),
    ]
    return store, ids


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_all_zero_series_renders_blanks(self):
        assert sparkline([0.0, 0.0, 0.0]) == "   "

    def test_scales_to_series_maximum(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " "
        assert line[2] == "█"

    def test_ceiling_pins_the_scale(self):
        assert sparkline([0.5], ceiling=1.0) != sparkline([0.5])

    def test_deterministic(self):
        series = [0.1, 0.4, 0.2, 0.9]
        assert sparkline(series) == sparkline(series)


class TestBuildTrend:
    def test_campaigns_in_insertion_order(self, history_store):
        store, ids = history_store
        trend = build_trend(store)
        assert [campaign["id"] for campaign in trend["campaigns"]] == ids
        assert trend["campaigns"][0]["label"] == "baseline"
        assert trend["campaigns"][1]["label"] == "regressed"

    def test_rates_carry_wilson_cis(self, history_store):
        store, _ = history_store
        trend = build_trend(store)
        for campaign in trend["campaigns"]:
            for entry in campaign["rates"].values():
                assert 0.0 <= entry["ci_low"] <= entry["ci_high"] <= 1.0

    def test_injected_crash_regression_is_flagged(self, history_store):
        store, ids = history_store
        trend = build_trend(store)
        flagged = trend["flagged"]
        assert any("outcome:crash" in flag for flag in flagged)
        crash_gate = next(
            gate
            for gate in trend["gates"]
            if gate["metric"] == "outcome:crash"
        )
        assert crash_gate["pair"] == f"{ids[0]}->{ids[1]}"
        assert crash_gate["flagged"]
        assert abs(crash_gate["z"]) > trend["threshold"]
        assert crash_gate["rate_b"] > crash_gate["rate_a"]

    def test_single_campaign_has_no_gates(self, tmp_path):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        store = CampaignStore(tmp_path / "solo")
        store.put_campaign(
            run_campaign(
                toy_workload,
                golden,
                cycles,
                CampaignConfig(n_injections=40, kind=RegKind.GPR, seed=9),
            )
        )
        trend = build_trend(store)
        assert trend["gates"] == []
        assert trend["flagged"] == []

    def test_bench_entries_attached_when_present(self, history_store, tmp_path):
        store, _ = history_store
        bench = tmp_path / "bench.json"
        entries = [
            {"timestamp": "2026-08-01", "scale": 64, "workers": 4, "serial_s": 2.0,
             "observed_s": 2.05},
            {"timestamp": "2026-08-07", "scale": 64, "workers": 4, "serial_s": 1.9,
             "observed_s": 1.95},
        ]
        bench.write_text(json.dumps(entries))
        trend = build_trend(store, bench_path=bench)
        assert trend["bench"] == entries
        assert build_trend(store, bench_path=tmp_path / "missing.json")["bench"] == []


class TestRenderTrend:
    def test_byte_deterministic_across_formats(self, history_store, tmp_path):
        store, _ = history_store
        bench = tmp_path / "bench.json"
        bench.write_text(
            json.dumps([{"timestamp": "t0", "serial_s": 2.0, "observed_s": 2.1}])
        )
        trend = build_trend(store, bench_path=bench)
        for fmt in ("terminal", "markdown", "html"):
            assert render_trend(trend, fmt) == render_trend(trend, fmt)

    def test_terminal_render_shows_history_and_flags(self, history_store):
        store, _ = history_store
        text = render_trend(build_trend(store))
        assert "Campaign history" in text
        assert "baseline" in text and "regressed" in text
        assert "SHIFT" in text
        assert "significant shift(s)" in text

    def test_html_render_is_a_document(self, history_store):
        store, _ = history_store
        html = render_trend(build_trend(store), "html")
        assert html.startswith("<!DOCTYPE html>") or "<html" in html
        assert "Campaign trend dashboard" in html

    def test_perf_trajectory_includes_observed_column(self, history_store, tmp_path):
        store, _ = history_store
        assert "observed_s" in BENCH_TIMING_FIELDS
        bench = tmp_path / "bench.json"
        bench.write_text(
            json.dumps(
                [
                    {"timestamp": "t0", "scale": 64, "workers": 2,
                     "serial_s": 2.0, "observed_s": 2.1},
                    {"timestamp": "t1", "scale": 64, "workers": 2,
                     "serial_s": 1.8, "observed_s": 1.85},
                ]
            )
        )
        text = render_trend(build_trend(store, bench_path=bench))
        assert "Performance trajectory" in text
        assert "observed_s" in text
        assert "2.100" in text and "1.850" in text

    def test_empty_store_renders_guidance(self, tmp_path):
        store = CampaignStore(tmp_path / "empty")
        text = render_trend(build_trend(store))
        assert "store is empty" in text
