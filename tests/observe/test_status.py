"""Unit tests for the crash-safe status snapshot writer."""

from __future__ import annotations

import json

import pytest

from repro.observe.events import EventBus
from repro.observe.status import (
    STATUS_SCHEMA_VERSION,
    StatusWriter,
    read_status,
    render_status,
    validate_status,
    write_status,
)


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _wired(path=None, clock=None):
    bus = EventBus()
    writer = StatusWriter(path, clock=clock or FakeClock())
    bus.subscribe(writer)
    return bus, writer


class TestEventFolding:
    def test_campaign_start_sets_running_and_total(self):
        bus, writer = _wired()
        bus.publish(
            "campaign_start",
            {"mode": "uniform", "kind": "gpr", "total": 40, "workers": 2},
        )
        assert writer.state == "running"
        assert writer.total == 40
        assert writer.campaign["mode"] == "uniform"

    def test_chunk_events_accumulate_incrementally(self):
        bus, writer = _wired()
        bus.publish("campaign_start", {"total": 8})
        bus.publish("chunk_done", {"done": 4, "outcomes": {"mask": 3, "sdc": 1}})
        bus.publish("chunk_done", {"done": 8, "outcomes": {"mask": 2, "crash": 2}})
        assert writer.done == 8
        assert writer.outcomes == {"mask": 5, "sdc": 1, "crash": 2, "hang": 0}

    def test_round_done_totals_are_authoritative(self):
        # round_done carries the engine's cumulative tally, which both
        # reconstructs journal-replayed state (no chunk events fire
        # during replay) and prevents double counting on top of the
        # chunk_done increments emitted inside the round.
        bus, writer = _wired()
        bus.publish("campaign_start", {"mode": "stratified", "total": None})
        bus.publish("chunk_done", {"done": 8, "outcomes": {"mask": 8}})
        bus.publish(
            "round_done",
            {
                "round": 0,
                "done": 8,
                "outcomes_total": {"mask": 7, "sdc": 1},
                "cells_total": 8,
                "cells_converged": 2,
                "max_ci_width": 0.41,
                "cell_ci_widths": [0.41, 0.2],
            },
        )
        assert writer.outcomes == {"mask": 7, "sdc": 1, "crash": 0, "hang": 0}
        assert writer.stratified["cells_total"] == 8
        assert writer.stratified["max_ci_width"] == 0.41

    def test_counters_and_resume(self):
        bus, writer = _wired()
        bus.publish("retry", {"attempt": 1})
        bus.publish("degrade", {"to_workers": 1})
        bus.publish("watchdog_hang", {"index": 3, "count": 2})
        bus.publish("golden_tail", {"frame": 5})
        bus.publish("journal_checkpoint", {"unit": "chunk", "index": 0})
        bus.publish("note", {"note": "probe on"})
        bus.publish("journal_resume", {"replayed": 3, "injections": 24})
        assert writer.counters == {
            "retries": 1,
            "degrades": 1,
            "watchdog_hangs": 2,
            "golden_tails": 1,
            "journal_checkpoints": 1,
            "notes": 1,
        }
        assert writer.resume == {"replayed": 3, "injections": 24}

    def test_campaign_finish_is_authoritative(self):
        bus, writer = _wired()
        bus.publish("campaign_start", {"total": 40})
        bus.publish("chunk_done", {"done": 16, "outcomes": {"mask": 16}})
        bus.publish(
            "campaign_finish",
            {"total": 40, "outcomes": {"mask": 30, "sdc": 6, "crash": 3, "hang": 1}},
        )
        assert writer.state == "finished"
        assert writer.done == 40
        assert writer.outcomes == {"mask": 30, "sdc": 6, "crash": 3, "hang": 1}

    def test_interrupt_marks_state(self):
        bus, writer = _wired()
        bus.publish("campaign_start", {"total": 40})
        bus.publish("interrupt", {"error": "CampaignInterrupted"})
        assert writer.state == "interrupted"


class TestSnapshot:
    def test_progress_rate_and_eta(self):
        clock = FakeClock()
        bus, writer = _wired(clock=clock)
        bus.publish("campaign_start", {"total": 40})
        clock.advance(10.0)
        bus.publish("chunk_done", {"done": 20, "outcomes": {"mask": 20}})
        snap = writer.snapshot()
        assert snap["progress"] == {"done": 20, "total": 40, "fraction": 0.5}
        assert snap["rate_per_s"] == 2.0
        assert snap["eta_s"] == 10.0

    def test_rates_carry_wilson_cis(self):
        bus, writer = _wired()
        bus.publish("campaign_start", {"total": 10})
        bus.publish("chunk_done", {"done": 10, "outcomes": {"mask": 8, "sdc": 2}})
        snap = writer.snapshot()
        sdc = snap["outcomes"]["rates"]["sdc"]
        assert sdc["count"] == 2
        assert sdc["rate"] == 0.2
        assert 0.0 <= sdc["ci_low"] <= 0.2 <= sdc["ci_high"] <= 1.0

    def test_snapshot_always_validates(self):
        clock = FakeClock()
        bus, writer = _wired(clock=clock)
        assert validate_status(writer.snapshot()) == []
        bus.publish("campaign_start", {"total": 4})
        assert validate_status(writer.snapshot()) == []
        bus.publish("injection_done", {"done": 1, "outcomes": {"sdc": 1}})
        assert validate_status(writer.snapshot()) == []
        bus.publish("campaign_finish", {"total": 4, "outcomes": {"mask": 3, "sdc": 1}})
        assert validate_status(writer.snapshot()) == []


class TestValidate:
    def _valid(self):
        _, writer = _wired()
        return writer.snapshot()

    def test_rejects_wrong_schema(self):
        payload = self._valid()
        payload["schema"] = STATUS_SCHEMA_VERSION + 1
        assert any("schema" in p for p in validate_status(payload))

    def test_rejects_unknown_state(self):
        payload = self._valid()
        payload["state"] = "zombie"
        assert any("state" in p for p in validate_status(payload))

    def test_rejects_done_beyond_total(self):
        payload = self._valid()
        payload["progress"] = {"done": 5, "total": 4, "fraction": 1.25}
        assert any("exceeds total" in p for p in validate_status(payload))

    def test_rejects_disordered_ci(self):
        payload = self._valid()
        payload["outcomes"]["rates"]["sdc"] = {
            "count": 1,
            "rate": 0.5,
            "ci_low": 0.9,
            "ci_high": 0.1,
        }
        assert any("not ordered" in p for p in validate_status(payload))

    def test_rejects_negative_counter(self):
        payload = self._valid()
        payload["counters"]["retries"] = -1
        assert any("counters.retries" in p for p in validate_status(payload))

    def test_rejects_non_object(self):
        assert validate_status([]) == ["payload is not a JSON object"]


class TestPersistence:
    def test_written_file_round_trips(self, tmp_path):
        path = tmp_path / "status.json"
        bus, writer = _wired(path=path)
        bus.publish("campaign_start", {"total": 4})
        bus.publish("campaign_finish", {"total": 4, "outcomes": {"mask": 4}})
        payload = read_status(path)
        assert validate_status(payload) == []
        assert payload["state"] == "finished"
        assert writer.writes == 2

    def test_write_replaces_atomically_leaving_no_tmp(self, tmp_path):
        path = tmp_path / "status.json"
        write_status(path, {"schema": 1})
        write_status(path, {"schema": 1, "state": "running"})
        assert json.loads(path.read_text())["state"] == "running"
        assert not (tmp_path / "status.json.tmp").exists()

    def test_mark_forces_terminal_state(self, tmp_path):
        path = tmp_path / "status.json"
        _, writer = _wired(path=path)
        writer.mark("finished")
        assert read_status(path)["state"] == "finished"

    def test_pathless_writer_never_touches_disk(self):
        _, writer = _wired(path=None)
        writer.write()
        assert writer.writes == 0


class TestRender:
    def test_render_includes_bar_rates_and_counters(self):
        bus, writer = _wired()
        bus.publish("campaign_start", {"mode": "uniform", "kind": "gpr", "total": 10})
        bus.publish("chunk_done", {"done": 5, "outcomes": {"mask": 4, "sdc": 1}})
        bus.publish("retry", {"attempt": 1})
        text = render_status(writer.snapshot())
        assert "[running] uniform gpr" in text
        assert "progress: 5/10" in text
        assert "#" in text and "50.0%" in text
        assert "sdc" in text
        assert "retries=1" in text

    def test_render_handles_unknown_total(self):
        bus, writer = _wired()
        bus.publish("campaign_start", {"mode": "stratified", "total": None})
        text = render_status(writer.snapshot())
        assert "progress: 0/?" in text
