"""The observer-effect contract, end to end.

Observation must never change a campaign: a run wrapped in
``observe_campaign`` — status snapshots, flight recorder, HTTP server —
is bit-identical to an unobserved run at any worker count, in both
sampling modes, and across journal interrupt/resume.  These tests pin
that contract and the teardown behaviour around it.
"""

from __future__ import annotations

import json
import os
from unittest import mock

import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.journal import ABORT_AFTER_ENV, CampaignInterrupted
from repro.faultinject.registers import RegKind
from repro.observe import events
from repro.observe.events import EVENT_KINDS
from repro.observe.recorder import read_dump
from repro.observe.session import (
    STATUS_ENV,
    default_flight_path,
    observe_campaign,
    resolve_status_path,
)
from repro.observe.status import read_status, validate_status
from tests.faultinject.test_parallel import (
    ToyWorkloadSpec,
    _campaigns_equal,
    toy_workload,
)


def _config(**overrides) -> CampaignConfig:
    base = dict(n_injections=40, kind=RegKind.GPR, seed=9, workers=1)
    base.update(overrides)
    return CampaignConfig(**base)


def _stratified_config(**overrides) -> CampaignConfig:
    base = dict(
        n_injections=1,
        kind=RegKind.GPR,
        seed=9,
        workers=1,
        sampling="stratified",
        ci_width=0.3,
        round_size=8,
        strata=(2, 2, 2),
    )
    base.update(overrides)
    return CampaignConfig(**base)


@pytest.fixture()
def toy():
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    return spec, golden, cycles


class TestBitIdentical:
    def test_serial_campaign_unchanged_by_observation(self, toy, tmp_path):
        spec, golden, cycles = toy
        unobserved = run_campaign(toy_workload, golden, cycles, _config())
        with observe_campaign(tmp_path / "status.json"):
            observed = run_campaign(toy_workload, golden, cycles, _config())
        _campaigns_equal(unobserved, observed)

    def test_parallel_campaign_unchanged_by_observation(self, toy, tmp_path):
        spec, golden, cycles = toy
        config = _config(workers=4)
        unobserved = run_campaign(toy_workload, golden, cycles, config, spec=spec)
        with observe_campaign(tmp_path / "status.json"):
            observed = run_campaign(toy_workload, golden, cycles, config, spec=spec)
        _campaigns_equal(unobserved, observed)

    def test_stratified_campaign_unchanged_by_observation(self, toy, tmp_path):
        spec, golden, cycles = toy
        config = _stratified_config()
        unobserved = run_campaign(toy_workload, golden, cycles, config)
        with observe_campaign(tmp_path / "status.json"):
            observed = run_campaign(toy_workload, golden, cycles, config)
        _campaigns_equal(unobserved, observed)
        assert observed.sampling.to_dict() == unobserved.sampling.to_dict()

    def test_observed_interrupt_resume_matches_unobserved_reference(
        self, toy, tmp_path
    ):
        spec, golden, cycles = toy
        reference = run_campaign(toy_workload, golden, cycles, _config())
        journal = tmp_path / "j.jsonl"
        status = tmp_path / "status.json"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                with observe_campaign(status):
                    run_campaign(
                        toy_workload, golden, cycles, _config(), journal_path=journal
                    )
        assert read_status(status)["state"] == "interrupted"
        with observe_campaign(status):
            resumed = run_campaign(
                toy_workload, golden, cycles, _config(), journal_path=journal, resume=True
            )
        _campaigns_equal(reference, resumed)
        payload = read_status(status)
        assert payload["state"] == "finished"
        assert payload["resume"]["replayed"] == 1

    def test_broken_subscriber_cannot_perturb_results(self, toy):
        spec, golden, cycles = toy
        unobserved = run_campaign(toy_workload, golden, cycles, _config())
        bus = events.install()
        try:
            def explode(event):
                raise RuntimeError("observer bug")

            bus.subscribe(explode)
            observed = run_campaign(toy_workload, golden, cycles, _config())
        finally:
            events.uninstall()
        _campaigns_equal(unobserved, observed)
        assert bus.subscriber_errors > 0


class TestEmittedEvents:
    def _collect(self, runner) -> list:
        bus = events.install()
        seen = []
        bus.subscribe(seen.append)
        try:
            runner()
        finally:
            events.uninstall()
        return seen

    def test_serial_kinds_stay_inside_the_vocabulary(self, toy):
        spec, golden, cycles = toy
        seen = self._collect(
            lambda: run_campaign(toy_workload, golden, cycles, _config())
        )
        kinds = {event.kind for event in seen}
        assert kinds <= EVENT_KINDS
        assert "campaign_start" in kinds
        assert "campaign_finish" in kinds
        assert "injection_done" in kinds

    def test_parallel_emits_chunk_and_checkpoint_events(self, toy, tmp_path):
        spec, golden, cycles = toy
        seen = self._collect(
            lambda: run_campaign(
                toy_workload,
                golden,
                cycles,
                _config(workers=2),
                spec=spec,
                journal_path=tmp_path / "j.jsonl",
            )
        )
        kinds = {event.kind for event in seen}
        assert kinds <= EVENT_KINDS
        assert "chunk_done" in kinds
        assert "journal_checkpoint" in kinds

    def test_stratified_emits_round_and_convergence_events(self, toy):
        spec, golden, cycles = toy
        seen = self._collect(
            lambda: run_campaign(toy_workload, golden, cycles, _stratified_config())
        )
        kinds = {event.kind for event in seen}
        assert kinds <= EVENT_KINDS
        assert "round_done" in kinds
        assert "stratum_converged" in kinds
        finish = [e for e in seen if e.kind == "campaign_finish"][-1]
        rounds = [e for e in seen if e.kind == "round_done"]
        # The last round's cumulative tally must agree with the final one.
        assert sum(rounds[-1].payload["outcomes_total"].values()) == finish.payload["total"]

    def test_seq_is_gapless_and_ordered(self, toy):
        spec, golden, cycles = toy
        seen = self._collect(
            lambda: run_campaign(toy_workload, golden, cycles, _config())
        )
        assert [event.seq for event in seen] == list(range(len(seen)))


class TestObserveSession:
    def test_status_file_reaches_finished_and_validates(self, toy, tmp_path):
        spec, golden, cycles = toy
        status = tmp_path / "status.json"
        with observe_campaign(status):
            campaign = run_campaign(toy_workload, golden, cycles, _config())
        payload = read_status(status)
        assert validate_status(payload) == []
        assert payload["state"] == "finished"
        assert payload["progress"]["done"] == 40
        assert payload["outcomes"]["total"] == 40
        counts = campaign.counts
        assert payload["outcomes"]["rates"]["mask"]["count"] == counts.masked
        assert payload["outcomes"]["rates"]["sdc"]["count"] == counts.sdc

    def test_interrupt_dumps_the_flight_recorder(self, toy, tmp_path):
        spec, golden, cycles = toy
        status = tmp_path / "status.json"
        journal = tmp_path / "j.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                with observe_campaign(status):
                    run_campaign(
                        toy_workload, golden, cycles, _config(), journal_path=journal
                    )
        flight = default_flight_path(status)
        assert flight.exists()
        header, dumped = read_dump(flight)
        assert header["triggered"] is True
        assert "interrupt" in header["trigger_kinds"]
        assert dumped[-1]["kind"] == "interrupt"

    def test_watchdog_hang_triggers_a_dump_on_clean_exit(self, toy, tmp_path):
        # A hang is an anomaly worth a post-mortem even when the
        # campaign itself completes: the recorder arms on the
        # watchdog_hang event and the session dumps at teardown.
        spec, golden, cycles = toy
        status = tmp_path / "status.json"
        with observe_campaign(status):
            run_campaign(toy_workload, golden, cycles, _config())
            events.current().publish("watchdog_hang", {"index": 0, "count": 1})
        flight = default_flight_path(status)
        assert flight.exists()
        header, _ = read_dump(flight)
        assert header["trigger_kinds"] == ["watchdog_hang"]

    def test_clean_run_without_anomalies_dumps_nothing(self, toy, tmp_path):
        spec, golden, cycles = toy
        status = tmp_path / "status.json"
        with observe_campaign(status):
            run_campaign(toy_workload, golden, cycles, _config())
        assert not default_flight_path(status).exists()

    def test_previous_bus_restored_even_on_error(self, tmp_path):
        outer = events.install()
        try:
            with pytest.raises(RuntimeError):
                with observe_campaign(tmp_path / "status.json"):
                    assert events.current() is not outer
                    raise RuntimeError("boom")
            assert events.current() is outer
        finally:
            events.uninstall()

    def test_resolve_status_path_flag_beats_env(self):
        with mock.patch.dict(os.environ, {STATUS_ENV: "/tmp/env.json"}):
            assert resolve_status_path("/tmp/flag.json") == "/tmp/flag.json"
            assert resolve_status_path(None) == "/tmp/env.json"
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(STATUS_ENV, None)
            assert resolve_status_path(None) is None

    def test_default_flight_path_is_a_sibling(self, tmp_path):
        status = tmp_path / "run" / "status.json"
        assert default_flight_path(status) == tmp_path / "run" / "status.flightrec.jsonl"
        assert default_flight_path(None) is None
