"""Unit tests for the campaign event bus."""

from __future__ import annotations

import pytest

from repro.observe import events
from repro.observe.events import EVENT_KINDS, EVENT_SCHEMA_VERSION, CampaignEvent, EventBus


class TestEventBus:
    def test_publish_delivers_in_emission_order_with_monotonic_seq(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish("note", {"note": "a"})
        bus.publish("heartbeat", {"done": 1})
        bus.publish("note", {"note": "b"})
        assert [event.kind for event in seen] == ["note", "heartbeat", "note"]
        assert [event.seq for event in seen] == [0, 1, 2]
        assert bus.events_emitted == 3

    def test_subscribers_run_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.publish("note", {})
        assert order == ["first", "second"]

    def test_raising_subscriber_is_counted_and_skipped(self):
        bus = EventBus()
        delivered = []

        def bad(event):
            raise RuntimeError("observer bug")

        bus.subscribe(bad)
        bus.subscribe(delivered.append)
        bus.publish("note", {})
        bus.publish("note", {})
        # The campaign must never feel an observer failure: both events
        # still reached the healthy subscriber, and the failures are
        # visible in the bus stats rather than raised.
        assert len(delivered) == 2
        assert bus.subscriber_errors == 2

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.unsubscribe(seen.append)  # absent: no-op
        bus.publish("note", {})
        assert seen == []

    def test_event_to_dict_is_json_stable(self):
        event = CampaignEvent(seq=3, t=12.3456789, kind="note", payload={"a": 1})
        encoded = event.to_dict()
        assert encoded == {"seq": 3, "t": 12.345679, "kind": "note", "payload": {"a": 1}}


class TestModuleBus:
    def test_emit_without_bus_is_a_noop(self):
        assert not events.enabled()
        events.emit("note", note="dropped on the floor")  # must not raise

    def test_install_emit_uninstall_roundtrip(self):
        bus = events.install()
        assert events.enabled()
        assert events.current() is bus
        seen = []
        bus.subscribe(seen.append)
        events.emit("note", note="hello")
        assert [event.kind for event in seen] == ["note"]
        assert events.uninstall() is bus
        assert not events.enabled()

    def test_install_restore_nesting(self):
        outer = events.install()
        previous = events.current()
        inner = events.install(EventBus())
        assert events.current() is inner
        events.restore(previous)
        assert events.current() is outer

    def test_emit_allows_kind_as_payload_key(self):
        # ``emit`` takes its own kind positional-only, so payloads may
        # carry a ``kind`` field (campaign_start does: the register kind).
        bus = events.install()
        seen = []
        bus.subscribe(seen.append)
        events.emit("campaign_start", kind="gpr", total=10)
        assert seen[0].payload == {"kind": "gpr", "total": 10}


class TestSchema:
    def test_schema_version_pinned(self):
        assert EVENT_SCHEMA_VERSION == 1

    def test_kind_vocabulary_pinned(self):
        # Removing a kind (or renaming one) is a schema break; this
        # pin forces the version bump the docs promise.
        assert EVENT_KINDS == {
            "campaign_start",
            "campaign_finish",
            "injection_done",
            "chunk_done",
            "group_done",
            "round_done",
            "retry",
            "degrade",
            "watchdog_hang",
            "journal_checkpoint",
            "journal_resume",
            "stratum_converged",
            "golden_tail",
            "heartbeat",
            "note",
            "interrupt",
        }
