"""Tests for outcome classification and campaign statistics."""

import numpy as np
import pytest

from repro.faultinject.outcomes import (
    CrashKind,
    Outcome,
    OutcomeCounts,
    RunningRates,
    classify_exception,
    wilson_interval,
)
from repro.runtime.errors import HangDetected, InternalAbortError, SegmentationFault


class TestClassification:
    def test_segfault(self):
        outcome, kind = classify_exception(SegmentationFault(0x100))
        assert outcome is Outcome.CRASH and kind is CrashKind.SEGV

    def test_index_error_is_segv(self):
        outcome, kind = classify_exception(IndexError("list index out of range"))
        assert outcome is Outcome.CRASH and kind is CrashKind.SEGV

    def test_abort(self):
        outcome, kind = classify_exception(InternalAbortError("assert"))
        assert outcome is Outcome.CRASH and kind is CrashKind.ABORT

    @pytest.mark.parametrize(
        "exc",
        [ValueError("x"), ZeroDivisionError(), OverflowError(), np.linalg.LinAlgError("s")],
    )
    def test_builtin_traps_are_aborts(self, exc):
        outcome, kind = classify_exception(exc)
        assert outcome is Outcome.CRASH and kind is CrashKind.ABORT

    def test_hang(self):
        outcome, kind = classify_exception(HangDetected(10, 5))
        assert outcome is Outcome.HANG and kind is None

    def test_unknown_exception_reraised(self):
        with pytest.raises(RuntimeError):
            classify_exception(RuntimeError("a genuine library bug"))


class TestOutcomeCounts:
    def test_add_and_rates(self):
        counts = OutcomeCounts()
        for _ in range(6):
            counts.add(Outcome.MASKED)
        counts.add(Outcome.SDC)
        counts.add(Outcome.CRASH, CrashKind.SEGV)
        counts.add(Outcome.CRASH, CrashKind.ABORT)
        counts.add(Outcome.HANG)
        assert counts.total == 10
        assert counts.rate(Outcome.MASKED) == pytest.approx(0.6)
        assert counts.rate(Outcome.CRASH) == pytest.approx(0.2)
        assert counts.crash_segv == 1 and counts.crash_abort == 1

    def test_rates_sum_to_one(self):
        counts = OutcomeCounts(masked=5, sdc=3, crash_segv=2, hang=1)
        assert sum(counts.rates().values()) == pytest.approx(1.0)

    def test_empty_counts(self):
        counts = OutcomeCounts()
        assert counts.total == 0
        assert counts.rate(Outcome.SDC) == 0.0
        assert counts.segv_fraction_of_crashes() == 0.0

    def test_segv_fraction_no_crashes(self):
        # All-masked campaign: zero crashes must not divide by zero.
        counts = OutcomeCounts(masked=25)
        assert counts.crash == 0
        assert counts.segv_fraction_of_crashes() == 0.0

    def test_segv_fraction_extremes(self):
        assert OutcomeCounts(crash_segv=4).segv_fraction_of_crashes() == 1.0
        assert OutcomeCounts(crash_abort=4).segv_fraction_of_crashes() == 0.0

    def test_segv_fraction(self):
        counts = OutcomeCounts(crash_segv=9, crash_abort=1)
        assert counts.segv_fraction_of_crashes() == pytest.approx(0.9)


class TestWilson:
    def test_symmetric_at_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert (0.5 - lo) == pytest.approx(hi - 0.5, abs=1e-9)

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(10, 40)
        assert lo < 0.25 < hi

    def test_zero_total(self):
        # Regression: no samples means no rate to bound — the old
        # (0.0, 1.0) answer implied certainty of a valid experiment.
        assert wilson_interval(0, 0) == (0.0, 0.0)

    def test_zero_total_never_divides_by_zero(self):
        for z in (0.0, 1.0, 1.96):
            assert wilson_interval(0, 0, z=z) == (0.0, 0.0)

    def test_zero_z_degenerates_to_point_estimate(self):
        lo, hi = wilson_interval(3, 10, z=0.0)
        assert lo == pytest.approx(0.3)
        assert hi == pytest.approx(0.3)

    def test_narrows_with_samples(self):
        lo_small, hi_small = wilson_interval(5, 10)
        lo_big, hi_big = wilson_interval(500, 1000)
        assert (hi_big - lo_big) < (hi_small - lo_small)

    def test_bounds_clamped(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0


class TestRunningRates:
    def test_records_trajectory(self):
        counts = OutcomeCounts()
        running = RunningRates()
        counts.add(Outcome.MASKED)
        running.record(counts)
        counts.add(Outcome.SDC)
        running.record(counts)
        xs, ys = running.series(Outcome.SDC)
        assert list(xs) == [1, 2]
        assert ys[0] == 0.0 and ys[1] == pytest.approx(0.5)

    def test_empty_series(self):
        xs, ys = RunningRates().series(Outcome.SDC)
        assert len(xs) == 0 and len(ys) == 0

    def test_single_sample_series(self):
        counts = OutcomeCounts()
        counts.add(Outcome.SDC)
        running = RunningRates()
        running.record(counts)
        xs, ys = running.series(Outcome.SDC)
        assert list(xs) == [1]
        assert list(ys) == [1.0]
        # The other outcomes track the same checkpoints at rate 0.
        xs_mask, ys_mask = running.series(Outcome.MASKED)
        assert list(xs_mask) == [1]
        assert list(ys_mask) == [0.0]
