"""Kill-mid-campaign resume: the strongest durability test.

A real campaign process (not a thread, not a mock) is SIGKILL'd while
mid-run with a checkpoint journal enabled.  SIGKILL gives the process
zero chance to flush or clean up — anything that survives survived
because ``append_chunk`` fsync'd it.  The resumed run must then produce
outcome counts, running-rate series, histograms and per-run cycle
counts identical to an uninterrupted reference run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
HELPER = ["-m", "tests.faultinject._resume_worker"]


def _run_helper(mode: str, journal: Path, out: Path, *extra: str, wait: bool = True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + str(REPO_ROOT)
    process = subprocess.Popen(
        [sys.executable, *HELPER, mode, str(journal), str(out), *extra],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    if wait:
        assert process.wait(timeout=120) == 0
    return process


def _journaled_records(journal: Path, record_type: str) -> int:
    if not journal.exists():
        return 0
    # Count complete records of one type only (ignore header and tail).
    count = 0
    for line in journal.read_bytes().split(b"\n")[:-1]:
        try:
            if json.loads(line).get("type") == record_type:
                count += 1
        except json.JSONDecodeError:
            pass
    return count


def _journaled_chunks(journal: Path) -> int:
    return _journaled_records(journal, "chunk")


def test_sigkill_mid_campaign_then_resume_is_bit_identical(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    killed_out = tmp_path / "killed.json"
    resumed_out = tmp_path / "resumed.json"
    reference_out = tmp_path / "reference.json"

    # Launch the journaled campaign with per-injection slowdown, wait
    # until at least one chunk is durably journaled, then SIGKILL it.
    process = _run_helper("run", journal, killed_out, "0.05", wait=False)
    deadline = time.monotonic() + 60
    while _journaled_chunks(journal) < 1:
        assert process.poll() is None, "campaign finished before it could be killed"
        assert time.monotonic() < deadline, "no chunk journaled within 60s"
        time.sleep(0.02)
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=30)
    assert not killed_out.exists(), "SIGKILL'd run must not have finished"
    chunks_before = _journaled_chunks(journal)
    assert chunks_before >= 1

    # Resume: journaled chunks replay, the remainder runs fresh.
    _run_helper("resume", journal, resumed_out)
    # Reference: one uninterrupted run, no journal.
    _run_helper("reference", journal, reference_out)

    resumed = json.loads(resumed_out.read_text())
    reference = json.loads(reference_out.read_text())
    assert resumed == reference


def test_sigkill_mid_stratified_campaign_then_resume_is_bit_identical(tmp_path):
    """The same SIGKILL protocol against the round-granularity journal.

    A stratified campaign's round ``k`` draws depend on the statistics
    of rounds ``< k``, so resuming from the fsync'd round prefix must
    reproduce the uninterrupted campaign exactly — outcome sequence,
    per-cell statistics and the full sampling summary included.
    """
    journal = tmp_path / "stratified.jsonl"
    killed_out = tmp_path / "killed.json"
    resumed_out = tmp_path / "resumed.json"
    reference_out = tmp_path / "reference.json"

    process = _run_helper("strat-run", journal, killed_out, "0.03", wait=False)
    deadline = time.monotonic() + 60
    while _journaled_records(journal, "round") < 1:
        assert process.poll() is None, "campaign finished before it could be killed"
        assert time.monotonic() < deadline, "no round journaled within 60s"
        time.sleep(0.02)
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=30)
    assert not killed_out.exists(), "SIGKILL'd run must not have finished"
    assert _journaled_records(journal, "round") >= 1
    assert _journaled_records(journal, "chunk") == 0, "v3 journal must use round records"

    _run_helper("strat-resume", journal, resumed_out)
    _run_helper("strat-reference", journal, reference_out)

    resumed = json.loads(resumed_out.read_text())
    reference = json.loads(reference_out.read_text())
    assert resumed["sampling"]["mode"] == "stratified"
    assert resumed == reference


def _assert_status_parses(status: Path) -> dict | None:
    """Read the status snapshot; it must never be torn or partial.

    Returns the parsed payload, or None when the file does not exist
    yet.  Any JSONDecodeError is a real failure — the atomic
    write-then-rename protocol promises readers a complete document at
    every instant, including while the writer is being SIGKILL'd.
    """
    try:
        raw = status.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    return json.loads(raw)


def test_sigkill_leaves_status_snapshot_parseable_and_resume_finishes(tmp_path):
    """Status crash safety under the same SIGKILL protocol.

    The helper campaign runs with ``REPRO_STATUS`` set (the env one-flag
    the CLI honours), and the parent polls the status file the whole
    time: every single read must parse as complete JSON and pass the
    schema gate.  After the kill, the file still parses; after a
    resumed run, it reaches ``finished`` with the full outcome tally.
    """
    from repro.observe.session import STATUS_ENV
    from repro.observe.status import validate_status

    journal = tmp_path / "campaign.jsonl"
    status = tmp_path / "status.json"
    killed_out = tmp_path / "killed.json"
    resumed_out = tmp_path / "resumed.json"
    reference_out = tmp_path / "reference.json"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + str(REPO_ROOT)
    env[STATUS_ENV] = str(status)
    process = subprocess.Popen(
        [sys.executable, *HELPER, "run", str(journal), str(killed_out), "0.05"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )

    reads = 0
    deadline = time.monotonic() + 60
    while _journaled_chunks(journal) < 1:
        assert process.poll() is None, "campaign finished before it could be killed"
        assert time.monotonic() < deadline, "no chunk journaled within 60s"
        payload = _assert_status_parses(status)
        if payload is not None:
            reads += 1
            assert validate_status(payload) == []
        time.sleep(0.02)
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=30)
    assert not killed_out.exists(), "SIGKILL'd run must not have finished"
    assert reads >= 1, "status file never appeared while the campaign ran"

    # Post-mortem: the last atomically-replaced snapshot survived intact.
    payload = _assert_status_parses(status)
    assert payload is not None
    assert validate_status(payload) == []
    assert payload["state"] in ("starting", "running")

    # Resume under observation: the snapshot must reach `finished` and
    # the resumed result must still match the uninterrupted reference.
    resume = subprocess.run(
        [sys.executable, *HELPER, "resume", str(journal), str(resumed_out)],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=120,
    )
    assert resume.returncode == 0
    payload = _assert_status_parses(status)
    assert validate_status(payload) == []
    assert payload["state"] == "finished"
    assert payload["resume"] is not None
    assert payload["progress"]["done"] == payload["progress"]["total"]

    _run_helper("reference", journal, reference_out)
    assert json.loads(resumed_out.read_text()) == json.loads(reference_out.read_text())
