"""Kill-mid-campaign resume: the strongest durability test.

A real campaign process (not a thread, not a mock) is SIGKILL'd while
mid-run with a checkpoint journal enabled.  SIGKILL gives the process
zero chance to flush or clean up — anything that survives survived
because ``append_chunk`` fsync'd it.  The resumed run must then produce
outcome counts, running-rate series, histograms and per-run cycle
counts identical to an uninterrupted reference run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
HELPER = ["-m", "tests.faultinject._resume_worker"]


def _run_helper(mode: str, journal: Path, out: Path, *extra: str, wait: bool = True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + str(REPO_ROOT)
    process = subprocess.Popen(
        [sys.executable, *HELPER, mode, str(journal), str(out), *extra],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    if wait:
        assert process.wait(timeout=120) == 0
    return process


def _journaled_records(journal: Path, record_type: str) -> int:
    if not journal.exists():
        return 0
    # Count complete records of one type only (ignore header and tail).
    count = 0
    for line in journal.read_bytes().split(b"\n")[:-1]:
        try:
            if json.loads(line).get("type") == record_type:
                count += 1
        except json.JSONDecodeError:
            pass
    return count


def _journaled_chunks(journal: Path) -> int:
    return _journaled_records(journal, "chunk")


def test_sigkill_mid_campaign_then_resume_is_bit_identical(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    killed_out = tmp_path / "killed.json"
    resumed_out = tmp_path / "resumed.json"
    reference_out = tmp_path / "reference.json"

    # Launch the journaled campaign with per-injection slowdown, wait
    # until at least one chunk is durably journaled, then SIGKILL it.
    process = _run_helper("run", journal, killed_out, "0.05", wait=False)
    deadline = time.monotonic() + 60
    while _journaled_chunks(journal) < 1:
        assert process.poll() is None, "campaign finished before it could be killed"
        assert time.monotonic() < deadline, "no chunk journaled within 60s"
        time.sleep(0.02)
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=30)
    assert not killed_out.exists(), "SIGKILL'd run must not have finished"
    chunks_before = _journaled_chunks(journal)
    assert chunks_before >= 1

    # Resume: journaled chunks replay, the remainder runs fresh.
    _run_helper("resume", journal, resumed_out)
    # Reference: one uninterrupted run, no journal.
    _run_helper("reference", journal, reference_out)

    resumed = json.loads(resumed_out.read_text())
    reference = json.loads(reference_out.read_text())
    assert resumed == reference


def test_sigkill_mid_stratified_campaign_then_resume_is_bit_identical(tmp_path):
    """The same SIGKILL protocol against the round-granularity journal.

    A stratified campaign's round ``k`` draws depend on the statistics
    of rounds ``< k``, so resuming from the fsync'd round prefix must
    reproduce the uninterrupted campaign exactly — outcome sequence,
    per-cell statistics and the full sampling summary included.
    """
    journal = tmp_path / "stratified.jsonl"
    killed_out = tmp_path / "killed.json"
    resumed_out = tmp_path / "resumed.json"
    reference_out = tmp_path / "reference.json"

    process = _run_helper("strat-run", journal, killed_out, "0.03", wait=False)
    deadline = time.monotonic() + 60
    while _journaled_records(journal, "round") < 1:
        assert process.poll() is None, "campaign finished before it could be killed"
        assert time.monotonic() < deadline, "no round journaled within 60s"
        time.sleep(0.02)
    os.kill(process.pid, signal.SIGKILL)
    process.wait(timeout=30)
    assert not killed_out.exists(), "SIGKILL'd run must not have finished"
    assert _journaled_records(journal, "round") >= 1
    assert _journaled_records(journal, "chunk") == 0, "v3 journal must use round records"

    _run_helper("strat-resume", journal, resumed_out)
    _run_helper("strat-reference", journal, reference_out)

    resumed = json.loads(resumed_out.read_text())
    reference = json.loads(reference_out.read_text())
    assert resumed["sampling"]["mode"] == "stratified"
    assert resumed == reference
