"""REPRO_WORKERS parsing: malformed values fail fast with a clear error.

Worker counts arrive through three doors — the ``workers=`` argument,
the ``REPRO_WORKERS`` environment variable, and the CLI ``--workers``
flag.  All three must reject non-integers and non-positive counts with
an error that names the offending source, *before* any expensive work
(in particular before the golden run) starts.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.faultinject.parallel import WORKERS_ENV, default_workers, resolve_workers
from repro.summarize.golden import golden_cache_stats


class TestEnvParsing:
    @pytest.mark.parametrize("raw", ["abc", "lots", "1.5", "2x", " ", "--"])
    def test_non_integer_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ValueError, match="REPRO_WORKERS.*positive integer"):
            resolve_workers(None)
        with pytest.raises(ValueError, match="REPRO_WORKERS.*positive integer"):
            default_workers()

    @pytest.mark.parametrize("raw", ["0", "-1", "-2"])
    def test_non_positive_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ValueError, match="REPRO_WORKERS.*positive integer"):
            resolve_workers(None)
        with pytest.raises(ValueError, match="REPRO_WORKERS.*positive integer"):
            default_workers()

    def test_error_quotes_the_offending_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="'many'"):
            resolve_workers(None)

    def test_valid_env_accepted(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        assert default_workers() == 3

    def test_empty_env_means_unset(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers(None) == 1
        assert default_workers() >= 1


class TestExplicitRequest:
    @pytest.mark.parametrize("requested", [0, -1, -7])
    def test_non_positive_request_rejected_not_clamped(self, requested):
        with pytest.raises(ValueError, match="workers.*positive integer"):
            resolve_workers(requested)

    def test_explicit_request_bypasses_broken_env(self, monkeypatch):
        # An explicit count wins, so a stale bad env var cannot break it.
        monkeypatch.setenv(WORKERS_ENV, "garbage")
        assert resolve_workers(2) == 2


class TestCLIPaths:
    def test_cli_rejects_zero_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--workers", "0", "-n", "1", "--frames", "8"])
        assert "positive integer" in capsys.readouterr().err

    def test_cli_rejects_non_integer_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--workers", "two", "-n", "1", "--frames", "8"])

    def test_campaign_fails_fast_on_bad_env_before_golden_run(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "not-a-count")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            main(["campaign", "-n", "2", "--frames", "8"])
        # Fail-fast contract: the golden run never started.
        assert golden_cache_stats().computes == 0

    def test_experiment_fails_fast_on_bad_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-3")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            main(["experiment", "fig10", "--scale", "tiny"])
        assert golden_cache_stats().computes == 0
