"""Tests for the architectural register-file model and bindings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faultinject.addrspace import AddressSpace
from repro.faultinject.registers import (
    NUM_REGISTERS,
    ArrayBinding,
    FlipEffect,
    LivenessModel,
    RegisterFileState,
    RegisterWindow,
    RegKind,
    Role,
    flip_bit64,
    flip_float64_bit,
)
from repro.runtime.context import Cell
from repro.runtime.errors import SegmentationFault

bits = st.integers(min_value=0, max_value=63)
int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestBitFlips:
    @given(int64s, bits)
    def test_flip_is_involution(self, value, bit):
        assert flip_bit64(flip_bit64(value, bit), bit) == value

    @given(int64s, bits)
    def test_flip_changes_value(self, value, bit):
        assert flip_bit64(value, bit) != value

    def test_flip_bit_zero(self):
        assert flip_bit64(0, 0) == 1
        assert flip_bit64(1, 0) == 0

    def test_flip_sign_bit(self):
        assert flip_bit64(0, 63) == -(2**63)

    def test_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            flip_bit64(0, 64)

    @given(st.floats(allow_nan=False, allow_infinity=False), bits)
    def test_float_flip_is_involution(self, value, bit):
        once = flip_float64_bit(value, bit)
        twice = flip_float64_bit(once, bit)
        assert twice == value or (np.isnan(twice) and np.isnan(value))

    def test_float_mantissa_flip_is_small(self):
        assert abs(flip_float64_bit(1.0, 0) - 1.0) < 1e-12

    def test_float_exponent_flip_is_large(self):
        assert abs(flip_float64_bit(1.0, 62)) > 1e100


class TestBindingFlips:
    def _flip(self, binding, bit, seed=0):
        return binding.flip(bit, np.random.default_rng(seed), AddressSpace(seed=0))

    def test_cell_binding_updates_cell(self):
        cell = Cell(4)
        window = RegisterWindow("t")
        window.gpr_cell("x", cell)
        effect = self._flip(window.bindings[0], 0)
        assert effect is FlipEffect.APPLIED
        assert cell.value == 5

    def test_value_binding_calls_apply(self):
        seen = []
        window = RegisterWindow("t")
        window.gpr_value("v", 8, apply=seen.append)
        self._flip(window.bindings[0], 1)
        assert seen == [10]

    def test_u8_array_flip_in_place(self):
        arr = np.zeros(16, dtype=np.uint8)
        window = RegisterWindow("t")
        window.gpr_array("a", arr)
        effect = self._flip(window.bindings[0], 3)
        assert effect is FlipEffect.APPLIED
        assert arr.sum() == 8

    def test_u8_array_high_bit_truncated(self):
        arr = np.zeros(16, dtype=np.uint8)
        window = RegisterWindow("t")
        window.gpr_array("a", arr)
        effect = self._flip(window.bindings[0], 20)
        assert effect is FlipEffect.TRUNCATED
        assert arr.sum() == 0

    def test_float_array_flip(self):
        arr = np.ones(8, dtype=np.float64)
        window = RegisterWindow("t")
        window.fpr_array("f", arr)
        effect = self._flip(window.bindings[0], 62)
        assert effect is FlipEffect.APPLIED
        assert np.abs(arr).max() > 1e100

    def test_fpr_array_rejects_ints(self):
        window = RegisterWindow("t")
        with pytest.raises(TypeError):
            window.fpr_array("bad", np.zeros(4, dtype=np.int64))

    def test_gpr_array_rejects_floats(self):
        window = RegisterWindow("t")
        with pytest.raises(TypeError):
            window.gpr_array("bad", np.zeros(4, dtype=np.float64))

    def test_empty_array_rejected(self):
        window = RegisterWindow("t")
        with pytest.raises(ValueError):
            window.gpr_array("bad", np.zeros(0, dtype=np.uint8))

    def test_read_only_array_rejected(self):
        arr = np.zeros(4, dtype=np.uint8)
        arr.setflags(write=False)
        window = RegisterWindow("t")
        with pytest.raises(ValueError):
            window.gpr_array("bad", arr)


class TestAddressBinding:
    def test_high_bit_flip_segfaults(self):
        space = AddressSpace(seed=1)
        arr = np.zeros(64, dtype=np.uint8)
        window = RegisterWindow("t")
        window.gpr_address("p", arr)
        with pytest.raises(SegmentationFault):
            window.bindings[0].flip(60, np.random.default_rng(0), space)

    def test_low_bit_flip_aliases_within_allocation(self):
        space = AddressSpace(seed=2)
        arr = np.arange(128, dtype=np.uint8)
        window = RegisterWindow("t")
        window.gpr_address("p", arr, window=16)
        effect = window.bindings[0].flip(4, np.random.default_rng(0), space)
        assert effect is FlipEffect.APPLIED
        # The wrong-read model copies bytes from base^16 over the start.
        assert np.array_equal(arr[:16], np.arange(16, 32, dtype=np.uint8))

    def test_write_pointer_smash(self):
        space = AddressSpace(seed=3)
        arr = np.zeros(4096 * 2, dtype=np.uint8)
        window = RegisterWindow("t")
        window.gpr_address("p", arr, writes=True, window=16)
        # An in-page flip stays inside the allocation and smashes it.
        effect = window.bindings[0].flip(6, np.random.default_rng(0), space)
        assert effect is FlipEffect.APPLIED
        assert np.count_nonzero(arr) > 0  # pattern smashed into the alias

    def test_on_alias_callback(self):
        space = AddressSpace(seed=4)
        arr = (np.arange(4096 * 2) % 256).astype(np.uint8)
        seen = []
        window = RegisterWindow("t")
        window.gpr_address("p", arr, window=8, on_alias=lambda view, off: seen.append(off))
        window.bindings[0].flip(6, np.random.default_rng(0), space)
        assert len(seen) == 1


class TestRegisterFileState:
    def test_round_robin_assignment(self):
        state = RegisterFileState()
        window = RegisterWindow("site")
        for i in range(3):
            window.gpr_cell(f"name{i}", Cell(i))
        slots = [state.write(b, "site", cycle=0) for b in window.bindings]
        assert slots == [0, 1, 2]

    def test_same_name_same_slot(self):
        state = RegisterFileState()
        window = RegisterWindow("site")
        window.gpr_cell("x", Cell(0))
        first = state.write(window.bindings[0], "site", cycle=0)
        second = state.write(window.bindings[0], "site", cycle=10)
        assert first == second

    def test_wraps_after_32_names(self):
        state = RegisterFileState()
        window = RegisterWindow("site")
        for i in range(NUM_REGISTERS + 1):
            window.gpr_cell(f"n{i}", Cell(i))
        slots = [state.write(b, "site", cycle=0) for b in window.bindings]
        assert slots[NUM_REGISTERS] == 0  # wrapped

    def test_kinds_have_separate_slots(self):
        state = RegisterFileState()
        window = RegisterWindow("site")
        window.gpr_cell("g", Cell(0))
        window.fpr_array("f", np.ones(2))
        gpr_slot = state.write(window.bindings[0], "site", cycle=0)
        fpr_slot = state.write(window.bindings[1], "site", cycle=0)
        assert gpr_slot == 0 and fpr_slot == 0
        assert state.entry(RegKind.GPR, 0).binding.name == "g"
        assert state.entry(RegKind.FPR, 0).binding.name == "f"

    def test_entry_empty_slot(self):
        assert RegisterFileState().entry(RegKind.GPR, 5) is None


class TestLivenessModel:
    def test_role_defaults(self):
        model = LivenessModel()
        assert model.ttl_for(RegKind.GPR, Role.ADDRESS) > model.ttl_for(RegKind.GPR, Role.DATA)
        assert model.ttl_for(RegKind.FPR, Role.DATA) < model.ttl_for(RegKind.GPR, Role.DATA)

    def test_binding_ttl_override(self):
        window = RegisterWindow("t")
        window.gpr_cell("x", Cell(0), ttl=123)
        assert window.bindings[0].effective_ttl(LivenessModel()) == 123
