"""Tests for the adaptive stratified campaign planner and estimators.

Three invariants anchor this file:

* the Horvitz-Thompson reweighted estimator is *unbiased* (checked by
  seeded Monte-Carlo replication against an analytic error bound) and
  reduces exactly to the plain pooled rate under equal weights and
  equal per-cell draws;
* uniform mode draws plans **byte-identically** to the pre-stratified
  releases — the reference draw is inlined here, not imported, so a
  refactor of ``draw_plans`` cannot silently move the pin;
* a stratified campaign is deterministic, resumable bit-identically
  after an interrupt, and statistically consistent with a uniform
  campaign on the same workload (the ``repro report diff`` z-gate).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.faultinject.campaign import CampaignConfig, draw_plans, run_campaign
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.journal import (
    ABORT_AFTER_ENV,
    CampaignInterrupted,
    JournalError,
    config_fingerprint,
)
from repro.faultinject.outcomes import Outcome, OutcomeCounts
from repro.faultinject.registers import NUM_REGISTERS, REGISTER_BITS, RegKind
from repro.faultinject.sampling import (
    Stratification,
    boundary_cycle_edges,
    cell_max_ci_width,
    draw_cell_plans,
    reweighted_rates,
    reweighted_variance,
    uniform_cycle_edges,
)
from tests.faultinject.test_parallel import toy_workload


def _counts(masked=0, sdc=0, crash_segv=0, crash_abort=0, hang=0) -> OutcomeCounts:
    return OutcomeCounts(
        masked=masked,
        sdc=sdc,
        crash_segv=crash_segv,
        crash_abort=crash_abort,
        hang=hang,
    )


@st.composite
def outcome_partitions(draw, total: int):
    """Split ``total`` runs over the four primary outcome classes."""
    masked = draw(st.integers(0, total))
    sdc = draw(st.integers(0, total - masked))
    crash = draw(st.integers(0, total - masked - sdc))
    hang = total - masked - sdc - crash
    return _counts(masked=masked, sdc=sdc, crash_segv=crash, hang=hang)


# ---------------------------------------------------------------------------
# Estimators
# ---------------------------------------------------------------------------


class TestReweightedRates:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_equal_weights_equal_draws_reduce_to_pooled_rate(self, data):
        """With uniform strata the HT estimate IS the plain rate."""
        n_cells = data.draw(st.integers(1, 6))
        per_cell = data.draw(st.integers(1, 40))
        counts = [data.draw(outcome_partitions(per_cell)) for _ in range(n_cells)]
        weights = [1.0 / n_cells] * n_cells

        pooled = _counts()
        for c in counts:
            pooled.masked += c.masked
            pooled.sdc += c.sdc
            pooled.crash_segv += c.crash_segv
            pooled.crash_abort += c.crash_abort
            pooled.hang += c.hang

        reweighted = reweighted_rates(weights, counts)
        for outcome in Outcome:
            assert reweighted[outcome.value] == pytest.approx(
                pooled.rate(outcome), abs=1e-12
            )

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_ht_estimator_is_unbiased(self, data):
        """Mean HT estimate over replications matches the true mixture rate.

        The world is synthetic: known cell weights and true per-cell SDC
        probabilities.  Every cell is sampled, so the estimator is
        exactly unbiased and the replication mean must land within a
        5-sigma analytic bound of ``sum_c W_c p_c``.
        """
        n_cells = data.draw(st.integers(2, 5))
        raw_weights = [
            data.draw(st.floats(0.05, 1.0, allow_nan=False)) for _ in range(n_cells)
        ]
        total = sum(raw_weights)
        weights = [w / total for w in raw_weights]
        probs = [
            data.draw(st.floats(0.0, 1.0, allow_nan=False)) for _ in range(n_cells)
        ]
        draws = [data.draw(st.integers(30, 80)) for _ in range(n_cells)]
        seed = data.draw(st.integers(0, 2**31 - 1))

        truth = sum(w * p for w, p in zip(weights, probs))
        # Variance of one HT estimate (all cells sampled, weights sum
        # to 1): sum_c W_c^2 p_c (1 - p_c) / n_c.
        single_var = sum(
            w**2 * p * (1.0 - p) / n for w, p, n in zip(weights, probs, draws)
        )
        replications = 400
        rng = np.random.default_rng(seed)
        estimates = []
        for _ in range(replications):
            counts = []
            for n, p in zip(draws, probs):
                # SDC successes are binomial; masked fills the rest so
                # each cell totals exactly its n draws.
                sdc = int(rng.binomial(n, p))
                counts.append(_counts(sdc=sdc, masked=n - sdc))
            estimates.append(reweighted_rates(weights, counts)["sdc"])
        mean = sum(estimates) / replications
        bound = 5.0 * math.sqrt(single_var / replications) + 1e-9
        assert abs(mean - truth) <= bound

    def test_zero_draw_cells_excluded_and_renormalized(self):
        weights = [0.25, 0.75]
        counts = [_counts(masked=3, sdc=1), _counts()]
        rates = reweighted_rates(weights, counts)
        # Only the sampled cell carries information: its own rates.
        assert rates["mask"] == pytest.approx(0.75)
        assert rates["sdc"] == pytest.approx(0.25)

    def test_no_sampled_cells_gives_zero_rates(self):
        rates = reweighted_rates([0.5, 0.5], [_counts(), _counts()])
        assert rates == {outcome.value: 0.0 for outcome in Outcome}

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="weights"):
            reweighted_rates([0.5], [_counts(), _counts()])

    def test_variance_matches_hand_computation(self):
        weights = [0.5, 0.5]
        counts = [_counts(masked=5, sdc=5), _counts(masked=10)]
        variance = reweighted_variance(weights, counts)
        # Cell 1: p=0.5, n=10 -> 0.25 * 0.5*0.5/10; cell 2: p=0 -> 0.
        assert variance["sdc"] == pytest.approx(0.25 * 0.025)
        assert variance["mask"] == pytest.approx(0.25 * 0.025)

    def test_cell_max_ci_width_shrinks_with_draws(self):
        assert cell_max_ci_width(_counts()) == 1.0
        widths = [
            cell_max_ci_width(_counts(masked=n // 2, sdc=n - n // 2))
            for n in (4, 16, 64, 256)
        ]
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < 0.25


# ---------------------------------------------------------------------------
# Stratification geometry
# ---------------------------------------------------------------------------


class TestStratification:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_cells_partition_the_plan_space(self, data):
        """Every plan lands in exactly the cell whose ranges contain it."""
        register_classes = data.draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
        bit_octets = data.draw(st.sampled_from([1, 2, 4, 8, 16]))
        total_cycles = data.draw(st.integers(10, 100_000))
        n_cycle = data.draw(st.integers(1, 6))
        strat = Stratification.build(
            RegKind.GPR,
            total_cycles,
            cycle_edges=uniform_cycle_edges(total_cycles, n_cycle),
            register_classes=register_classes,
            bit_octets=bit_octets,
        )
        assert sum(cell.weight for cell in strat.cells) == pytest.approx(1.0)

        plan = InjectionPlan(
            target_cycle=data.draw(st.integers(0, total_cycles - 1)),
            kind=RegKind.GPR,
            register=data.draw(st.integers(0, NUM_REGISTERS - 1)),
            bit=data.draw(st.integers(0, REGISTER_BITS - 1)),
        )
        cell = strat.cells[strat.cell_index_for(plan)]
        assert cell.registers[0] <= plan.register < cell.registers[1]
        assert cell.bits[0] <= plan.bit < cell.bits[1]
        assert cell.cycles[0] <= plan.target_cycle < cell.cycles[1]

    def test_cell_draws_land_in_their_own_cell(self):
        strat = Stratification.build(
            RegKind.GPR, 5000, register_classes=4, bit_octets=4
        )
        for cell in strat.cells:
            for plan in draw_cell_plans(cell, RegKind.GPR, 16, seed=3, round_index=2):
                assert strat.cell_index_for(plan) == cell.index

    def test_cell_draws_are_deterministic_per_round_and_cell(self):
        strat = Stratification.build(RegKind.GPR, 5000)
        cell = strat.cells[5]
        first = draw_cell_plans(cell, RegKind.GPR, 8, seed=7, round_index=1)
        again = draw_cell_plans(cell, RegKind.GPR, 8, seed=7, round_index=1)
        other_round = draw_cell_plans(cell, RegKind.GPR, 8, seed=7, round_index=2)
        assert first == again
        assert first != other_round

    def test_build_rejects_bad_grids(self):
        with pytest.raises(ValueError, match="register_classes"):
            Stratification.build(RegKind.GPR, 1000, register_classes=5)
        with pytest.raises(ValueError, match="bit_octets"):
            Stratification.build(RegKind.GPR, 1000, bit_octets=7)
        with pytest.raises(ValueError, match="total_cycles"):
            Stratification.build(RegKind.GPR, 0)
        with pytest.raises(ValueError, match="cycle_edges"):
            Stratification.build(RegKind.GPR, 1000, cycle_edges=[0, 500, 400, 1000])
        with pytest.raises(ValueError, match="cycle_edges"):
            Stratification.build(RegKind.GPR, 1000, cycle_edges=[100, 1000])

    def test_boundary_edges_cap_and_cover(self):
        edges = boundary_cycle_edges(range(100, 10_000, 100), 10_000, max_strata=4)
        assert edges[0] == 0 and edges[-1] == 10_000
        assert len(edges) - 1 <= 4
        assert edges == sorted(edges)

    def test_uniform_edges_degenerate_totals(self):
        assert uniform_cycle_edges(3, 8) == [0, 1, 2, 3]
        assert uniform_cycle_edges(1, 4) == [0, 1]
        with pytest.raises(ValueError):
            uniform_cycle_edges(0, 4)


# ---------------------------------------------------------------------------
# Uniform mode: the byte-identity pin
# ---------------------------------------------------------------------------


class TestUniformPin:
    @pytest.mark.parametrize("seed", [0, 1, 9, 123])
    @pytest.mark.parametrize("n", [1, 12, 60])
    def test_uniform_plans_byte_identical_to_reference(self, seed, n):
        """The exact pre-stratification draw, inlined as the reference.

        ``draw_plans`` must keep producing this sequence forever:
        one ``default_rng(seed)`` stream, per plan drawing cycle then
        register then bit with ``rng.integers``.
        """
        golden_cycles = 48_000
        rng = np.random.default_rng(seed)
        reference = [
            InjectionPlan(
                target_cycle=int(rng.integers(0, golden_cycles)),
                kind=RegKind.GPR,
                register=int(rng.integers(0, NUM_REGISTERS)),
                bit=int(rng.integers(0, REGISTER_BITS)),
            )
            for _ in range(n)
        ]
        config = CampaignConfig(n_injections=n, kind=RegKind.GPR, seed=seed)
        assert draw_plans(config, golden_cycles) == reference

    def test_stratified_knobs_do_not_perturb_uniform_mode(self):
        """Uniform plans and fingerprints ignore the stratified knobs."""
        golden_cycles = 48_000
        base = CampaignConfig(n_injections=20, kind=RegKind.GPR, seed=4)
        tweaked = CampaignConfig(
            n_injections=20,
            kind=RegKind.GPR,
            seed=4,
            ci_width=0.5,
            round_size=3,
            max_injections=7,
            strata=(2, 2, 2),
        )
        assert draw_plans(base, golden_cycles) == draw_plans(tweaked, golden_cycles)
        assert config_fingerprint(base) == config_fingerprint(tweaked)
        assert "stratified" not in config_fingerprint(base)


# ---------------------------------------------------------------------------
# The stratified campaign on the toy workload
# ---------------------------------------------------------------------------


def _toy():
    from repro.runtime.context import ExecutionContext

    ctx = ExecutionContext()
    golden = toy_workload(ctx)
    return golden, ctx.cycles


def _stratified_config(**overrides) -> CampaignConfig:
    base = dict(
        n_injections=1,
        kind=RegKind.GPR,
        seed=9,
        workers=1,
        sampling="stratified",
        ci_width=0.3,
        round_size=8,
        strata=(2, 2, 2),
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _outcome_sequence(campaign) -> list[tuple]:
    return [
        (
            result.plan.target_cycle,
            result.plan.register,
            result.plan.bit,
            result.outcome.value,
            result.cycles,
        )
        for result in campaign.results
    ]


class TestStratifiedCampaign:
    def test_converges_and_reports(self):
        golden, cycles = _toy()
        campaign = run_campaign(toy_workload, golden, cycles, _stratified_config())
        summary = campaign.sampling
        assert summary is not None
        assert summary.cells_converged == len(summary.cells)
        assert not summary.budget_exhausted
        assert summary.total_draws == len(campaign.results) == campaign.counts.total
        assert summary.total_draws == sum(stats.draws for stats in summary.cells)
        for stats in summary.cells:
            assert cell_max_ci_width(stats.counts) <= summary.ci_width
        payload = summary.to_dict()
        assert payload["mode"] == "stratified"
        assert payload["draws"] == summary.total_draws
        assert payload["uniform_equivalent_draws"] >= summary.total_draws - payload[
            "draws_saved"
        ]
        assert set(payload["ht_rates"]) == {o.value for o in Outcome}

    def test_is_deterministic(self):
        golden, cycles = _toy()
        first = run_campaign(toy_workload, golden, cycles, _stratified_config())
        second = run_campaign(toy_workload, golden, cycles, _stratified_config())
        assert _outcome_sequence(first) == _outcome_sequence(second)
        assert first.sampling.to_dict() == second.sampling.to_dict()

    def test_budget_cap_marks_exhausted(self):
        golden, cycles = _toy()
        config = _stratified_config(ci_width=0.02, max_injections=40)
        campaign = run_campaign(toy_workload, golden, cycles, config)
        summary = campaign.sampling
        assert summary.budget_exhausted
        assert summary.total_draws <= 40
        assert summary.cells_converged < len(summary.cells)

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path, monkeypatch):
        golden, cycles = _toy()
        config = _stratified_config()
        journal = tmp_path / "strat.jsonl"

        monkeypatch.setenv(ABORT_AFTER_ENV, "2")
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                toy_workload, golden, cycles, config, journal_path=journal
            )
        monkeypatch.delenv(ABORT_AFTER_ENV)

        resumed = run_campaign(
            toy_workload, golden, cycles, config, journal_path=journal, resume=True
        )
        reference = run_campaign(toy_workload, golden, cycles, config)
        assert _outcome_sequence(resumed) == _outcome_sequence(reference)
        assert resumed.sampling.to_dict() == reference.sampling.to_dict()

    def test_mixed_mode_resume_rejected_both_ways(self, tmp_path):
        golden, cycles = _toy()
        uniform_journal = tmp_path / "uniform.jsonl"
        uniform_config = CampaignConfig(
            n_injections=8, kind=RegKind.GPR, seed=9, workers=1
        )
        run_campaign(
            toy_workload, golden, cycles, uniform_config, journal_path=uniform_journal
        )
        with pytest.raises(JournalError, match="sampling='uniform'"):
            run_campaign(
                toy_workload,
                golden,
                cycles,
                _stratified_config(),
                journal_path=uniform_journal,
                resume=True,
            )

        strat_journal = tmp_path / "strat.jsonl"
        run_campaign(
            toy_workload,
            golden,
            cycles,
            _stratified_config(),
            journal_path=strat_journal,
        )
        with pytest.raises(JournalError, match="sampling='stratified'"):
            run_campaign(
                toy_workload,
                golden,
                cycles,
                uniform_config,
                journal_path=strat_journal,
                resume=True,
            )

    def test_telemetry_counters_surface(self):
        golden, cycles = _toy()
        tracer = telemetry.enable()
        try:
            campaign = run_campaign(
                toy_workload, golden, cycles, _stratified_config()
            )
            counters = dict(tracer.registry.snapshot()["counters"])
        finally:
            telemetry.disable()
        summary = campaign.sampling
        assert counters["campaign.sampling.rounds"] == summary.rounds
        assert counters["campaign.sampling.cells_converged"] == summary.cells_converged
        assert counters.get("campaign.sampling.draws_saved", 0) == summary.draws_saved()

    def test_invalid_configs_raise(self):
        golden, cycles = _toy()
        for bad in (
            dict(sampling="bogus"),
            dict(ci_width=0.0),
            dict(ci_width=1.5),
            dict(round_size=0),
            dict(max_injections=0),
        ):
            config = _stratified_config(**bad)
            with pytest.raises(ValueError):
                run_campaign(toy_workload, golden, cycles, config)

    def test_stratified_rates_pass_uniform_diff_gate(self):
        """A stratified campaign diffs cleanly against a uniform one.

        This is the library half of the ``repro report diff`` exit-0
        acceptance gate: reweighted stratified rates on the toy workload
        stay within the two-proportion z-test of a 400-injection uniform
        reference.  Both campaigns are seed-pinned, so this is a
        deterministic check, not a flaky statistical one.
        """
        from repro.forensics.report import diff_records
        from repro.forensics.store import build_record

        golden, cycles = _toy()
        uniform = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(
                n_injections=400,
                kind=RegKind.GPR,
                seed=11,
                workers=1,
                keep_sdc_outputs=False,
            ),
        )
        stratified = run_campaign(
            toy_workload,
            golden,
            cycles,
            _stratified_config(seed=12, ci_width=0.2, keep_sdc_outputs=False),
        )
        diff = diff_records(build_record(uniform), build_record(stratified))
        outcome_rows = [r for r in diff["rows"] if r["metric"].startswith("outcome:")]
        assert outcome_rows, "diff must always compare outcome rates"
        flagged = [r["metric"] for r in outcome_rows if r["flagged"]]
        assert not flagged, f"stratified rates diverged from uniform: {flagged}"

    def test_store_round_trips_sampling_block(self, tmp_path):
        from repro.forensics.store import CampaignStore, build_record

        golden, cycles = _toy()
        campaign = run_campaign(
            toy_workload, golden, cycles, _stratified_config(keep_sdc_outputs=False)
        )
        store = CampaignStore(tmp_path / "store")
        cid = store.put(build_record(campaign))
        record = store.get(cid)
        assert record["sampling"]["mode"] == "stratified"
        assert record["sampling"]["draws"] == campaign.sampling.total_draws
