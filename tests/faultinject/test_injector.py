"""Tests for the fault injector and injection plans."""

import numpy as np
import pytest

from repro.faultinject.injector import CensusProbe, FaultInjector, InjectionPlan, random_plan
from repro.faultinject.registers import FlipEffect, LivenessModel, RegKind, Role
from repro.runtime.context import Cell, ExecutionContext


def run_kernel(ctx: ExecutionContext, cells: dict[str, Cell], site="kern.loop", steps=10):
    """A tiny instrumented kernel: binds cells at 10 checkpoints."""
    for _ in range(steps):
        ctx.tick(100)
        window = ctx.window(site)
        if window is not None:
            for name, cell in cells.items():
                window.gpr_cell(name, cell, role=Role.DATA)
            ctx.checkpoint(window)


class TestInjectionPlan:
    def test_validates_register(self):
        with pytest.raises(ValueError):
            InjectionPlan(0, RegKind.GPR, register=32, bit=0)

    def test_validates_bit(self):
        with pytest.raises(ValueError):
            InjectionPlan(0, RegKind.GPR, register=0, bit=64)

    def test_validates_cycle(self):
        with pytest.raises(ValueError):
            InjectionPlan(-1, RegKind.GPR, register=0, bit=0)

    def test_random_plan_in_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            plan = random_plan(rng, 10_000, RegKind.FPR)
            assert 0 <= plan.target_cycle < 10_000
            assert 0 <= plan.register < 32
            assert 0 <= plan.bit < 64
            assert plan.kind is RegKind.FPR

    def test_random_plan_rejects_empty_run(self):
        with pytest.raises(ValueError):
            random_plan(np.random.default_rng(0), 0, RegKind.GPR)


class TestFiring:
    def test_fires_at_first_checkpoint_after_target(self):
        plan = InjectionPlan(target_cycle=450, kind=RegKind.GPR, register=0, bit=0)
        injector = FaultInjector(plan)
        ctx = ExecutionContext(injector=injector)
        cell = Cell(100)
        run_kernel(ctx, {"x": cell})
        assert injector.record.fired
        assert injector.record.fired_cycle == 500  # first checkpoint >= 450

    def test_flips_the_bound_cell(self):
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=3)
        injector = FaultInjector(plan)
        ctx = ExecutionContext(injector=injector)
        cell = Cell(0)
        run_kernel(ctx, {"x": cell})
        assert cell.value == 8
        assert injector.record.effect is FlipEffect.APPLIED
        assert injector.record.binding_name == "x"

    def test_empty_slot_is_dead(self):
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=31, bit=0)
        injector = FaultInjector(plan)
        ctx = ExecutionContext(injector=injector)
        cell = Cell(0)
        run_kernel(ctx, {"x": cell})  # only slot 0 gets written
        assert injector.record.effect is FlipEffect.DEAD_EMPTY
        assert cell.value == 0

    def test_stale_slot_is_dead(self):
        plan = InjectionPlan(target_cycle=5_000, kind=RegKind.GPR, register=0, bit=0)
        injector = FaultInjector(plan, liveness=LivenessModel(gpr_data_ttl=50))
        ctx = ExecutionContext(injector=injector)
        early = Cell(7)
        run_kernel(ctx, {"x": early}, steps=5)  # bindings end at cycle 500
        # A later kernel binds a different name into a different slot.
        run_kernel(ctx, {"y": Cell(1)}, site="kern.other", steps=50)
        assert injector.record.fired
        assert injector.record.effect is FlipEffect.DEAD_STALE
        assert early.value == 7

    def test_stops_observing_after_fire(self):
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=0)
        injector = FaultInjector(plan)
        ctx = ExecutionContext(injector=injector)
        run_kernel(ctx, {"x": Cell(0)})
        assert not injector.observing
        assert ctx.window("kern.loop") is None

    def test_never_fires_when_target_beyond_run(self):
        plan = InjectionPlan(target_cycle=10**9, kind=RegKind.GPR, register=0, bit=0)
        injector = FaultInjector(plan)
        ctx = ExecutionContext(injector=injector)
        run_kernel(ctx, {"x": Cell(0)})
        assert not injector.record.fired


class TestSiteFilter:
    def test_waits_for_matching_site(self):
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=0)
        injector = FaultInjector(plan, site_filter="target")
        ctx = ExecutionContext(injector=injector)
        run_kernel(ctx, {"x": Cell(0)}, site="other.site", steps=3)
        assert not injector.record.fired
        run_kernel(ctx, {"x": Cell(0)}, site="target.site", steps=1)
        assert injector.record.fired
        assert injector.record.site == "target.site"

    def test_in_study_requires_matching_binding(self):
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=0)
        injector = FaultInjector(plan, site_filter="target")
        ctx = ExecutionContext(injector=injector)
        # Slot 0 is owned by the other site's binding.
        run_kernel(ctx, {"other_name": Cell(0)}, site="other.site", steps=3)
        run_kernel(ctx, {"target_name": Cell(0)}, site="target.site", steps=1)
        assert injector.record.fired
        # Slot 0 holds other.site's value -> excluded from the study.
        assert not injector.record.in_study


class TestCensusProbe:
    def test_collects_occupancy(self):
        probe = CensusProbe()
        ctx = ExecutionContext(injector=probe)
        run_kernel(ctx, {"a": Cell(0), "b": Cell(1)})
        assert probe.census.samples == 10
        assert probe.census.live_slots_total > 0
        assert probe.census.live_fraction(RegKind.GPR) > 0
