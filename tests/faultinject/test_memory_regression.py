"""Memory-regression guard: ``keep_sdc_outputs=False`` retains no payloads.

Large campaigns switch SDC-output retention off to bound memory; the
contract is that this changes *only* the stored payloads — every count,
rate series, histogram and fired tally must match a retention-on run
bit for bit, and no result object may keep a corrupted-output array
alive anywhere (serial or parallel path).
"""

from __future__ import annotations

import numpy as np

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind

from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload


def _run(keep: bool, workers: int = 1):
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    return run_campaign(
        toy_workload,
        golden,
        cycles,
        CampaignConfig(
            n_injections=80,
            kind=RegKind.GPR,
            seed=0,
            keep_sdc_outputs=keep,
            workers=workers,
        ),
        spec=spec if workers > 1 else None,
    )


class TestKeepSdcOutputsOff:
    def test_no_payload_survives_serial(self):
        campaign = _run(keep=False)
        assert all(r.output is None for r in campaign.results)
        assert campaign.sdc_results, "campaign must still classify SDC runs"
        assert all(r.output is None for r in campaign.sdc_results)

    def test_no_payload_survives_parallel(self):
        campaign = _run(keep=False, workers=3)
        assert all(r.output is None for r in campaign.results)

    def test_statistics_identical_to_retention_on(self):
        kept = _run(keep=True)
        dropped = _run(keep=False)
        assert dropped.counts == kept.counts
        assert dropped.fired == kept.fired
        assert dropped.fired_counts() == kept.fired_counts()
        assert dropped.running == kept.running
        assert np.array_equal(dropped.register_histogram, kept.register_histogram)
        assert np.array_equal(dropped.bit_histogram, kept.bit_histogram)
        # Retention-on keeps real payloads — proves the workload did SDC.
        assert any(r.output is not None for r in kept.sdc_results)
        # Same runs are SDC in both; only the payloads differ.
        assert [r.plan for r in dropped.sdc_results] == [r.plan for r in kept.sdc_results]

    def test_fired_counts_match_across_retention(self):
        kept = _run(keep=True, workers=2)
        dropped = _run(keep=False, workers=2)
        assert dropped.fired_counts() == kept.fired_counts()
        assert dropped.fired_counts().total == sum(
            1 for r in kept.results if r.record.fired and r.record.in_study
        )
