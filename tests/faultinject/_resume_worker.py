"""Subprocess helper for the kill-mid-campaign resume test.

Runs a small deterministic toy campaign with a checkpoint journal and
writes the final outcome counts as JSON.  The parent test launches this
script, SIGKILLs it mid-run (the injections are artificially slowed so
at least one — but not every — chunk is journaled before the kill),
then reruns it with ``resume`` and compares against an uninterrupted
``reference`` run.

Usage::

    python -m tests.faultinject._resume_worker run      JOURNAL OUT [delay_s]
    python -m tests.faultinject._resume_worker resume   JOURNAL OUT
    python -m tests.faultinject._resume_worker reference JOURNAL_IGNORED OUT

The ``strat-run`` / ``strat-resume`` / ``strat-reference`` modes run
the same protocol with an adaptive stratified campaign (schema-v3
round-granularity journal) instead of a uniform chunked one.

When the ``REPRO_STATUS`` environment variable names a path, the run is
wrapped in ``observe_campaign`` exactly as the CLI would wrap it — the
kill-resume test uses that to prove the status snapshot is crash-safe
(always a complete, parseable JSON document, even around a SIGKILL).
"""

from __future__ import annotations

import contextlib
import json
import sys
import time

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.registers import RegKind
from repro.observe.session import observe_campaign, resolve_status_path
from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload

N_INJECTIONS = 24
SEED = 5


def _campaign_json(campaign) -> dict:
    payload = {
        "counts": {
            "masked": campaign.counts.masked,
            "sdc": campaign.counts.sdc,
            "crash_segv": campaign.counts.crash_segv,
            "crash_abort": campaign.counts.crash_abort,
            "hang": campaign.counts.hang,
        },
        "running_checkpoints": campaign.running.checkpoints,
        "running_rates": campaign.running.rates,
        "register_histogram": campaign.register_histogram.tolist(),
        "bit_histogram": campaign.bit_histogram.tolist(),
        "outcomes": [result.outcome.value for result in campaign.results],
        "cycles": [result.cycles for result in campaign.results],
    }
    if campaign.sampling is not None:
        payload["sampling"] = campaign.sampling.to_dict()
    return payload


def _config(stratified: bool) -> CampaignConfig:
    if stratified:
        # Coarse enough to converge in a handful of rounds on the toy
        # workload, with a hard budget so the helper can never run away.
        return CampaignConfig(
            n_injections=1,
            kind=RegKind.GPR,
            seed=SEED,
            workers=1,
            sampling="stratified",
            ci_width=0.3,
            round_size=4,
            strata=(2, 2, 2),
            max_injections=400,
        )
    return CampaignConfig(n_injections=N_INJECTIONS, kind=RegKind.GPR, seed=SEED, workers=1)


def main(argv: list[str]) -> int:
    mode, journal, out = argv[0], argv[1], argv[2]
    delay_s = float(argv[3]) if len(argv) > 3 else 0.0
    _, golden, golden_cycles = ToyWorkloadSpec().build()

    def workload(ctx):
        if delay_s:
            # Slow each injection down so the parent can kill this
            # process after the first journaled chunk but before the end.
            time.sleep(delay_s)
        return toy_workload(ctx)

    stratified = mode.startswith("strat-")
    action = mode.removeprefix("strat-")
    config = _config(stratified)
    status_path = resolve_status_path(None)
    observe_cm = (
        observe_campaign(status_path)
        if status_path is not None
        else contextlib.nullcontext()
    )
    with observe_cm:
        campaign = run_campaign(
            workload,
            golden,
            golden_cycles,
            config,
            journal_path=None if action == "reference" else journal,
            resume=action == "resume",
        )
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(_campaign_json(campaign), handle)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
