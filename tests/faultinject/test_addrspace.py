"""Tests for the simulated address space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinject.addrspace import HEAP_BASE, HEAP_SPAN, PAGE_SIZE, AddressSpace
from repro.runtime.errors import SegmentationFault


class TestAllocation:
    def test_ensure_is_idempotent(self):
        space = AddressSpace(seed=0)
        arr = np.zeros(100, dtype=np.uint8)
        assert space.ensure(arr) == space.ensure(arr)
        assert len(space) == 1

    def test_bases_page_aligned(self):
        space = AddressSpace(seed=1)
        for size in (1, 100, 5000):
            base = space.ensure(np.zeros(size, dtype=np.uint8))
            assert base % PAGE_SIZE == 0

    def test_bases_inside_heap(self):
        space = AddressSpace(seed=2)
        base = space.ensure(np.zeros(10, dtype=np.uint8))
        assert HEAP_BASE <= base < HEAP_BASE + HEAP_SPAN

    def test_allocations_do_not_overlap(self):
        space = AddressSpace(seed=3)
        arrays = [np.zeros(3000, dtype=np.uint8) for _ in range(50)]
        spans = sorted((space.ensure(arr), arr.nbytes) for arr in arrays)
        for (base_a, len_a), (base_b, _len_b) in zip(spans, spans[1:]):
            assert base_a + len_a <= base_b

    def test_rejects_non_arrays(self):
        with pytest.raises(TypeError):
            AddressSpace().ensure([1, 2, 3])

    def test_rejects_non_contiguous(self):
        arr = np.zeros((10, 10), dtype=np.uint8)[:, ::2]
        with pytest.raises(ValueError):
            AddressSpace().ensure(arr)

    def test_mapped_bytes(self):
        space = AddressSpace(seed=4)
        space.ensure(np.zeros(100, dtype=np.uint8))
        space.ensure(np.zeros(50, dtype=np.uint8))
        assert space.mapped_bytes == 150


class TestResolve:
    def test_resolves_inside_allocation(self):
        space = AddressSpace(seed=5)
        arr = np.arange(64, dtype=np.uint8)
        base = space.ensure(arr)
        alloc, offset = space.resolve(base + 10)
        assert alloc.array is arr
        assert offset == 10

    def test_segfaults_outside(self):
        space = AddressSpace(seed=6)
        arr = np.zeros(64, dtype=np.uint8)
        base = space.ensure(arr)
        with pytest.raises(SegmentationFault):
            space.resolve(base + 64)
        with pytest.raises(SegmentationFault):
            space.resolve(base - 1)

    def test_segfaults_on_empty_space(self):
        with pytest.raises(SegmentationFault):
            AddressSpace().resolve(HEAP_BASE)

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=32, deadline=None)
    def test_single_bit_flips_mostly_segfault(self, bit):
        """High-bit pointer flips land outside the sparse heap."""
        space = AddressSpace(seed=7)
        arr = np.zeros(256, dtype=np.uint8)
        base = space.ensure(arr)
        flipped = base ^ (1 << bit)
        if bit >= 46:  # beyond the heap span: guaranteed unmapped
            with pytest.raises(SegmentationFault):
                space.resolve(flipped)


class TestByteWindow:
    def test_returns_flat_view(self):
        space = AddressSpace(seed=8)
        arr = np.arange(32, dtype=np.uint8)
        base = space.ensure(arr)
        view, offset = space.byte_window(base + 4, 8)
        assert offset == 4
        assert np.array_equal(view[4:12], np.arange(4, 12, dtype=np.uint8))

    def test_window_crossing_end_segfaults(self):
        space = AddressSpace(seed=9)
        arr = np.zeros(32, dtype=np.uint8)
        base = space.ensure(arr)
        with pytest.raises(SegmentationFault):
            space.byte_window(base + 30, 8)

    def test_view_aliases_memory(self):
        space = AddressSpace(seed=10)
        arr = np.zeros(16, dtype=np.uint8)
        base = space.ensure(arr)
        view, offset = space.byte_window(base, 16)
        view[offset + 3] = 99
        assert arr[3] == 99

    def test_float_array_window(self):
        space = AddressSpace(seed=11)
        arr = np.ones((4, 4), dtype=np.float64)
        base = space.ensure(arr)
        view, _offset = space.byte_window(base, arr.nbytes)
        assert view.size == arr.nbytes
