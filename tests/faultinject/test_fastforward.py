"""Golden-prefix fast-forward equivalence suite.

The contract under test (see ``src/repro/faultinject/fastforward.py``):
a fast-forwarded campaign is **bit-identical** to a full one — same
outcome sequence, crash/hang kinds, cycle counts, SDC payloads and
divergence records — at any worker count, with probes on, and across a
journal interrupt/resume.  Plus the snapshot-restore property: restoring
any frame boundary under a never-firing injector reproduces the golden
run exactly.
"""

from __future__ import annotations

import os
from unittest import mock

import numpy as np
import pytest

from repro import telemetry
from repro.analysis.experiments import TINY, input_stream, vs_workload
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.injector import FaultInjector, InjectionPlan
from repro.faultinject.journal import (
    ABORT_AFTER_ENV,
    CampaignInterrupted,
    JournalError,
    serialize_result,
)
from repro.faultinject.monitor import FaultMonitor
from repro.faultinject.outcomes import HangKind, Outcome
from repro.faultinject.parallel import VSWorkloadSpec
from repro.faultinject.registers import RegKind
from repro.runtime.context import ExecutionContext
from repro.summarize.approximations import config_for
from repro.summarize.golden import golden_fast_forward, golden_run
from tests.faultinject.test_parallel import _campaigns_equal


@pytest.fixture(scope="module")
def vs():
    """Shared tiny VS workload: (stream, config, golden, workload, spec)."""
    stream = input_stream("input1", TINY)
    config = config_for("VS")
    golden = golden_run(stream, config)
    spec = VSWorkloadSpec.for_stream(stream, config)
    assert spec is not None
    return stream, config, golden, vs_workload(stream, config), spec


def _config(**overrides) -> CampaignConfig:
    defaults = dict(n_injections=16, kind=RegKind.GPR, seed=8)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _assert_identical(first, second) -> None:
    """Bit-exact equality, down to serialized records (incl. divergence)."""
    _campaigns_equal(first, second)
    for a, b in zip(first.results, second.results):
        assert serialize_result(a) == serialize_result(b)


class TestCampaignEquivalence:
    def test_serial_all_outcome_classes(self, vs):
        stream, config, golden, workload, spec = vs
        full = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(fast_forward=False),
            spec=spec,
        )
        fast = run_campaign(
            workload, golden.output, golden.total_cycles, _config(), spec=spec
        )
        outcomes = {r.outcome for r in full.results}
        assert {Outcome.MASKED, Outcome.SDC, Outcome.CRASH} <= outcomes
        _assert_identical(full, fast)

    def test_parallel_matches_full_serial(self, vs):
        stream, config, golden, workload, spec = vs
        full_serial = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=12, seed=10, fast_forward=False),
            spec=spec,
        )
        fast_parallel = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=12, seed=10, workers=3),
            spec=spec,
        )
        _assert_identical(full_serial, fast_parallel)

    def test_probed_divergence_records_identical(self, vs):
        stream, config, golden, workload, spec = vs
        full = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=10, probe=True, fast_forward=False),
            spec=spec,
        )
        fast = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=10, probe=True),
            spec=spec,
        )
        assert any(
            r.divergence is not None and r.divergence.first_divergence
            for r in full.results
        )
        _assert_identical(full, fast)


class TestHangEquivalence:
    """A directed control-register flip that produces a genuine HANG.

    Natural uniform draws on the tiny workload never hang (RANSAC
    converges before its budget), so the plan is aimed at a live
    ``vision.ransac.hypotheses`` checkpoint: flipping bit 63 of
    ``ransac_iter`` drives the iteration counter hugely negative and the
    hypothesis loop burns simulated cycles until the watchdog trips.
    """

    class _CheckpointLog:
        observing = True

        def __init__(self) -> None:
            self.events: list[tuple[str, int]] = []

        def visit(self, ctx, window) -> None:
            self.events.append((window.site, ctx.cycles))

    def _hang_plan(self, workload, fast_forward) -> InjectionPlan:
        log = self._CheckpointLog()
        workload(ExecutionContext(injector=log))
        hypothesis_cycles = [
            cycle for site, cycle in log.events if site == "vision.ransac.hypotheses"
        ]
        assert hypothesis_cycles, "tiny workload must reach RANSAC"
        target = hypothesis_cycles[len(hypothesis_cycles) // 2]
        # The slot ransac_iter occupies is decided by the register file's
        # first-bind round-robin; read it off the captured tape rather
        # than hard-coding an allocation-order-dependent number.
        assigned = fast_forward.tape.boundaries[-1].regfile[0]
        register = assigned[(RegKind.GPR, "vision.ransac.hypotheses", "ransac_iter")]
        return InjectionPlan(
            target_cycle=target, kind=RegKind.GPR, register=register, bit=63
        )

    def test_hang_outcome_identical(self, vs):
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        assert fast_forward is not None
        plan = self._hang_plan(workload, fast_forward)
        assert fast_forward.boundary_for(plan.target_cycle) is not None

        full = FaultMonitor(workload, golden.output, golden.total_cycles)
        fast = FaultMonitor(
            workload, golden.output, golden.total_cycles, fast_forward=fast_forward
        )
        full_result = full.run_injected(plan, np.random.default_rng(123))
        fast_result = fast.run_injected(plan, np.random.default_rng(123))
        assert full_result.outcome is Outcome.HANG
        assert full_result.hang_kind is HangKind.SIMULATED
        assert serialize_result(full_result) == serialize_result(fast_result)


class TestJournalInterplay:
    def test_interrupt_then_resume_matches_full(self, vs, tmp_path):
        stream, config, golden, workload, spec = vs
        reference = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(fast_forward=False),
            spec=spec,
        )
        journal = tmp_path / "ff.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(
                    workload,
                    golden.output,
                    golden.total_cycles,
                    _config(workers=3),
                    spec=spec,
                    journal_path=journal,
                )
        resumed = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(workers=3),
            spec=spec,
            journal_path=journal,
            resume=True,
        )
        _assert_identical(reference, resumed)

    def test_mixed_mode_resume_rejected(self, vs, tmp_path):
        stream, config, golden, workload, spec = vs
        journal = tmp_path / "ff.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(
                    workload,
                    golden.output,
                    golden.total_cycles,
                    _config(n_injections=8),
                    spec=spec,
                    journal_path=journal,
                )
        with pytest.raises(JournalError, match="different campaign"):
            run_campaign(
                workload,
                golden.output,
                golden.total_cycles,
                _config(n_injections=8, fast_forward=False),
                spec=spec,
                journal_path=journal,
                resume=True,
            )


class TestSnapshotRestore:
    def test_every_boundary_reproduces_golden_run(self, vs):
        """Restoring any boundary under a never-firing injector must
        complete the run with the golden output and the golden cycle
        count — the snapshot captured the frame-boundary state exactly.
        """
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        assert fast_forward is not None
        tape = fast_forward.tape
        assert len(tape.boundaries) >= 2

        never = tape.golden_cycles * 10
        for snapshot in tape.boundaries[1:]:
            plan = InjectionPlan(
                target_cycle=never, kind=RegKind.GPR, register=0, bit=0
            )
            injector = FaultInjector(plan, rng=np.random.default_rng(0))
            ctx = ExecutionContext(
                injector=injector, watchdog_cycles=tape.golden_cycles * 6
            )
            output = fast_forward.resume(ctx, snapshot)
            assert not injector.record.fired
            assert ctx.cycles == tape.golden_cycles
            assert np.array_equal(output, golden.output)

    def test_boundary_lookup_is_strictly_before(self, vs):
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        cycles = fast_forward.tape.boundary_cycles
        assert fast_forward.boundary_for(0) is None
        assert fast_forward.boundary_for(cycles[1]) is None
        assert fast_forward.boundary_for(cycles[1] + 1).cycles == cycles[1]
        # A target exactly on a boundary resolves to the previous one.
        last = fast_forward.boundary_for(cycles[-1])
        assert last is not None and last.cycles == cycles[-2]


class TestTelemetryCounters:
    def test_fastforward_counters_surface(self, vs):
        stream, config, golden, workload, spec = vs
        tracer = telemetry.enable()
        try:
            run_campaign(
                workload,
                golden.output,
                golden.total_cycles,
                _config(n_injections=8),
                spec=spec,
            )
            registry = tracer.registry
        finally:
            telemetry.disable()
        hits = registry.counter("campaign.fastforward.hits")
        full_runs = registry.counter("campaign.fastforward.full_runs")
        assert hits + full_runs == 8
        assert hits >= 1
        assert registry.counter("campaign.fastforward.skipped_cycles") > 0
