"""Tests for the fault monitor and campaign runner on a controllable workload."""

import numpy as np
import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.monitor import FaultMonitor
from repro.faultinject.outcomes import CrashKind, Outcome
from repro.faultinject.registers import RegKind, Role
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import SegmentationFault


def toy_workload(ctx: ExecutionContext) -> np.ndarray:
    """A tiny workload with data, control and pointer-like registers.

    Computes a deterministic 8x8 image; corrupting its registers can
    mask, corrupt the output, crash, or hang.
    """
    out = np.zeros((8, 8), dtype=np.uint8)
    row = Cell(0)
    end = Cell(8)
    while row.value < end.value:
        ctx.tick(1000)
        window = ctx.window("toy.row")
        if window is not None:
            window.gpr_cell("row", row, role=Role.CONTROL)
            window.gpr_cell("end", end, role=Role.CONTROL)
            window.gpr_array("out_px", out)
            ctx.checkpoint(window)
        r = int(row.value)
        if r < 0 or r >= 8:
            raise SegmentationFault(r, "row out of range")
        out[r, :] = (np.arange(8) + r) % 251
        row.value = r + 1
    return out


@pytest.fixture()
def golden():
    ctx = ExecutionContext()
    output = toy_workload(ctx)
    return output, ctx.cycles


class TestFaultMonitor:
    def test_masked_when_flip_never_fires(self, golden):
        output, cycles = golden
        monitor = FaultMonitor(toy_workload, output, cycles)
        # Register 20 is never bound in the toy workload.
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=20, bit=0)
        result = monitor.run_injected(plan, np.random.default_rng(0))
        assert result.outcome is Outcome.MASKED

    def test_sdc_on_pixel_flip(self, golden):
        output, cycles = golden
        monitor = FaultMonitor(toy_workload, output, cycles)
        # Slot 2 holds out_px (round-robin order row=0, end=1, out_px=2).
        # Fire late so the corrupted pixel is not overwritten by the
        # remaining row writes.
        plan = InjectionPlan(target_cycle=7500, kind=RegKind.GPR, register=2, bit=7)
        result = monitor.run_injected(plan, np.random.default_rng(1))
        assert result.outcome is Outcome.SDC
        assert result.output is not None
        assert not np.array_equal(result.output, output)

    def test_crash_on_control_high_bit(self, golden):
        output, cycles = golden
        monitor = FaultMonitor(toy_workload, output, cycles)
        # Flip the sign bit of the row counter -> negative -> segfault.
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=63)
        result = monitor.run_injected(plan, np.random.default_rng(2))
        assert result.outcome is Outcome.CRASH
        assert result.crash_kind is CrashKind.SEGV

    def test_hang_on_inflated_bound(self, golden):
        output, cycles = golden
        monitor = FaultMonitor(toy_workload, output, cycles, hang_factor=4.0)
        # Inflate 'end' (slot 1); the loop re-reads it, and rows beyond 8
        # would segfault -- but flipping the row counter backwards loops.
        plan = InjectionPlan(target_cycle=4000, kind=RegKind.GPR, register=0, bit=1)
        result = monitor.run_injected(plan, np.random.default_rng(3))
        # Flipping bit 1 of row=4 gives row=6: rows 4,5 skipped -> SDC,
        # or row jumps backwards -> extra work -> masked.  Either is a
        # legal outcome; what matters is that the monitor classifies it.
        assert result.outcome in (Outcome.SDC, Outcome.MASKED, Outcome.HANG)

    def test_masked_when_truncated(self, golden):
        output, cycles = golden
        monitor = FaultMonitor(toy_workload, output, cycles)
        # out_px is uint8: bit 30 is truncated by the store.
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=2, bit=30)
        result = monitor.run_injected(plan, np.random.default_rng(4))
        assert result.outcome is Outcome.MASKED

    def test_requires_positive_golden_cycles(self, golden):
        output, _ = golden
        with pytest.raises(ValueError):
            FaultMonitor(toy_workload, output, golden_cycles=0)

    def test_sdc_output_not_kept_when_disabled(self, golden):
        output, cycles = golden
        monitor = FaultMonitor(toy_workload, output, cycles, keep_sdc_outputs=False)
        plan = InjectionPlan(target_cycle=7500, kind=RegKind.GPR, register=2, bit=7)
        result = monitor.run_injected(plan, np.random.default_rng(1))
        assert result.outcome is Outcome.SDC
        assert result.output is None


class TestCampaign:
    def test_deterministic_given_seed(self, golden):
        output, cycles = golden
        config = CampaignConfig(n_injections=40, kind=RegKind.GPR, seed=9)
        first = run_campaign(toy_workload, output, cycles, config)
        second = run_campaign(toy_workload, output, cycles, config)
        assert first.counts == second.counts
        assert np.array_equal(first.register_histogram, second.register_histogram)

    def test_produces_mixed_outcomes(self, golden):
        output, cycles = golden
        config = CampaignConfig(n_injections=150, kind=RegKind.GPR, seed=3)
        campaign = run_campaign(toy_workload, output, cycles, config)
        assert campaign.counts.total == 150
        assert campaign.counts.masked > 0
        assert campaign.counts.crash > 0

    def test_register_histogram_covers_file(self, golden):
        output, cycles = golden
        config = CampaignConfig(n_injections=200, kind=RegKind.GPR, seed=5)
        campaign = run_campaign(toy_workload, output, cycles, config)
        assert campaign.register_histogram.sum() == 200
        assert (campaign.register_histogram > 0).sum() > 25  # near-uniform coverage

    def test_running_rates_length(self, golden):
        output, cycles = golden
        config = CampaignConfig(n_injections=30, kind=RegKind.GPR, seed=1)
        campaign = run_campaign(toy_workload, output, cycles, config)
        assert campaign.running.checkpoints == list(range(1, 31))

    def test_sdc_results_have_outputs(self, golden):
        output, cycles = golden
        config = CampaignConfig(n_injections=150, kind=RegKind.GPR, seed=3)
        campaign = run_campaign(toy_workload, output, cycles, config)
        for result in campaign.sdc_results:
            assert result.output is not None
