"""Tests for the parallel campaign engine.

The contract under test: for a fixed seed, ``run_campaign`` with any
worker count produces a :class:`CampaignResult` bit-identical to the
serial path — same outcome sequence, running-rate series, histograms
and SDC outputs — and worker failures surface as clean errors rather
than hangs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from unittest import mock

import numpy as np
import pytest

from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.parallel import (
    VSWorkloadSpec,
    chunk_indexed_plans,
    default_workers,
    resolve_workers,
)
from repro.faultinject.registers import RegKind, Role
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import SegmentationFault


def toy_workload(ctx: ExecutionContext) -> np.ndarray:
    """Deterministic 8x8 workload whose registers can mask/corrupt/crash."""
    out = np.zeros((8, 8), dtype=np.uint8)
    row = Cell(0)
    end = Cell(8)
    while row.value < end.value:
        ctx.tick(1000)
        window = ctx.window("toy.row")
        if window is not None:
            window.gpr_cell("row", row, role=Role.CONTROL)
            window.gpr_cell("end", end, role=Role.CONTROL)
            window.gpr_array("out_px", out)
            ctx.checkpoint(window)
        r = int(row.value)
        if r < 0 or r >= 8:
            raise SegmentationFault(r, "row out of range")
        out[r, :] = (np.arange(8) + r) % 251
        row.value = r + 1
    return out


@dataclass(frozen=True)
class ToyWorkloadSpec:
    """Picklable spec for the toy workload (workers rebuild the golden)."""

    def build(self):
        ctx = ExecutionContext()
        golden = toy_workload(ctx)
        return toy_workload, golden, ctx.cycles


def _crashing_workload(ctx: ExecutionContext) -> np.ndarray:
    raise SystemError("simulated unclassifiable library bug")


@dataclass(frozen=True)
class CrashingSpec:
    """Spec whose workload dies with an exception no outcome class covers."""

    def build(self):
        golden = np.zeros((4, 4), dtype=np.uint8)
        return _crashing_workload, golden, 1000


@dataclass(frozen=True)
class BrokenBuildSpec:
    """Spec whose reconstruction itself fails in the worker."""

    def build(self):
        raise FileNotFoundError("pretend the input asset is missing")


def _campaigns_equal(first: CampaignResult, second: CampaignResult) -> None:
    assert first.counts == second.counts
    assert first.running == second.running
    assert first.fired == second.fired
    assert np.array_equal(first.register_histogram, second.register_histogram)
    assert np.array_equal(first.bit_histogram, second.bit_histogram)
    assert len(first.results) == len(second.results)
    for a, b in zip(first.results, second.results):
        assert a.plan == b.plan
        assert a.outcome == b.outcome
        assert a.crash_kind == b.crash_kind
        assert a.record.fired == b.record.fired
        assert a.record.in_study == b.record.in_study
        assert a.cycles == b.cycles
        assert (a.output is None) == (b.output is None)
        if a.output is not None:
            assert np.array_equal(a.output, b.output)


class TestToyEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        serial = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=9, workers=1),
        )
        parallel = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=9, workers=4),
            spec=spec,
        )
        _campaigns_equal(serial, parallel)

    def test_sdc_output_hashes_match(self):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        config = CampaignConfig(
            n_injections=80, kind=RegKind.GPR, seed=0, keep_sdc_outputs=True
        )
        serial = run_campaign(toy_workload, golden, cycles, config)
        parallel = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(
                n_injections=80, kind=RegKind.GPR, seed=0, keep_sdc_outputs=True, workers=3
            ),
            spec=spec,
        )
        serial_hashes = [
            hash(r.output.tobytes()) for r in serial.sdc_results if r.output is not None
        ]
        parallel_hashes = [
            hash(r.output.tobytes()) for r in parallel.sdc_results if r.output is not None
        ]
        assert serial_hashes and serial_hashes == parallel_hashes

    def test_without_spec_falls_back_to_serial(self):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        campaign = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(n_injections=10, kind=RegKind.GPR, seed=1, workers=8),
        )
        assert campaign.counts.total == 10


class TestVSEquivalence:
    def test_tiny_vs_campaign_identical_across_worker_counts(self):
        from repro.analysis.experiments import TINY, input_stream, vs_workload
        from repro.summarize.approximations import config_for
        from repro.summarize.golden import golden_run

        stream = input_stream("input1", TINY)
        config = config_for("VS")
        golden = golden_run(stream, config)
        spec = VSWorkloadSpec.for_stream(stream, config)
        assert spec is not None

        serial = run_campaign(
            vs_workload(stream, config),
            golden.output,
            golden.total_cycles,
            CampaignConfig(n_injections=6, kind=RegKind.GPR, seed=21, workers=1),
        )
        parallel = run_campaign(
            vs_workload(stream, config),
            golden.output,
            golden.total_cycles,
            CampaignConfig(n_injections=6, kind=RegKind.GPR, seed=21, workers=4),
            spec=spec,
        )
        _campaigns_equal(serial, parallel)


class TestFailureSurfacing:
    def test_workload_bug_propagates_not_hangs(self):
        spec = CrashingSpec()
        with pytest.raises(SystemError, match="unclassifiable"):
            run_campaign(
                _crashing_workload,
                np.zeros((4, 4), dtype=np.uint8),
                1000,
                CampaignConfig(n_injections=8, kind=RegKind.GPR, seed=0, workers=2),
                spec=spec,
            )

    def test_broken_spec_build_propagates(self):
        spec = BrokenBuildSpec()
        with pytest.raises(FileNotFoundError):
            run_campaign(
                toy_workload,
                np.zeros((8, 8), dtype=np.uint8),
                8000,
                CampaignConfig(n_injections=8, kind=RegKind.GPR, seed=0, workers=2),
                spec=spec,
            )


class TestWorkerResolution:
    def test_explicit_request_wins(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "7"}):
            assert resolve_workers(3) == 3

    def test_workers_clamped_to_planned_injections(self):
        """8 processes for a 3-injection campaign waste startup cost."""
        assert resolve_workers(8, max_useful=3) == 3
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "8"}):
            assert resolve_workers(None, max_useful=3) == 3

    def test_clamp_never_raises_workers(self):
        assert resolve_workers(2, max_useful=100) == 2
        assert resolve_workers(4, max_useful=4) == 4

    def test_clamp_does_not_hide_invalid_requests(self):
        with pytest.raises(ValueError):
            resolve_workers(0, max_useful=3)
        with pytest.raises(ValueError):
            resolve_workers(-2, max_useful=3)

    def test_degenerate_max_useful_ignored(self):
        # A 0-injection campaign still resolves a valid worker count.
        assert resolve_workers(4, max_useful=0) == 4
        assert resolve_workers(4, max_useful=None) == 4

    def test_env_override(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "5"}):
            assert resolve_workers(None) == 5
            assert default_workers() == 5

    def test_library_default_is_serial(self):
        env = {k: v for k, v in os.environ.items() if k != "REPRO_WORKERS"}
        with mock.patch.dict(os.environ, env, clear=True):
            assert resolve_workers(None) == 1
            assert default_workers() >= 1

    def test_garbage_env_rejected(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "lots"}):
            with pytest.raises(ValueError):
                resolve_workers(None)


class TestMeteredChunkTracerRestore:
    def test_mid_chunk_exception_restores_parent_tracer(self):
        """A chunk that dies mid-run must not leak its swapped-in tracer.

        Regression guard: ``run_injection_chunk_metered`` swaps a fresh
        tracer in for the chunk's duration; if the chunk raises, the
        parent's tracer must still be restored (try/finally), otherwise
        every later stage in the process meters into a zombie registry.
        """
        from repro import telemetry
        from repro.faultinject.parallel import run_injection_chunk_metered

        parent_tracer = telemetry.enable()
        try:
            spec = CrashingSpec()
            _, golden, cycles = spec.build()
            config = CampaignConfig(n_injections=2, kind=RegKind.GPR, seed=0)
            plans = [
                InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=0)
            ]
            with pytest.raises(SystemError, match="unclassifiable"):
                run_injection_chunk_metered(spec, config, list(enumerate(plans)))
            assert telemetry.get_tracer() is parent_tracer
        finally:
            telemetry.disable()

    def test_successful_chunk_also_restores(self):
        from repro import telemetry
        from repro.faultinject.parallel import run_injection_chunk_metered

        parent_tracer = telemetry.enable()
        try:
            spec = ToyWorkloadSpec()
            config = CampaignConfig(n_injections=1, kind=RegKind.GPR, seed=0)
            plans = [
                InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=0)
            ]
            results, snapshot = run_injection_chunk_metered(
                spec, config, list(enumerate(plans))
            )
            assert len(results) == 1
            assert snapshot["counters"].get("campaign.runs") == 1
            assert telemetry.get_tracer() is parent_tracer
        finally:
            telemetry.disable()


class TestChunking:
    def test_chunks_preserve_order_and_cover_all(self):
        from repro.faultinject.injector import random_plan

        rng = np.random.default_rng(0)
        plans = [random_plan(rng, 1000, RegKind.GPR) for _ in range(23)]
        chunks = chunk_indexed_plans(plans, workers=4)
        flattened = [pair for chunk in chunks for pair in chunk]
        assert [index for index, _ in flattened] == list(range(23))
        assert [plan for _, plan in flattened] == plans

    def test_empty(self):
        assert chunk_indexed_plans([], workers=4) == []
