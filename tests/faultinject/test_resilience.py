"""Tests for the crash-safe execution engine: retry, degrade, watchdog.

Three failure families, one invariant: no infrastructure failure short
of killing the parent may change campaign results or abort the run.

* a worker SIGKILL'd mid-chunk (the OOM-killer shape) retries its chunk
  and the campaign finishes bit-identically;
* a worker that *always* dies exhausts the retry budget and degrades to
  in-process serial execution — still bit-identical;
* a genuinely stalled workload (a real ``time.sleep``, not a simulated
  cycle overrun) is classified ``HANG``/``WATCHDOG`` by the wall-clock
  watchdog without aborting the campaign.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro import telemetry
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.outcomes import HangKind, Outcome
from repro.faultinject.parallel import RetryPolicy
from repro.faultinject.registers import RegKind
from repro.faultinject.watchdog import WatchdogExpired, WatchdogPolicy, call_with_deadline
from repro.runtime.errors import HangDetected
from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload

#: Fast backoff so failure-path tests don't sleep for real.
FAST_RETRY = RetryPolicy(max_retries=3, backoff_base_s=0.01, backoff_max_s=0.02)


def _results_equal(first, second) -> None:
    assert first.counts == second.counts
    assert first.running == second.running
    assert first.fired == second.fired
    assert np.array_equal(first.register_histogram, second.register_histogram)
    assert np.array_equal(first.bit_histogram, second.bit_histogram)
    for a, b in zip(first.results, second.results):
        assert a.plan == b.plan and a.outcome == b.outcome and a.cycles == b.cycles
        assert (a.output is None) == (b.output is None)
        if a.output is not None:
            assert np.array_equal(a.output, b.output)


@dataclass(frozen=True)
class KillOnceSpec:
    """Workload that SIGKILLs its worker once, then behaves normally.

    The sentinel file is the cross-process "already died" flag: the
    first worker to run an injection creates it and kills itself
    mid-chunk; every retry sees the sentinel and completes.
    """

    sentinel: str

    def build(self):
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        golden = toy_workload(ctx)
        sentinel = self.sentinel

        def workload(run_ctx):
            if not os.path.exists(sentinel):
                with open(sentinel, "w"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
            return toy_workload(run_ctx)

        return workload, golden, ctx.cycles


@dataclass(frozen=True)
class KillAlwaysSpec:
    """Workload that SIGKILLs every worker process, never the parent."""

    parent_pid: int

    def build(self):
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext()
        golden = toy_workload(ctx)
        parent_pid = self.parent_pid

        def workload(run_ctx):
            if os.getpid() != parent_pid:
                os.kill(os.getpid(), signal.SIGKILL)
            return toy_workload(run_ctx)

        return workload, golden, ctx.cycles


@pytest.fixture()
def toy():
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    return spec, golden, cycles


def _reference(golden, cycles, **overrides):
    config = CampaignConfig(n_injections=30, kind=RegKind.GPR, seed=5, workers=1)
    for key, value in overrides.items():
        setattr(config, key, value)
    return run_campaign(toy_workload, golden, cycles, config)


class TestChunkRetry:
    def test_sigkilled_worker_chunk_retries_bit_identically(self, toy, tmp_path):
        _, golden, cycles = toy
        reference = _reference(golden, cycles)
        campaign = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(
                n_injections=30, kind=RegKind.GPR, seed=5, workers=3, retry=FAST_RETRY
            ),
            spec=KillOnceSpec(str(tmp_path / "killed-once")),
        )
        _results_equal(reference, campaign)

    def test_retry_counter_emitted(self, toy, tmp_path):
        _, golden, cycles = toy
        tracer = telemetry.enable()
        before = tracer.registry.counter("campaign.retries")
        try:
            run_campaign(
                toy_workload,
                golden,
                cycles,
                CampaignConfig(
                    n_injections=30, kind=RegKind.GPR, seed=5, workers=3, retry=FAST_RETRY
                ),
                spec=KillOnceSpec(str(tmp_path / "killed-once")),
            )
            assert tracer.registry.counter("campaign.retries") > before
        finally:
            telemetry.disable()

    def test_backoff_delays_are_bounded_and_jittered(self):
        import random

        policy = RetryPolicy(backoff_base_s=0.5, backoff_max_s=2.0, jitter_frac=0.25)
        rng = random.Random(0)
        delays = [policy.delay_s(attempt, rng) for attempt in (1, 2, 3, 4)]
        # Exponential up to the cap, each within [base, base * (1+jitter)].
        for delay, base in zip(delays, (0.5, 1.0, 2.0, 2.0)):
            assert base <= delay <= base * 1.25


class TestDegradedFallback:
    def test_always_dying_workers_degrade_to_serial_bit_identically(self, toy):
        _, golden, cycles = toy
        reference = _reference(golden, cycles)
        campaign = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(
                n_injections=30,
                kind=RegKind.GPR,
                seed=5,
                workers=3,
                retry=RetryPolicy(max_retries=2, backoff_base_s=0.01, backoff_max_s=0.02),
            ),
            spec=KillAlwaysSpec(os.getpid()),
        )
        _results_equal(reference, campaign)

    def test_degraded_counter_emitted(self, toy):
        _, golden, cycles = toy
        tracer = telemetry.enable()
        before = tracer.registry.counter("campaign.degraded")
        try:
            run_campaign(
                toy_workload,
                golden,
                cycles,
                CampaignConfig(
                    n_injections=30,
                    kind=RegKind.GPR,
                    seed=5,
                    workers=3,
                    retry=RetryPolicy(max_retries=1, backoff_base_s=0.01, backoff_max_s=0.02),
                ),
                spec=KillAlwaysSpec(os.getpid()),
            )
            assert tracer.registry.counter("campaign.degraded") > before
        finally:
            telemetry.disable()

    def test_workload_bugs_still_propagate_without_retry(self, toy):
        """Only infrastructure failures retry; library bugs surface once."""
        from tests.faultinject.test_parallel import CrashingSpec, _crashing_workload

        with pytest.raises(SystemError, match="unclassifiable"):
            run_campaign(
                _crashing_workload,
                np.zeros((4, 4), dtype=np.uint8),
                1000,
                CampaignConfig(
                    n_injections=8, kind=RegKind.GPR, seed=0, workers=2, retry=FAST_RETRY
                ),
                spec=CrashingSpec(),
            )


class TestWallClockWatchdog:
    def test_call_with_deadline_passthrough(self):
        assert call_with_deadline(lambda: 42, None) == 42
        assert call_with_deadline(lambda: 42, 5.0) == 42

    def test_call_with_deadline_propagates_exceptions(self):
        with pytest.raises(ZeroDivisionError):
            call_with_deadline(lambda: 1 / 0, 5.0)

    def test_call_with_deadline_raises_on_stall(self):
        start = time.monotonic()
        with pytest.raises(WatchdogExpired):
            call_with_deadline(lambda: time.sleep(5.0), 0.05)
        assert time.monotonic() - start < 1.0  # did not wait the full sleep

    def test_real_stall_classified_hang_watchdog_without_abort(self):
        """A time.sleep stall becomes HANG/WATCHDOG; the campaign finishes."""

        def stalling_workload(ctx):
            time.sleep(1.5)
            return np.zeros((4, 4), dtype=np.uint8)

        campaign = run_campaign(
            stalling_workload,
            np.zeros((4, 4), dtype=np.uint8),
            1000,
            CampaignConfig(
                n_injections=2,
                kind=RegKind.GPR,
                seed=0,
                workers=1,
                watchdog=WatchdogPolicy(soft_deadline_s=0.1),
            ),
        )
        assert campaign.counts.total == 2
        assert campaign.counts.hang == 2
        for result in campaign.results:
            assert result.outcome is Outcome.HANG
            assert result.hang_kind is HangKind.WATCHDOG

    def test_simulated_hang_keeps_simulated_kind(self, toy):
        """The cycle-budget path stays distinct from the wall-clock path."""

        def cycle_hog(ctx):
            while True:
                ctx.tick(10_000)

        campaign = run_campaign(
            cycle_hog,
            np.zeros((4, 4), dtype=np.uint8),
            1000,
            CampaignConfig(n_injections=2, kind=RegKind.GPR, seed=0, workers=1),
        )
        for result in campaign.results:
            assert result.outcome is Outcome.HANG
            assert result.hang_kind is HangKind.SIMULATED

    def test_watchdog_hang_counter_emitted(self):
        def stalling_workload(ctx):
            time.sleep(1.5)
            return np.zeros((4, 4), dtype=np.uint8)

        tracer = telemetry.enable()
        before = tracer.registry.counter("campaign.watchdog_hangs")
        try:
            run_campaign(
                stalling_workload,
                np.zeros((4, 4), dtype=np.uint8),
                1000,
                CampaignConfig(
                    n_injections=1,
                    kind=RegKind.GPR,
                    seed=0,
                    workers=1,
                    watchdog=WatchdogPolicy(soft_deadline_s=0.1),
                ),
            )
            assert tracer.registry.counter("campaign.watchdog_hangs") == before + 1
        finally:
            telemetry.disable()

    def test_watchdog_does_not_change_healthy_results(self, toy):
        """Generous deadlines leave a healthy campaign bit-identical."""
        _, golden, cycles = toy
        reference = _reference(golden, cycles)
        watched = run_campaign(
            toy_workload,
            golden,
            cycles,
            CampaignConfig(
                n_injections=30,
                kind=RegKind.GPR,
                seed=5,
                workers=1,
                watchdog=WatchdogPolicy(soft_deadline_s=60.0),
            ),
        )
        assert reference.counts == watched.counts
        assert reference.running == watched.running

    def test_classify_watchdog_expired_as_hang(self):
        from repro.faultinject.outcomes import classify_exception, hang_kind_for

        outcome, crash_kind = classify_exception(WatchdogExpired(1.0, 0.5))
        assert outcome is Outcome.HANG and crash_kind is None
        assert hang_kind_for(WatchdogExpired(1.0, 0.5)) is HangKind.WATCHDOG
        assert hang_kind_for(HangDetected(10, 5)) is HangKind.SIMULATED
        assert hang_kind_for(ValueError()) is None


class TestWatchdogPolicy:
    def test_from_golden_applies_multiplier_and_floor(self):
        policy = WatchdogPolicy.from_golden(2.0, soft_factor=10.0, hard_factor=2.0)
        assert policy.soft_deadline_s == pytest.approx(20.0)
        assert policy.hard_deadline_s == pytest.approx(40.0)
        tiny = WatchdogPolicy.from_golden(0.0001)
        assert tiny.soft_deadline_s == WatchdogPolicy.MIN_DEADLINE_S

    def test_chunk_deadline_scales_with_size(self):
        policy = WatchdogPolicy(soft_deadline_s=1.0, hard_deadline_s=3.0)
        assert policy.chunk_deadline(5) == pytest.approx(15.0)
        assert WatchdogPolicy(soft_deadline_s=1.0).chunk_deadline(5) is None

    def test_negative_golden_rejected(self):
        with pytest.raises(ValueError):
            WatchdogPolicy.from_golden(-1.0)
