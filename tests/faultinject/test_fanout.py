"""Boundary fan-out suite: grouped dispatch, shared restores, golden tails.

The contract under test (see ``src/repro/faultinject/fastforward.py``
and ISSUE 6): a boundary-batched campaign — plans grouped by the frame
boundary they resume from, one materialized restore per group per
worker, per-run state cloned copy-on-write, golden tails synthesized
for re-converged runs — is **bit-identical** to ``--no-boundary-batch``
execution at any worker count, with probes on, and across a journal
interrupt/resume.  Plus the scheduler pieces: group partitioning edge
cases, chunk-bound edge cases, worker clamping to the group count, and
the per-boundary amortization section of ``repro trace summarize``.
"""

from __future__ import annotations

import os
from unittest import mock

import numpy as np
import pytest

from repro import telemetry
from repro.analysis.experiments import TINY, input_stream, vs_workload
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.journal import (
    ABORT_AFTER_ENV,
    CampaignInterrupted,
    JournalError,
    load_journal,
    serialize_result,
)
from repro.faultinject.monitor import FaultMonitor
from repro.faultinject.parallel import (
    VSWorkloadSpec,
    compute_chunk_bounds,
    group_plan_indices,
    resolve_workers,
)
from repro.faultinject.registers import RegKind
from repro.summarize.approximations import config_for
from repro.summarize.golden import clear_golden_cache, golden_fast_forward, golden_run
from repro.telemetry.export import render_summary, summarize_trace, write_trace
from tests.faultinject.test_parallel import _campaigns_equal


@pytest.fixture(scope="module")
def vs():
    """Shared tiny VS workload: (stream, config, golden, workload, spec)."""
    stream = input_stream("input1", TINY)
    config = config_for("VS")
    golden = golden_run(stream, config)
    spec = VSWorkloadSpec.for_stream(stream, config)
    assert spec is not None
    return stream, config, golden, vs_workload(stream, config), spec


def _config(**overrides) -> CampaignConfig:
    defaults = dict(n_injections=16, kind=RegKind.GPR, seed=8)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _assert_identical(first, second) -> None:
    """Bit-exact equality, down to serialized records (incl. divergence)."""
    _campaigns_equal(first, second)
    for a, b in zip(first.results, second.results):
        assert serialize_result(a) == serialize_result(b)


def _plan(cycle: int) -> InjectionPlan:
    return InjectionPlan(target_cycle=cycle, kind=RegKind.GPR, register=0, bit=0)


class TestGroupPartition:
    """group_plan_indices edge cases against a stub boundary lookup."""

    @staticmethod
    def _lookup(cycle: int) -> int | None:
        # Boundaries at cycles 100/200/300 (indices 1/2/3); targets at
        # or below 100 have no eligible boundary.
        if cycle <= 100:
            return None
        return min(cycle // 100, 3)

    def test_zero_plans(self):
        assert group_plan_indices(self._lookup, []) == []

    def test_all_plans_share_one_boundary(self):
        plans = [_plan(150), _plan(199), _plan(101)]
        assert group_plan_indices(self._lookup, plans) == [[0, 1, 2]]

    def test_no_eligible_boundary_shares_fallback_group(self):
        plans = [_plan(5), _plan(100), _plan(1)]
        assert group_plan_indices(self._lookup, plans) == [[0, 1, 2]]

    def test_groups_ordered_by_first_member_and_cover_all_plans(self):
        plans = [_plan(250), _plan(50), _plan(110), _plan(299), _plan(320)]
        groups = group_plan_indices(self._lookup, plans)
        assert groups == [[0, 3], [1], [2], [4]]
        covered = sorted(index for group in groups for index in group)
        assert covered == list(range(len(plans)))

    def test_real_tape_lookup_honours_strictly_before(self, vs):
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        assert fast_forward is not None
        cycles = fast_forward.tape.boundary_cycles
        # At or before the first skippable boundary: no eligible group.
        plans = [_plan(1), _plan(cycles[1]), _plan(cycles[1] + 1)]
        groups = group_plan_indices(fast_forward.boundary_index_for, plans)
        assert groups == [[0, 1], [2]]
        assert fast_forward.boundary_index_for(plans[2].target_cycle) == 1


class TestChunkBoundEdges:
    def test_zero_plans_is_empty(self):
        assert compute_chunk_bounds(0, 4) == []

    def test_negative_plans_is_empty(self):
        assert compute_chunk_bounds(-3, 4) == []

    def test_fewer_plans_than_workers_yields_nonempty_chunks(self):
        bounds = compute_chunk_bounds(3, 8)
        assert bounds[0][0] == 0 and bounds[-1][1] == 3
        assert all(stop > start for start, stop in bounds)
        assert len(bounds) == 3

    def test_single_plan_single_chunk(self):
        assert compute_chunk_bounds(1, 8) == [(0, 1)]


class TestWorkerClamp:
    def test_workers_clamped_to_group_count(self):
        # The boundary-batched scheduler clamps max_useful to
        # min(n_plans, n_groups): more workers than groups only buys
        # idle pool startup.
        assert resolve_workers(8, max_useful=min(12, 3)) == 3

    def test_explicit_request_still_validated_before_clamp(self):
        with pytest.raises(ValueError):
            resolve_workers(0, max_useful=3)

    def test_campaign_clamps_pool_to_groups(self, vs):
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        from repro.faultinject.campaign import draw_plans

        plans = draw_plans(_config(n_injections=12, seed=10), golden.total_cycles)
        groups = group_plan_indices(fast_forward.boundary_index_for, plans)
        clamped = resolve_workers(64, max_useful=min(len(plans), max(1, len(groups))))
        assert clamped == len(groups) <= len(plans)


class TestBatchedEquivalence:
    def test_serial_batched_matches_unbatched(self, vs):
        stream, config, golden, workload, spec = vs
        unbatched = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(boundary_batch=False),
            spec=spec,
        )
        batched = run_campaign(
            workload, golden.output, golden.total_cycles, _config(), spec=spec
        )
        _assert_identical(unbatched, batched)

    def test_parallel_batched_matches_unbatched_serial(self, vs):
        stream, config, golden, workload, spec = vs
        unbatched = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=12, seed=10, boundary_batch=False),
            spec=spec,
        )
        batched = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=12, seed=10, workers=3),
            spec=spec,
        )
        _assert_identical(unbatched, batched)

    def test_probed_divergence_records_identical(self, vs):
        stream, config, golden, workload, spec = vs
        unbatched = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=10, probe=True, boundary_batch=False),
            spec=spec,
        )
        batched = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(n_injections=10, probe=True),
            spec=spec,
        )
        _assert_identical(unbatched, batched)

    def test_pre_first_boundary_plan_runs_full_and_matches(self, vs):
        """A target before the first skippable boundary cannot resume —
        the batched monitor must fall back to a full run and still be
        bit-identical to a no-fast-forward monitor."""
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        plan = _plan(1)
        assert fast_forward.boundary_index_for(plan.target_cycle) is None
        batched = FaultMonitor(
            workload, golden.output, golden.total_cycles, fast_forward=fast_forward
        )
        plain = FaultMonitor(workload, golden.output, golden.total_cycles)
        a = batched.run_injected(plan, np.random.default_rng(7))
        b = plain.run_injected(plan, np.random.default_rng(7))
        assert serialize_result(a) == serialize_result(b)


class TestJournalInterplay:
    def test_interrupt_then_resume_under_batching(self, vs, tmp_path):
        stream, config, golden, workload, spec = vs
        reference = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(workers=3, boundary_batch=False),
            spec=spec,
        )
        journal = tmp_path / "fanout.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(
                    workload,
                    golden.output,
                    golden.total_cycles,
                    _config(workers=3),
                    spec=spec,
                    journal_path=journal,
                )
        resumed = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            _config(workers=3),
            spec=spec,
            journal_path=journal,
            resume=True,
        )
        _assert_identical(reference, resumed)

    def test_journal_checkpoints_at_group_granularity(self, vs, tmp_path):
        stream, config, golden, workload, spec = vs
        fast_forward = golden_fast_forward(stream, config)
        from repro.faultinject.campaign import draw_plans

        campaign_config = _config(n_injections=12, seed=10, workers=3)
        plans = draw_plans(campaign_config, golden.total_cycles)
        groups = group_plan_indices(fast_forward.boundary_index_for, plans)

        journal = tmp_path / "groups.jsonl"
        run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            campaign_config,
            spec=spec,
            journal_path=journal,
        )
        state = load_journal(journal)
        assert state.groups == groups
        assert state.chunk_bounds == []
        assert sorted(state.chunks) == list(range(len(groups)))
        for index, group in enumerate(groups):
            assert len(state.chunks[index]) == len(group)

    def test_mixed_mode_resume_rejected(self, vs, tmp_path):
        stream, config, golden, workload, spec = vs
        journal = tmp_path / "fanout.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(
                    workload,
                    golden.output,
                    golden.total_cycles,
                    _config(n_injections=8),
                    spec=spec,
                    journal_path=journal,
                )
        with pytest.raises(JournalError, match="different campaign"):
            run_campaign(
                workload,
                golden.output,
                golden.total_cycles,
                _config(n_injections=8, boundary_batch=False),
                spec=spec,
                journal_path=journal,
                resume=True,
            )


class TestTelemetry:
    def test_fanout_counters_surface(self, vs):
        stream, config, golden, workload, spec = vs
        # Fresh handles: fan-out state hangs off the process-cached
        # FastForward handle, and creation-time counters only fire for
        # fan-outs materialized while tracing is on.
        clear_golden_cache()
        tracer = telemetry.enable()
        try:
            run_campaign(
                workload,
                golden.output,
                golden.total_cycles,
                _config(),
                spec=spec,
            )
            registry = tracer.registry
        finally:
            telemetry.disable()
        groups = registry.counter("campaign.fanout.groups")
        assert groups >= 1
        assert registry.counter("campaign.fanout.shared_restores") == groups
        assert registry.counter("campaign.fanout.cow_clones") > 0
        # The bench seed produces masked runs, and masked fan-out
        # members re-converge to the tape — at least one golden tail
        # must have been synthesized (this is where the speedup lives).
        assert registry.counter("campaign.fanout.golden_tail") >= 1
        hits = registry.counter("campaign.fastforward.hits")
        full_runs = registry.counter("campaign.fastforward.full_runs")
        assert hits + full_runs == 16

    def test_trace_summarize_renders_amortization(self, vs, tmp_path):
        stream, config, golden, workload, spec = vs
        clear_golden_cache()
        tracer = telemetry.enable()
        try:
            run_campaign(
                workload,
                golden.output,
                golden.total_cycles,
                _config(),
                spec=spec,
            )
            trace_path = write_trace(tmp_path / "trace.jsonl", tracer)
        finally:
            telemetry.disable()
        summary = summarize_trace(trace_path)
        assert any(name.startswith("fanout.suffix.b") for name in summary.stages)
        rendered = render_summary(summary)
        assert "boundary fan-out (restore amortization per group):" in rendered
        assert "restore(s) saved" in rendered
        # Per-boundary counters feed the table, not the counter dump.
        assert "campaign.fanout.b" not in rendered.split("counters:")[-1]
