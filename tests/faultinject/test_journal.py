"""Tests for the crash-safe campaign checkpoint journal.

The contract: a campaign run with a journal, interrupted at any chunk
boundary (or torn mid-record), resumes to a result **bit-identical** to
an uninterrupted run — counts, running-rate series, histograms and SDC
payloads included.
"""

from __future__ import annotations

import json
import os
from unittest import mock

import numpy as np
import pytest

from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.journal import (
    ABORT_AFTER_ENV,
    CampaignInterrupted,
    CampaignJournal,
    JournalError,
    config_fingerprint,
    deserialize_result,
    load_journal,
    serialize_result,
)
from repro.faultinject.monitor import InjectionResult
from repro.faultinject.outcomes import CrashKind, HangKind, Outcome
from repro.faultinject.registers import FlipEffect, RegKind, Role
from repro.faultinject.watchdog import WatchdogPolicy
from tests.faultinject.test_parallel import ToyWorkloadSpec, toy_workload


def _campaigns_equal(first: CampaignResult, second: CampaignResult) -> None:
    assert first.counts == second.counts
    assert first.running == second.running
    assert first.fired == second.fired
    assert np.array_equal(first.register_histogram, second.register_histogram)
    assert np.array_equal(first.bit_histogram, second.bit_histogram)
    assert len(first.results) == len(second.results)
    for a, b in zip(first.results, second.results):
        assert a.plan == b.plan
        assert a.outcome == b.outcome
        assert a.crash_kind == b.crash_kind
        assert a.hang_kind == b.hang_kind
        assert a.record.fired == b.record.fired
        assert a.record.in_study == b.record.in_study
        assert a.cycles == b.cycles
        assert (a.output is None) == (b.output is None)
        if a.output is not None:
            assert a.output.dtype == b.output.dtype
            assert np.array_equal(a.output, b.output)


def _config(**overrides) -> CampaignConfig:
    base = dict(n_injections=40, kind=RegKind.GPR, seed=9, workers=1)
    base.update(overrides)
    return CampaignConfig(**base)


@pytest.fixture()
def toy():
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    return spec, golden, cycles


class TestResultRoundTrip:
    def test_full_fidelity(self):
        from repro.faultinject.injector import InjectionRecord

        plan = InjectionPlan(target_cycle=123, kind=RegKind.FPR, register=7, bit=63)
        record = InjectionRecord(
            plan=plan,
            fired=True,
            fired_cycle=130,
            site="warp.row",
            binding_name="src_ptr",
            role=Role.ADDRESS,
            effect=FlipEffect.APPLIED,
            in_study=False,
        )
        result = InjectionResult(
            plan=plan,
            record=record,
            outcome=Outcome.SDC,
            crash_kind=None,
            hang_kind=None,
            output=np.arange(24, dtype=np.uint8).reshape(4, 6),
            cycles=4567,
        )
        restored = deserialize_result(serialize_result(result))
        assert restored.plan == plan
        assert restored.outcome is Outcome.SDC
        assert restored.record.fired_cycle == 130
        assert restored.record.site == "warp.row"
        assert restored.record.role is Role.ADDRESS
        assert restored.record.effect is FlipEffect.APPLIED
        assert restored.record.in_study is False
        assert restored.cycles == 4567
        assert restored.output.dtype == np.uint8
        assert np.array_equal(restored.output, result.output)

    def test_enum_kinds_round_trip(self):
        plan = InjectionPlan(target_cycle=0, kind=RegKind.GPR, register=0, bit=0)
        from repro.faultinject.injector import InjectionRecord

        for outcome, crash, hang in [
            (Outcome.CRASH, CrashKind.SEGV, None),
            (Outcome.CRASH, CrashKind.ABORT, None),
            (Outcome.HANG, None, HangKind.SIMULATED),
            (Outcome.HANG, None, HangKind.WATCHDOG),
            (Outcome.MASKED, None, None),
        ]:
            result = InjectionResult(
                plan=plan,
                record=InjectionRecord(plan),
                outcome=outcome,
                crash_kind=crash,
                hang_kind=hang,
            )
            restored = deserialize_result(serialize_result(result))
            assert restored.outcome is outcome
            assert restored.crash_kind is crash
            assert restored.hang_kind is hang


class TestJournaledEquivalence:
    def test_journaled_run_matches_plain_serial(self, toy, tmp_path):
        spec, golden, cycles = toy
        plain = run_campaign(toy_workload, golden, cycles, _config())
        journaled = run_campaign(
            toy_workload, golden, cycles, _config(), journal_path=tmp_path / "j.jsonl"
        )
        _campaigns_equal(plain, journaled)

    def test_journaled_parallel_matches_serial(self, toy, tmp_path):
        spec, golden, cycles = toy
        plain = run_campaign(toy_workload, golden, cycles, _config())
        journaled = run_campaign(
            toy_workload,
            golden,
            cycles,
            _config(workers=4),
            spec=spec,
            journal_path=tmp_path / "j.jsonl",
        )
        _campaigns_equal(plain, journaled)

    def test_interrupt_then_resume_bit_identical(self, toy, tmp_path):
        spec, golden, cycles = toy
        reference = run_campaign(toy_workload, golden, cycles, _config())
        journal = tmp_path / "j.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(toy_workload, golden, cycles, _config(), journal_path=journal)
        # Interrupted after one durable chunk: fewer lines than a full run.
        lines = journal.read_text().splitlines()
        assert len(lines) == 2  # header + one chunk
        resumed = run_campaign(
            toy_workload, golden, cycles, _config(), journal_path=journal, resume=True
        )
        _campaigns_equal(reference, resumed)

    def test_resume_with_sdc_payloads_bit_identical(self, toy, tmp_path):
        spec, golden, cycles = toy
        config = _config(keep_sdc_outputs=True, seed=0, n_injections=60)
        reference = run_campaign(toy_workload, golden, cycles, config)
        assert reference.sdc_results, "seed must produce SDCs for this test"
        journal = tmp_path / "j.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "2"}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(toy_workload, golden, cycles, config, journal_path=journal)
        resumed = run_campaign(
            toy_workload, golden, cycles, config, journal_path=journal, resume=True
        )
        _campaigns_equal(reference, resumed)

    def test_resume_of_complete_journal_runs_nothing(self, toy, tmp_path):
        spec, golden, cycles = toy
        journal = tmp_path / "j.jsonl"
        reference = run_campaign(
            toy_workload, golden, cycles, _config(), journal_path=journal
        )

        def exploding_workload(ctx):
            raise AssertionError("resume of a complete journal must not re-run")

        resumed = run_campaign(
            exploding_workload, golden, cycles, _config(), journal_path=journal, resume=True
        )
        _campaigns_equal(reference, resumed)


class TestTornRecords:
    def _interrupted_journal(self, toy, tmp_path, chunks: int):
        spec, golden, cycles = toy
        journal = tmp_path / "j.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: str(chunks)}):
            with pytest.raises(CampaignInterrupted):
                run_campaign(toy_workload, golden, cycles, _config(), journal_path=journal)
        return journal

    def test_truncated_mid_record_discards_partial_and_resumes(self, toy, tmp_path):
        spec, golden, cycles = toy
        reference = run_campaign(toy_workload, golden, cycles, _config())
        journal = self._interrupted_journal(toy, tmp_path, chunks=2)
        data = journal.read_bytes()
        journal.write_bytes(data[:-30])  # tear the second chunk record

        state = load_journal(journal)
        assert state.discarded_partial
        assert len(state.chunks) == 1  # the torn chunk was dropped

        resumed = run_campaign(
            toy_workload, golden, cycles, _config(), journal_path=journal, resume=True
        )
        _campaigns_equal(reference, resumed)

    def test_corrupted_crc_discards_record(self, toy, tmp_path):
        journal = self._interrupted_journal(toy, tmp_path, chunks=2)
        lines = journal.read_text().splitlines()
        record = json.loads(lines[-1])
        record["crc32"] = (record["crc32"] + 1) & 0xFFFFFFFF
        lines[-1] = json.dumps(record, separators=(",", ":"))
        journal.write_text("\n".join(lines) + "\n")

        state = load_journal(journal)
        assert state.discarded_partial
        assert len(state.chunks) == 1

    def test_resume_after_truncation_rewrites_cleanly(self, toy, tmp_path):
        """The torn bytes are physically truncated before appending."""
        spec, golden, cycles = toy
        journal = self._interrupted_journal(toy, tmp_path, chunks=1)
        data = journal.read_bytes()
        journal.write_bytes(data + b'{"type":"chunk","half')  # torn tail
        run_campaign(
            toy_workload, golden, cycles, _config(), journal_path=journal, resume=True
        )
        # Every line in the final file must be valid JSON.
        for line in journal.read_text().splitlines():
            json.loads(line)


class TestJournalValidation:
    def test_missing_journal_rejected(self, toy, tmp_path):
        spec, golden, cycles = toy
        with pytest.raises(JournalError, match="does not exist"):
            run_campaign(
                toy_workload,
                golden,
                cycles,
                _config(),
                journal_path=tmp_path / "absent.jsonl",
                resume=True,
            )

    def test_config_mismatch_rejected(self, toy, tmp_path):
        spec, golden, cycles = toy
        journal = tmp_path / "j.jsonl"
        run_campaign(toy_workload, golden, cycles, _config(), journal_path=journal)
        with pytest.raises(JournalError, match="different campaign"):
            run_campaign(
                toy_workload,
                golden,
                cycles,
                _config(seed=10),
                journal_path=journal,
                resume=True,
            )

    def test_wrong_schema_rejected(self, toy, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_text(
            json.dumps({"type": "header", "schema": 999, "fingerprint": {}, "chunk_bounds": []})
            + "\n"
        )
        with pytest.raises(JournalError, match="schema"):
            load_journal(journal)

    def test_fingerprint_tracks_watchdog_soft_deadline(self):
        base = _config()
        with_watchdog = _config(watchdog=WatchdogPolicy(soft_deadline_s=1.0))
        assert config_fingerprint(base) != config_fingerprint(with_watchdog)

    def test_fingerprint_ignores_execution_knobs(self):
        assert config_fingerprint(_config(workers=1)) == config_fingerprint(
            _config(workers=8)
        )


class TestAbortHook:
    def test_interrupt_message_names_resume_path(self, toy, tmp_path):
        spec, golden, cycles = toy
        journal = tmp_path / "j.jsonl"
        with mock.patch.dict(os.environ, {ABORT_AFTER_ENV: "1"}):
            with pytest.raises(CampaignInterrupted, match="--resume"):
                run_campaign(toy_workload, golden, cycles, _config(), journal_path=journal)

    def test_fsync_every_chunk(self, toy, tmp_path, monkeypatch):
        spec, golden, cycles = toy
        fsyncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd)))
        journal = tmp_path / "j.jsonl"
        run_campaign(toy_workload, golden, cycles, _config(), journal_path=journal)
        chunk_lines = len(journal.read_text().splitlines())
        assert len(fsyncs) == chunk_lines  # header + every chunk
