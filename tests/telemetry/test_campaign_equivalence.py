"""Acceptance: tracing never changes campaign results.

The determinism contract from the telemetry design: a traced campaign
produces byte-identical outcome counts, running-rate series, histograms
and SDC outputs to an untraced one, at ``workers=1`` and ``workers>1``
— and the merged campaign counters agree with the assembled statistics.
"""

from __future__ import annotations

from repro import telemetry
from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.registers import RegKind

from tests.faultinject.test_parallel import (
    ToyWorkloadSpec,
    _campaigns_equal,
    toy_workload,
)


def _toy_campaign(workers: int, traced: bool) -> CampaignResult:
    spec = ToyWorkloadSpec()
    _, golden, cycles = spec.build()
    config = CampaignConfig(
        n_injections=60, kind=RegKind.GPR, seed=9, workers=workers
    )
    if traced:
        telemetry.enable()
    try:
        return run_campaign(
            toy_workload,
            golden,
            cycles,
            config,
            spec=spec if workers > 1 else None,
        )
    finally:
        telemetry.disable()


class TestToyCampaignEquivalence:
    def test_traced_serial_matches_untraced(self):
        _campaigns_equal(_toy_campaign(1, traced=False), _toy_campaign(1, traced=True))

    def test_traced_parallel_matches_untraced_serial(self):
        _campaigns_equal(_toy_campaign(1, traced=False), _toy_campaign(3, traced=True))

    def test_traced_parallel_matches_traced_serial(self):
        _campaigns_equal(_toy_campaign(1, traced=True), _toy_campaign(3, traced=True))


class TestMergedCounters:
    def _counters_for(self, workers: int) -> tuple[dict, CampaignResult]:
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        tracer = telemetry.enable()
        try:
            campaign = run_campaign(
                toy_workload,
                golden,
                cycles,
                CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=9, workers=workers),
                spec=spec if workers > 1 else None,
            )
            return dict(tracer.registry.snapshot()["counters"]), campaign
        finally:
            telemetry.disable()

    def test_counters_agree_with_assembled_statistics(self):
        counters, campaign = self._counters_for(workers=1)
        assert counters["campaign.runs"] == 60
        outcome_total = sum(
            value for name, value in counters.items()
            if name.startswith("campaign.outcome.")
        )
        assert outcome_total == campaign.counts.total == 60
        fired_total = sum(1 for r in campaign.results if r.record.fired)
        assert counters.get("campaign.fired", 0) == fired_total

    def test_worker_snapshots_merge_to_serial_counters(self):
        serial_counters, _ = self._counters_for(workers=1)
        parallel_counters, _ = self._counters_for(workers=3)
        campaign_keys = [k for k in serial_counters if k.startswith("campaign.")]
        assert campaign_keys
        for key in campaign_keys:
            assert parallel_counters.get(key) == serial_counters[key], key

    def test_parallel_campaign_aggregates_stage_timers(self):
        spec = ToyWorkloadSpec()
        _, golden, cycles = spec.build()
        tracer = telemetry.enable()
        try:
            run_campaign(
                toy_workload,
                golden,
                cycles,
                CampaignConfig(n_injections=40, kind=RegKind.GPR, seed=2, workers=2),
                spec=spec,
            )
            # Parent-side phase spans recorded as events...
            names = {event["name"] for event in tracer.events}
            assert {"campaign.draw_plans", "campaign.execute", "campaign.assemble"} <= names
        finally:
            telemetry.disable()


class TestVSCampaignEquivalence:
    def test_tiny_vs_campaign_unchanged_by_tracing(self):
        from repro.analysis.experiments import TINY, input_stream, vs_workload
        from repro.faultinject.parallel import VSWorkloadSpec
        from repro.summarize.approximations import config_for
        from repro.summarize.golden import golden_run

        stream = input_stream("input1", TINY)
        config = config_for("VS")
        golden = golden_run(stream, config)
        spec = VSWorkloadSpec.for_stream(stream, config)
        assert spec is not None

        def run(workers: int, traced: bool) -> CampaignResult:
            if traced:
                telemetry.enable()
            try:
                return run_campaign(
                    vs_workload(stream, config),
                    golden.output,
                    golden.total_cycles,
                    CampaignConfig(n_injections=5, kind=RegKind.GPR, seed=21, workers=workers),
                    spec=spec,
                )
            finally:
                telemetry.disable()

        untraced = run(1, traced=False)
        _campaigns_equal(untraced, run(1, traced=True))
        _campaigns_equal(untraced, run(2, traced=True))
