"""Tracer behaviour: null fast path, nesting, cycle merge, event cap."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.runtime.context import ExecutionContext
from repro.telemetry.tracing import Tracer, _NULL_SPAN, activate_from_env


class TestDisabledFastPath:
    def test_span_returns_shared_null_guard(self):
        assert not telemetry.enabled()
        guard_a = telemetry.span("anything")
        guard_b = telemetry.span("else", ctx=ExecutionContext())
        assert guard_a is _NULL_SPAN
        assert guard_b is _NULL_SPAN
        with guard_a:
            pass  # must be usable and side-effect free

    def test_counter_and_gauge_are_noops(self):
        telemetry.counter_inc("x")
        telemetry.gauge_set("y", 1.0)
        tracer = telemetry.enable()
        assert tracer.registry.counter("x") == 0
        assert tracer.registry.gauge("y") is None

    def test_traced_function_runs_plain_when_disabled(self):
        @telemetry.traced("unit.fn")
        def double(value):
            return value * 2

        assert double(21) == 42


class TestEnableDisable:
    def test_enable_is_idempotent(self):
        first = telemetry.enable()
        second = telemetry.enable()
        assert first is second
        assert telemetry.get_tracer() is first

    def test_disable_returns_active_tracer(self):
        tracer = telemetry.enable()
        assert telemetry.disable() is tracer
        assert not telemetry.enabled()
        assert telemetry.disable() is None


class TestSpans:
    def test_span_records_event_and_timer(self):
        tracer = telemetry.enable()
        with telemetry.span("unit.stage"):
            pass
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event["name"] == "unit.stage"
        assert event["parent"] is None
        assert event["depth"] == 0
        assert event["wall_s"] >= 0.0
        assert event["error"] is None
        count, total, _ = tracer.registry.timer("span.unit.stage")
        assert count == 1
        assert total == event["wall_s"]

    def test_nested_spans_track_parent_and_depth(self):
        tracer = telemetry.enable()
        with telemetry.span("outer"):
            assert tracer.current_span == "outer"
            with telemetry.span("inner"):
                assert tracer.current_span == "inner"
        assert tracer.current_span is None
        inner, outer = tracer.events  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert outer["parent"] is None
        assert outer["depth"] == 0
        assert inner["seq"] < outer["seq"]

    def test_span_captures_context_cycle_delta(self):
        tracer = telemetry.enable()
        ctx = ExecutionContext()
        ctx.tick(100)
        with telemetry.span("metered", ctx=ctx):
            ctx.tick(1234)
        event = tracer.events[0]
        assert event["cycles"] == 1234
        assert tracer.registry.counter("cycles.metered") == 1234

    def test_span_without_context_records_zero_cycles(self):
        tracer = telemetry.enable()
        with telemetry.span("dry"):
            pass
        assert tracer.events[0]["cycles"] == 0
        assert tracer.registry.counter("cycles.dry") == 0

    def test_error_spans_record_and_reraise(self):
        tracer = telemetry.enable()
        with pytest.raises(KeyError):
            with telemetry.span("failing"):
                raise KeyError("boom")
        assert tracer.events[0]["error"] == "KeyError"
        assert tracer.current_span is None  # stack unwound


class TestEventCap:
    def test_overflow_counts_dropped_events(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            with tracer.span(f"stage{index}"):
                pass
        assert len(tracer.events) == 2
        assert tracer.registry.counter("trace.dropped_events") == 3
        # Timers still aggregate past the cap — only raw events drop.
        assert tracer.registry.timer("span.stage4") is not None


class TestTracedDecorator:
    def test_traced_uses_given_name(self):
        tracer = telemetry.enable()

        @telemetry.traced("unit.work")
        def work():
            return "done"

        assert work() == "done"
        assert tracer.events[0]["name"] == "unit.work"

    def test_traced_defaults_to_qualname(self):
        tracer = telemetry.enable()

        @telemetry.traced()
        def helper():
            return 1

        helper()
        assert "helper" in tracer.events[0]["name"]


class TestWorkerSwap:
    def test_swap_in_fresh_tracer_isolates_and_restores(self):
        parent = telemetry.enable()
        telemetry.counter_inc("parent.metric")

        fresh, previous = telemetry.swap_in_fresh_tracer()
        assert previous is parent
        assert telemetry.get_tracer() is fresh
        telemetry.counter_inc("chunk.metric")
        assert fresh.registry.counter("parent.metric") == 0

        telemetry.restore_tracer(previous)
        assert telemetry.get_tracer() is parent
        assert parent.registry.counter("chunk.metric") == 0
        parent.registry.merge_snapshot(fresh.registry.snapshot())
        assert parent.registry.counter("chunk.metric") == 1

    def test_swap_from_disabled_state(self):
        fresh, previous = telemetry.swap_in_fresh_tracer()
        assert previous is None
        assert telemetry.enabled()
        telemetry.restore_tracer(previous)
        assert not telemetry.enabled()


class TestEnvActivation:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "off"])
    def test_falsy_values_leave_tracing_off(self, monkeypatch, raw):
        monkeypatch.setenv(telemetry.TRACE_ENV, raw)
        assert activate_from_env() is None
        assert not telemetry.enabled()

    def test_truthy_value_enables(self, monkeypatch):
        monkeypatch.setenv(telemetry.TRACE_ENV, "1")
        tracer = activate_from_env()
        assert tracer is not None
        assert telemetry.enabled()

    def test_unset_leaves_tracing_off(self, monkeypatch):
        monkeypatch.delenv(telemetry.TRACE_ENV, raising=False)
        assert activate_from_env() is None
        assert not telemetry.enabled()
