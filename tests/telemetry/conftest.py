"""Telemetry test isolation: tracing must never leak across tests."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _tracing_off_after_test():
    """Restore the disabled-by-default state whatever a test did."""
    telemetry.disable()
    yield
    telemetry.disable()
