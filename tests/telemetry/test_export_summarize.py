"""JSONL trace export, summarization and the CLI surfaces around them."""

from __future__ import annotations

import json

from repro import telemetry
from repro.cli import main
from repro.runtime.context import ExecutionContext
from repro.telemetry.export import (
    SCHEMA_VERSION,
    read_trace,
    render_summary,
    summarize_trace,
    write_trace,
)
from repro.telemetry.tracing import Tracer


def _traced_activity(tracer: Tracer) -> None:
    ctx = ExecutionContext()
    with tracer.span("outer", ctx=ctx):
        ctx.tick(500)
        with tracer.span("inner", ctx=ctx):
            ctx.tick(1500)
    tracer.registry.inc("golden.cache_hit", 3)


class TestWriteRead:
    def test_roundtrip_structure(self, tmp_path):
        tracer = Tracer()
        _traced_activity(tracer)
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer, meta={"argv": ["unit"]})

        records = read_trace(path)
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["argv"] == ["unit"]
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert records[-1]["type"] == "metrics"
        assert records[-1]["counters"]["golden.cache_hit"] == 3

    def test_every_line_is_valid_json(self, tmp_path):
        tracer = Tracer()
        _traced_activity(tracer)
        path = write_trace(tmp_path / "t.jsonl", tracer)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        write_trace(path, Tracer())
        assert path.exists()


class TestSummarize:
    def test_aggregates_spans_per_stage(self, tmp_path):
        tracer = Tracer()
        _traced_activity(tracer)
        _traced_activity(tracer)
        path = write_trace(tmp_path / "t.jsonl", tracer)

        summary = summarize_trace(path)
        assert summary.total_events == 4
        assert summary.stages["outer"].count == 2
        assert summary.stages["inner"].count == 2
        # inner charged 1500 cycles per call; outer spans both ticks.
        assert summary.stages["inner"].cycles == 3000
        assert summary.stages["outer"].cycles == 4000
        assert summary.counters["golden.cache_hit"] == 6

    def test_backfills_stages_from_metrics_timers(self, tmp_path):
        """Worker-side stages have no span events, only merged timers."""
        tracer = Tracer()
        tracer.registry.observe("span.vision.orb", 0.25)
        tracer.registry.observe("span.vision.orb", 0.75)
        tracer.registry.inc("cycles.vision.orb", 9000)
        path = write_trace(tmp_path / "t.jsonl", tracer)

        summary = summarize_trace(path)
        stat = summary.stages["vision.orb"]
        assert stat.count == 2
        assert stat.wall_s == 1.0
        assert stat.cycles == 9000
        assert summary.total_events == 0

    def test_merged_timers_win_over_partial_events(self, tmp_path):
        """Parallel runs: registry timers are a superset of local events."""
        tracer = Tracer()
        with tracer.span("vision.orb"):
            pass
        # Simulate merged worker snapshots: 5 total calls, more cycles.
        tracer.registry.observe("span.vision.orb", 2.0)
        tracer.registry.observe("span.vision.orb", 2.0)
        tracer.registry.observe("span.vision.orb", 2.0)
        tracer.registry.observe("span.vision.orb", 2.0)
        tracer.registry.inc("cycles.vision.orb", 7777)
        path = write_trace(tmp_path / "t.jsonl", tracer)

        stat = summarize_trace(path).stages["vision.orb"]
        assert stat.count == 5  # 1 local event + 4 merged observations
        assert stat.cycles == 7777

    def test_dropped_events_surface(self, tmp_path):
        tracer = Tracer(max_events=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        summary = summarize_trace(write_trace(tmp_path / "t.jsonl", tracer))
        assert summary.dropped_events == 2

    def test_ordered_by_descending_wall_time(self, tmp_path):
        tracer = Tracer()
        tracer.registry.observe("span.slow", 2.0)
        tracer.registry.observe("span.fast", 0.1)
        summary = summarize_trace(write_trace(tmp_path / "t.jsonl", tracer))
        assert [s.name for s in summary.ordered()] == ["slow", "fast"]


class TestRenderSummary:
    def test_table_contains_stages_and_counters(self, tmp_path):
        tracer = Tracer()
        _traced_activity(tracer)
        summary = summarize_trace(write_trace(tmp_path / "t.jsonl", tracer))
        text = render_summary(summary)
        assert "stage" in text and "wall s" in text and "modelled s" in text
        assert "outer" in text and "inner" in text
        assert "2 span event(s)" in text
        assert "golden.cache_hit = 3" in text

    def test_empty_trace_renders(self, tmp_path):
        text = render_summary(summarize_trace(write_trace(tmp_path / "t.jsonl", Tracer())))
        assert "0 span event(s)" in text


class TestCLISurfaces:
    def test_trace_flag_writes_file_and_disables_after(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["summarize", "--frames", "6", "--trace", str(path)]) == 0
        assert path.exists()
        assert not telemetry.enabled()  # flag-scoped, not sticky
        assert f"trace written to {path}" in capsys.readouterr().out

        records = read_trace(path)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "summarize.run_vs" in span_names
        assert "vision.fast" in span_names

    def test_trace_summarize_subcommand(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["summarize", "--frames", "6", "--trace", str(path)])
        capsys.readouterr()

        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert "summarize.run_vs" in out
        assert "span event(s)" in out


class TestTruncationWarning:
    def _truncated_summary(self, tmp_path, max_events=2, spans=5):
        tracer = Tracer(max_events=max_events)
        for _ in range(spans):
            with tracer.span("s"):
                pass
        return summarize_trace(write_trace(tmp_path / "t.jsonl", tracer))

    def test_event_cap_recorded_with_drops(self, tmp_path):
        summary = self._truncated_summary(tmp_path)
        assert summary.dropped_events == 3
        assert summary.event_cap == 2

    def test_no_cap_gauge_without_drops(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        summary = summarize_trace(write_trace(tmp_path / "t.jsonl", tracer))
        assert summary.dropped_events == 0
        assert summary.event_cap is None

    def test_render_shows_visible_warning(self, tmp_path):
        out = render_summary(self._truncated_summary(tmp_path))
        assert "3 dropped" in out
        assert "WARNING: trace buffer truncated" in out
        assert "its 2-event cap" in out
        assert "Tracer(max_events=...)" in out

    def test_render_stays_clean_without_drops(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        out = render_summary(summarize_trace(write_trace(tmp_path / "t.jsonl", tracer)))
        assert "WARNING" not in out

    def test_cli_summarize_prints_the_warning(self, tmp_path, capsys):
        tracer = Tracer(max_events=1)
        for _ in range(4):
            with tracer.span("s"):
                pass
        path = write_trace(tmp_path / "t.jsonl", tracer)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING: trace buffer truncated" in out
