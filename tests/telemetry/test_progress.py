"""Heartbeat: rate-limited progress lines with rate, ETA and cache stats."""

from __future__ import annotations

import io

from repro.telemetry.progress import Heartbeat, _format_eta


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _heartbeat(total: int, interval_s: float = 2.0):
    clock = FakeClock()
    stream = io.StringIO()
    beat = Heartbeat(total, label="campaign gpr", interval_s=interval_s,
                     stream=stream, clock=clock)
    return beat, clock, stream


class TestRateLimiting:
    def test_at_most_one_line_per_interval(self):
        beat, clock, stream = _heartbeat(total=100)
        clock.advance(0.1)
        beat.update(1)  # first due immediately
        for done in range(2, 50):
            clock.advance(0.01)
            beat.update(done)  # all inside the 2 s window: suppressed
        assert beat.lines_emitted == 1
        clock.advance(2.0)
        beat.update(50)
        assert beat.lines_emitted == 2
        assert len(stream.getvalue().splitlines()) == 2

    def test_final_update_always_prints(self):
        beat, clock, stream = _heartbeat(total=10)
        clock.advance(0.1)
        beat.update(3)
        clock.advance(0.01)
        beat.update(10)  # final: prints despite the interval
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "10/10" in lines[-1]
        assert "ETA 0s" in lines[-1]


class TestLineFormat:
    def test_line_shows_rate_and_eta(self):
        beat, clock, stream = _heartbeat(total=40)
        clock.advance(2.0)
        beat.update(10)  # 5 inj/s, 30 left -> ETA 6 s
        line = stream.getvalue().strip()
        assert line.startswith("[campaign gpr] 10/40 injections")
        assert "5.0 inj/s" in line
        assert "ETA 6s" in line

    def test_cache_suffix_reports_golden_hits(self):
        from repro.summarize.golden import clear_golden_cache, golden_cache_stats

        clear_golden_cache()
        stats = golden_cache_stats()
        stats.computes = 1
        stats.hits = 7
        try:
            beat, clock, stream = _heartbeat(total=10)
            clock.advance(1.0)
            beat.update(5)
            assert "golden-cache 7/8 hits" in stream.getvalue()
        finally:
            clear_golden_cache()

    def test_no_cache_suffix_without_lookups(self):
        from repro.summarize.golden import clear_golden_cache

        clear_golden_cache()
        beat, clock, stream = _heartbeat(total=10)
        clock.advance(1.0)
        beat.update(5)
        assert "golden-cache" not in stream.getvalue()


class TestEtaFormatting:
    def test_eta_units(self):
        assert _format_eta(42.4) == "42s"
        assert _format_eta(90) == "1.5m"
        assert _format_eta(2.5 * 3600) == "2.5h"
