"""Heartbeat: rate-limited progress lines with rate, ETA and cache stats."""

from __future__ import annotations

import io

from repro.telemetry.progress import Heartbeat, _format_eta


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _heartbeat(total: int, interval_s: float = 2.0):
    clock = FakeClock()
    stream = io.StringIO()
    beat = Heartbeat(total, label="campaign gpr", interval_s=interval_s,
                     stream=stream, clock=clock)
    return beat, clock, stream


class TestRateLimiting:
    def test_at_most_one_line_per_interval(self):
        beat, clock, stream = _heartbeat(total=100)
        clock.advance(0.1)
        beat.update(1)  # first due immediately
        for done in range(2, 50):
            clock.advance(0.01)
            beat.update(done)  # all inside the 2 s window: suppressed
        assert beat.lines_emitted == 1
        clock.advance(2.0)
        beat.update(50)
        assert beat.lines_emitted == 2
        assert len(stream.getvalue().splitlines()) == 2

    def test_final_update_always_prints(self):
        beat, clock, stream = _heartbeat(total=10)
        clock.advance(0.1)
        beat.update(3)
        clock.advance(0.01)
        beat.update(10)  # final: prints despite the interval
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "10/10" in lines[-1]
        assert "ETA 0s" in lines[-1]


class TestLineFormat:
    def test_line_shows_rate_and_eta(self):
        beat, clock, stream = _heartbeat(total=40)
        clock.advance(2.0)
        beat.update(10)  # 5 inj/s, 30 left -> ETA 6 s
        line = stream.getvalue().strip()
        assert line.startswith("[campaign gpr] 10/40 injections")
        assert "5.0 inj/s" in line
        assert "ETA 6s" in line

    def test_cache_suffix_reports_golden_hits(self):
        from repro.summarize.golden import clear_golden_cache, golden_cache_stats

        clear_golden_cache()
        stats = golden_cache_stats()
        stats.computes = 1
        stats.hits = 7
        try:
            beat, clock, stream = _heartbeat(total=10)
            clock.advance(1.0)
            beat.update(5)
            assert "golden-cache 7/8 hits" in stream.getvalue()
        finally:
            clear_golden_cache()

    def test_no_cache_suffix_without_lookups(self):
        from repro.summarize.golden import clear_golden_cache

        clear_golden_cache()
        beat, clock, stream = _heartbeat(total=10)
        clock.advance(1.0)
        beat.update(5)
        assert "golden-cache" not in stream.getvalue()


class TestEtaFormatting:
    def test_eta_units(self):
        assert _format_eta(42.4) == "42s"
        assert _format_eta(90) == "1.5m"
        assert _format_eta(2.5 * 3600) == "2.5h"


class TestIntervalResolution:
    def test_explicit_value_wins(self, monkeypatch):
        from repro.telemetry.progress import (
            HEARTBEAT_INTERVAL_ENV,
            resolve_heartbeat_interval,
        )

        monkeypatch.setenv(HEARTBEAT_INTERVAL_ENV, "9.0")
        assert resolve_heartbeat_interval(0.5) == 0.5

    def test_env_var_beats_default(self, monkeypatch):
        from repro.telemetry.progress import (
            DEFAULT_HEARTBEAT_INTERVAL,
            HEARTBEAT_INTERVAL_ENV,
            resolve_heartbeat_interval,
        )

        monkeypatch.delenv(HEARTBEAT_INTERVAL_ENV, raising=False)
        assert resolve_heartbeat_interval() == DEFAULT_HEARTBEAT_INTERVAL
        monkeypatch.setenv(HEARTBEAT_INTERVAL_ENV, "0.25")
        assert resolve_heartbeat_interval() == 0.25
        monkeypatch.setenv(HEARTBEAT_INTERVAL_ENV, "")
        assert resolve_heartbeat_interval() == DEFAULT_HEARTBEAT_INTERVAL

    def test_bad_env_value_names_its_source(self, monkeypatch):
        import pytest

        from repro.telemetry.progress import (
            HEARTBEAT_INTERVAL_ENV,
            resolve_heartbeat_interval,
        )

        monkeypatch.setenv(HEARTBEAT_INTERVAL_ENV, "soon")
        with pytest.raises(ValueError, match=HEARTBEAT_INTERVAL_ENV):
            resolve_heartbeat_interval()

    def test_bad_flag_value_names_the_flag(self):
        import pytest

        from repro.telemetry.progress import resolve_heartbeat_interval

        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="heartbeat interval"):
                resolve_heartbeat_interval(bad)

    def test_constructor_validates_interval(self):
        import pytest

        with pytest.raises(ValueError, match="heartbeat interval"):
            Heartbeat(10, interval_s=0.0)


class TestQuietMode:
    def _quiet_heartbeat(self, total: int):
        clock = FakeClock()
        stream = io.StringIO()
        beat = Heartbeat(total, label="campaign gpr", interval_s=2.0,
                         stream=stream, clock=clock, quiet=True)
        return beat, clock, stream

    def test_quiet_suppresses_lines_but_emits_events(self):
        from repro.observe import events

        bus = events.install()
        seen = []
        bus.subscribe(seen.append)
        try:
            beat, clock, stream = self._quiet_heartbeat(total=10)
            clock.advance(1.0)
            beat.update(5)
            beat.annotate("resumed from journal")
            beat.update(10)
        finally:
            events.uninstall()
        assert stream.getvalue() == ""
        assert beat.lines_emitted == 0
        kinds = [event.kind for event in seen]
        assert kinds == ["heartbeat", "note", "heartbeat"]
        assert seen[0].payload["done"] == 5
        assert seen[1].payload["note"] == "resumed from journal"

    def test_loud_heartbeat_also_publishes_events(self):
        from repro.observe import events

        bus = events.install()
        seen = []
        bus.subscribe(seen.append)
        try:
            beat, clock, stream = _heartbeat(total=10)
            clock.advance(1.0)
            beat.update(5)
        finally:
            events.uninstall()
        assert "5/10" in stream.getvalue()
        assert [event.kind for event in seen] == ["heartbeat"]
        assert seen[0].payload["total"] == 10
