"""MetricsRegistry: counters, gauges, timers and deterministic merging."""

from __future__ import annotations

import json

from repro.telemetry.metrics import MetricsRegistry


class TestRecording:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") == 0
        reg.inc("hits")
        reg.inc("hits", 4)
        assert reg.counter("hits") == 5

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        assert reg.gauge("load") is None
        reg.set_gauge("load", 0.5)
        reg.set_gauge("load", 2)
        assert reg.gauge("load") == 2.0
        assert isinstance(reg.gauge("load"), float)

    def test_timers_track_count_total_max(self):
        reg = MetricsRegistry()
        assert reg.timer("stage") is None
        reg.observe("stage", 0.25)
        reg.observe("stage", 1.0)
        reg.observe("stage", 0.5)
        count, total, peak = reg.timer("stage")
        assert count == 3
        assert total == 1.75
        assert peak == 1.0


class TestSnapshot:
    def test_snapshot_is_json_serializable_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        reg.set_gauge("g", 1.5)
        reg.observe("t", 0.1)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["timers"]["t"] == {"count": 1, "total_s": 0.1, "max_s": 0.1}

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("n")
        snap = reg.snapshot()
        reg.inc("n")
        assert snap["counters"]["n"] == 1

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.set_gauge("g", 1)
        reg.observe("t", 1)
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestMerge:
    def test_merge_adds_counters_and_timer_totals(self):
        first = MetricsRegistry()
        first.inc("runs", 3)
        first.observe("stage", 1.0)
        second = MetricsRegistry()
        second.inc("runs", 2)
        second.observe("stage", 3.0)
        second.observe("stage", 0.5)

        first.merge_snapshot(second.snapshot())
        assert first.counter("runs") == 5
        count, total, peak = first.timer("stage")
        assert count == 3
        assert total == 4.5
        assert peak == 3.0

    def test_merge_into_empty_registry(self):
        source = MetricsRegistry()
        source.inc("n", 7)
        source.set_gauge("g", 2.5)
        source.observe("t", 0.2)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_chunk_order_merge_is_deterministic(self):
        """Merging the same snapshots in the same order twice agrees."""
        snaps = []
        for index in range(4):
            reg = MetricsRegistry()
            reg.inc("campaign.runs", index + 1)
            reg.set_gauge("last_chunk", index)
            reg.observe("span.stage", 0.1 * (index + 1))
            snaps.append(reg.snapshot())

        merged_a = MetricsRegistry()
        merged_b = MetricsRegistry()
        for snap in snaps:
            merged_a.merge_snapshot(snap)
            merged_b.merge_snapshot(snap)
        assert merged_a.snapshot() == merged_b.snapshot()
        # Gauges take the *last* chunk's value — order defines the result.
        assert merged_a.gauge("last_chunk") == 3.0
        assert merged_a.counter("campaign.runs") == 1 + 2 + 3 + 4

    def test_merge_tolerates_partial_snapshots(self):
        reg = MetricsRegistry()
        reg.merge_snapshot({})  # must not raise
        reg.merge_snapshot({"counters": {"n": 1}})
        assert reg.counter("n") == 1
