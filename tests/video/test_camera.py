"""Tests for the camera model and path generators."""

import numpy as np
import pytest

from repro.imaging.geometry import apply_transform
from repro.video.camera import CameraState, busy_path, render_frame, steady_path
from repro.video.terrain import make_landscape


@pytest.fixture(scope="module")
def landscape():
    return make_landscape(seed=9, height=500, width=700)


def plain_state(x=350.0, y=250.0, **overrides) -> CameraState:
    defaults = dict(center_x=x, center_y=y, angle=0.0, zoom=1.0, gain=1.0, offset=0.0, segment=0)
    defaults.update(overrides)
    return CameraState(**defaults)


class TestFrameToWorld:
    def test_center_maps_to_camera_center(self):
        state = plain_state(x=100.0, y=80.0)
        mat = state.frame_to_world(96, 72)
        center = apply_transform(mat, np.array([[(96 - 1) / 2, (72 - 1) / 2]]))
        assert np.allclose(center, [[100.0, 80.0]])

    def test_zoom_scales_footprint(self):
        narrow = plain_state(zoom=1.0).frame_to_world(96, 72)
        wide = plain_state(zoom=2.0).frame_to_world(96, 72)
        narrow_corners = apply_transform(narrow, np.array([[0.0, 0.0], [95.0, 0.0]]))
        wide_corners = apply_transform(wide, np.array([[0.0, 0.0], [95.0, 0.0]]))
        narrow_span = np.linalg.norm(narrow_corners[1] - narrow_corners[0])
        wide_span = np.linalg.norm(wide_corners[1] - wide_corners[0])
        assert wide_span == pytest.approx(2 * narrow_span)


class TestRenderFrame:
    def test_shape_and_dtype(self, landscape):
        frame = render_frame(landscape, plain_state(), 96, 72, np.random.default_rng(0))
        assert frame.shape == (72, 96)
        assert frame.dtype == np.uint8

    def test_translation_shifts_content(self, landscape):
        rng = np.random.default_rng(0)
        a = render_frame(landscape, plain_state(x=300), 96, 72, rng, noise_sigma=0.0)
        b = render_frame(landscape, plain_state(x=310), 96, 72, rng, noise_sigma=0.0)
        # Shifting the camera 10px right shows content 10px to the left.
        assert np.mean(np.abs(a[:, 10:].astype(int) - b[:, :-10].astype(int))) < 2.0

    def test_gain_brightens(self, landscape):
        rng = np.random.default_rng(0)
        normal = render_frame(landscape, plain_state(gain=1.0), 96, 72, rng, noise_sigma=0.0)
        bright = render_frame(landscape, plain_state(gain=1.4), 96, 72, rng, noise_sigma=0.0)
        assert bright.mean() > normal.mean() * 1.2

    def test_noise_changes_pixels(self, landscape):
        a = render_frame(landscape, plain_state(), 96, 72, np.random.default_rng(1))
        b = render_frame(landscape, plain_state(), 96, 72, np.random.default_rng(2))
        assert not np.array_equal(a, b)


class TestPaths:
    def test_steady_path_is_single_segment(self):
        states = steady_path(40, np.random.default_rng(0), (900, 1200))
        assert len(states) == 40
        assert all(s.segment == 0 for s in states)

    def test_steady_path_moves_smoothly(self):
        states = steady_path(40, np.random.default_rng(1), (900, 1200))
        steps = [
            np.hypot(b.center_x - a.center_x, b.center_y - a.center_y)
            for a, b in zip(states, states[1:])
        ]
        assert max(steps) < 12.0
        assert np.mean(steps) > 2.0

    def test_busy_path_has_multiple_segments(self):
        states = busy_path(48, np.random.default_rng(2), (900, 1200))
        segments = {s.segment for s in states}
        assert len(segments) >= 2

    def test_busy_path_cuts_jump(self):
        states = busy_path(48, np.random.default_rng(3), (900, 1200))
        cut_jumps = [
            np.hypot(b.center_x - a.center_x, b.center_y - a.center_y)
            for a, b in zip(states, states[1:])
            if b.segment != a.segment
        ]
        assert cut_jumps, "no segment cuts generated"
        assert min(cut_jumps) > 50.0

    def test_busy_path_never_freezes(self):
        """The camera must keep moving (margin bounce, not clamp)."""
        states = busy_path(60, np.random.default_rng(4), (900, 1200))
        steps = [
            np.hypot(b.center_x - a.center_x, b.center_y - a.center_y)
            for a, b in zip(states, states[1:])
            if b.segment == a.segment
        ]
        assert min(steps) > 5.0

    def test_paths_stay_inside_landscape(self):
        for maker, seed in ((steady_path, 5), (busy_path, 6)):
            states = maker(60, np.random.default_rng(seed), (900, 1200))
            for s in states:
                assert 0 <= s.center_x <= 1200
                assert 0 <= s.center_y <= 900
