"""Tests for synthetic moving objects."""

import numpy as np
import pytest

from repro.video.objects import MovingObject, spawn_objects, stamp_objects
from repro.video.synthetic import make_event_input


class TestMovingObject:
    def test_linear_motion(self):
        obj = MovingObject(0, 10.0, 20.0, 2.0, -1.0, 5.0, 5.0, 250.0)
        assert obj.position(0) == (10.0, 20.0)
        assert obj.position(10) == (30.0, 10.0)


class TestSpawn:
    def test_count_and_ids(self):
        objects = spawn_objects(np.random.default_rng(0), (900, 1200), 5)
        assert len(objects) == 5
        assert sorted(o.object_id for o in objects) == list(range(5))

    def test_alternating_contrast(self):
        objects = spawn_objects(np.random.default_rng(1), (900, 1200), 4)
        assert objects[0].intensity > 200
        assert objects[1].intensity < 50

    def test_speed_within_range(self):
        objects = spawn_objects(
            np.random.default_rng(2), (900, 1200), 10, speed_range=(1.0, 3.0)
        )
        for obj in objects:
            speed = np.hypot(obj.velocity_x, obj.velocity_y)
            assert 1.0 <= speed <= 3.0


class TestStamp:
    def test_object_visible(self):
        world = np.full((100, 100), 100.0)
        obj = MovingObject(0, 50.0, 50.0, 0.0, 0.0, 6.0, 6.0, 250.0)
        stamped = stamp_objects(world, [obj], frame_index=0)
        assert stamped[50, 50] == 250.0
        assert stamped[10, 10] == 100.0

    def test_original_untouched(self):
        world = np.full((100, 100), 100.0)
        obj = MovingObject(0, 50.0, 50.0, 0.0, 0.0, 6.0, 6.0, 250.0)
        stamp_objects(world, [obj], frame_index=0)
        assert world[50, 50] == 100.0

    def test_motion_between_frames(self):
        world = np.full((100, 100), 100.0)
        obj = MovingObject(0, 20.0, 50.0, 5.0, 0.0, 4.0, 4.0, 250.0)
        early = stamp_objects(world, [obj], frame_index=0)
        late = stamp_objects(world, [obj], frame_index=4)
        assert early[50, 20] == 250.0 and late[50, 20] == 100.0
        assert late[50, 40] == 250.0

    def test_offscreen_object_clipped(self):
        world = np.full((50, 50), 100.0)
        obj = MovingObject(0, 200.0, 200.0, 0.0, 0.0, 5.0, 5.0, 250.0)
        stamped = stamp_objects(world, [obj], frame_index=0)
        assert np.array_equal(stamped, world)


class TestEventInput:
    def test_deterministic(self):
        a = make_event_input(n_frames=6)
        b = make_event_input(n_frames=6)
        for fa, fb in zip(a.stream, b.stream):
            assert np.array_equal(fa, fb)

    def test_has_ground_truth(self):
        event_input = make_event_input(n_frames=6, n_objects=4)
        assert len(event_input.objects) == 4
        assert len(event_input.states) == 6

    def test_movers_change_frames(self):
        """Frames must differ by more than sensor noise where movers pass."""
        event_input = make_event_input(n_frames=8, n_objects=3)
        frames = list(event_input.stream)
        diffs = [
            np.abs(a.astype(int) - b.astype(int)).max()
            for a, b in zip(frames, frames[1:])
        ]
        assert max(diffs) > 60
