"""Tests for frame streams and the two synthetic inputs."""

import numpy as np
import pytest

from repro.video.frames import FrameStream, drop_frames_randomly
from repro.video.synthetic import make_input, make_input1, make_input2


def make_frames(n=10, shape=(6, 8)):
    rng = np.random.default_rng(0)
    return [rng.integers(0, 256, shape).astype(np.uint8) for _ in range(n)]


class TestFrameStream:
    def test_basic_container(self):
        stream = FrameStream("s", make_frames(5))
        assert len(stream) == 5
        assert stream.frame_shape == (6, 8)
        assert stream[2].shape == (6, 8)

    def test_frames_become_read_only(self):
        stream = FrameStream("s", make_frames(2))
        with pytest.raises(ValueError):
            stream[0][0, 0] = 1

    def test_rejects_color_frames(self):
        bad = [np.zeros((4, 4, 3), dtype=np.uint8)]
        with pytest.raises(ValueError):
            FrameStream("bad", bad)

    def test_empty_stream_has_no_shape(self):
        with pytest.raises(ValueError):
            FrameStream("empty", []).frame_shape

    def test_subsample(self):
        stream = FrameStream("s", make_frames(10))
        sub = stream.subsample(3)
        assert len(sub) == 4
        assert np.array_equal(sub[1], stream[3])

    def test_subsample_rejects_zero(self):
        with pytest.raises(ValueError):
            FrameStream("s", make_frames(3)).subsample(0)


class TestRandomFrameDropping:
    def test_drops_expected_count(self):
        stream = FrameStream("s", make_frames(20))
        dropped = drop_frames_randomly(stream, 0.10, np.random.default_rng(0))
        assert len(dropped) == 18

    def test_order_preserved(self):
        stream = FrameStream("s", make_frames(20))
        dropped = drop_frames_randomly(stream, 0.25, np.random.default_rng(1))
        survivors = [
            next(i for i in range(20) if np.array_equal(stream[i], frame))
            for frame in dropped
        ]
        assert survivors == sorted(survivors)

    def test_zero_fraction_keeps_all(self):
        stream = FrameStream("s", make_frames(7))
        kept = drop_frames_randomly(stream, 0.0, np.random.default_rng(2))
        assert len(kept) == 7

    def test_deterministic_per_seed(self):
        stream = FrameStream("s", make_frames(30))
        a = drop_frames_randomly(stream, 0.2, np.random.default_rng(42))
        b = drop_frames_randomly(stream, 0.2, np.random.default_rng(42))
        assert len(a) == len(b)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa, fb)

    def test_rejects_bad_fraction(self):
        stream = FrameStream("s", make_frames(5))
        with pytest.raises(ValueError):
            drop_frames_randomly(stream, 1.0, np.random.default_rng(0))


class TestSyntheticInputs:
    def test_input1_properties(self, tiny_stream1):
        assert len(tiny_stream1) == 16
        assert tiny_stream1.frame_shape == (72, 96)
        assert tiny_stream1.name == "input1"

    def test_input2_properties(self, tiny_stream2):
        assert len(tiny_stream2) == 16
        assert tiny_stream2.name == "input2"

    def test_inputs_deterministic(self):
        a = make_input1(n_frames=4)
        b = make_input1(n_frames=4)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa, fb)

    def test_input2_more_redundant_than_input1(self, tiny_stream1, tiny_stream2):
        def mean_consecutive_diff(stream):
            diffs = [
                np.abs(a.astype(int) - b.astype(int)).mean()
                for a, b in zip(stream, list(stream)[1:])
            ]
            return np.mean(diffs)

        assert mean_consecutive_diff(tiny_stream2) < mean_consecutive_diff(tiny_stream1)

    def test_make_input_dispatch(self):
        assert make_input("input1", n_frames=2).name == "input1"
        assert make_input("input2", n_frames=2).name == "input2"
        with pytest.raises(ValueError):
            make_input("input3")
