"""Tests for the procedural landscape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.terrain import make_landscape, value_noise


class TestValueNoise:
    def test_shape_and_range(self):
        rng = np.random.default_rng(0)
        field = value_noise(rng, 50, 70)
        assert field.shape == (50, 70)
        assert field.min() >= 0.0 and field.max() <= 1.0

    @given(st.integers(1, 4), st.integers(2, 16))
    @settings(max_examples=10, deadline=None)
    def test_parameterized_bounds(self, octaves, base_cells):
        rng = np.random.default_rng(1)
        field = value_noise(rng, 30, 30, octaves=octaves, base_cells=base_cells)
        assert field.min() >= 0.0 and field.max() <= 1.0

    def test_has_spatial_variation(self):
        rng = np.random.default_rng(2)
        field = value_noise(rng, 60, 60)
        assert field.std() > 0.01


class TestLandscape:
    def test_shape_and_dtype(self):
        land = make_landscape(seed=3, height=200, width=300)
        assert land.shape == (200, 300)
        assert land.dtype == np.uint8

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            make_landscape(seed=5, height=150, width=150),
            make_landscape(seed=5, height=150, width=150),
        )

    def test_different_seeds_differ(self):
        a = make_landscape(seed=1, height=150, width=150)
        b = make_landscape(seed=2, height=150, width=150)
        assert not np.array_equal(a, b)

    def test_texture_everywhere(self):
        """Every frame-sized window must carry corner-grade texture."""
        land = make_landscape(seed=4, height=600, width=800)
        for y in range(0, 500, 150):
            for x in range(0, 700, 200):
                window = land[y : y + 72, x : x + 96].astype(float)
                assert window.std() > 10.0, f"flat window at ({x}, {y})"

    def test_full_dynamic_range_used(self):
        land = make_landscape(seed=6, height=300, width=300)
        assert land.min() < 40
        assert land.max() > 215
