"""Tests for the perspective warp (the hot function)."""

import numpy as np
import pytest

from repro.imaging.geometry import identity, rotation, scaling, translation
from repro.imaging.image import blank
from repro.imaging.warp import warp_into, warp_perspective
from repro.runtime.context import CostProfile, ExecutionContext
from repro.runtime.errors import DegenerateModelError


@pytest.fixture()
def gradient_image():
    xs = np.arange(40, dtype=np.uint8)
    return np.tile(xs, (30, 1))


class TestWarpPerspective:
    def test_identity_preserves_content(self, gradient_image, ctx):
        out = warp_perspective(gradient_image, identity(), (30, 40), ctx)
        assert np.array_equal(out, gradient_image)

    def test_translation_moves_content(self, gradient_image, ctx):
        out = warp_perspective(gradient_image, translation(5, 3), (40, 50), ctx)
        assert np.array_equal(out[3:33, 5:45], gradient_image)
        assert np.all(out[:3, :] == 0)

    def test_fractional_translation_interpolates(self, ctx):
        img = np.zeros((10, 10), dtype=np.uint8)
        img[5, 5] = 200
        out = warp_perspective(img, translation(0.5, 0.0), (10, 10), ctx)
        # The bright pixel spreads between two columns.
        assert out[5, 5] > 0 and out[5, 6] > 0
        assert out[5, 5] < 200 and out[5, 6] < 200

    def test_scaling_up_covers_larger_area(self, gradient_image, ctx):
        out = warp_perspective(gradient_image, scaling(2.0), (60, 80), ctx)
        assert np.count_nonzero(out) > np.count_nonzero(gradient_image)

    def test_rotation_stays_in_bounds(self, gradient_image, ctx):
        mat = translation(20, 20) @ rotation(0.5)
        out = warp_perspective(gradient_image, mat, (80, 100), ctx)
        assert out.shape == (80, 100)

    def test_degenerate_transform_rejected(self, gradient_image, ctx):
        mat = np.zeros((3, 3))
        mat[2, 2] = 1.0
        with pytest.raises(DegenerateModelError):
            warp_perspective(gradient_image, mat, (30, 40), ctx)


class TestWarpInto:
    def test_updates_coverage(self, gradient_image, ctx):
        canvas = blank(50, 60)
        coverage = blank(50, 60)
        written = warp_into(canvas, coverage, gradient_image, translation(10, 10), ctx)
        assert written == 30 * 40
        assert np.count_nonzero(coverage) == written

    def test_projection_outside_canvas_writes_nothing(self, gradient_image, ctx):
        canvas = blank(50, 60)
        coverage = blank(50, 60)
        written = warp_into(canvas, coverage, gradient_image, translation(1000, 0), ctx)
        assert written == 0
        assert np.count_nonzero(coverage) == 0

    def test_partial_clip(self, gradient_image, ctx):
        canvas = blank(50, 60)
        coverage = blank(50, 60)
        written = warp_into(canvas, coverage, gradient_image, translation(-20, 0), ctx)
        assert 0 < written < 30 * 40

    def test_later_writes_overwrite(self, ctx):
        canvas = blank(20, 20)
        coverage = blank(20, 20)
        bright = np.full((10, 10), 200, dtype=np.uint8)
        dark = np.full((10, 10), 30, dtype=np.uint8)
        warp_into(canvas, coverage, bright, identity(), ctx)
        warp_into(canvas, coverage, dark, identity(), ctx)
        assert np.all(canvas[:10, :10] == 30)

    def test_shape_mismatch_rejected(self, gradient_image, ctx):
        with pytest.raises(ValueError):
            warp_into(blank(10, 10), blank(11, 11), gradient_image, identity(), ctx)

    def test_charges_warp_scopes(self, gradient_image):
        profile = CostProfile()
        ctx = ExecutionContext(profile=profile)
        warp_perspective(gradient_image, identity(), (30, 40), ctx)
        scopes = profile.by_scope()
        assert any("warp_perspective_invoker" in s for s in scopes)
        assert any("remap_bilinear" in s for s in scopes)

    def test_deterministic(self, gradient_image):
        outs = [
            warp_perspective(
                gradient_image,
                translation(2.5, 1.25) @ rotation(0.1),
                (50, 60),
                ExecutionContext(),
            )
            for _ in range(2)
        ]
        assert np.array_equal(outs[0], outs[1])
