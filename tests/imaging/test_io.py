"""Tests for netpbm and npz image I/O."""

import numpy as np
import pytest

from repro.imaging.io import (
    load_frames_npz,
    load_pgm,
    load_ppm,
    save_frames_npz,
    save_pgm,
    save_ppm,
)


@pytest.fixture()
def gray_image(rng):
    return rng.integers(0, 256, (17, 23)).astype(np.uint8)


@pytest.fixture()
def color_image(rng):
    return rng.integers(0, 256, (9, 11, 3)).astype(np.uint8)


class TestPGM:
    def test_roundtrip(self, tmp_path, gray_image):
        path = tmp_path / "img.pgm"
        save_pgm(path, gray_image)
        assert np.array_equal(load_pgm(path), gray_image)

    def test_header_format(self, tmp_path, gray_image):
        path = tmp_path / "img.pgm"
        save_pgm(path, gray_image)
        data = path.read_bytes()
        assert data.startswith(b"P5\n23 17\n255\n")

    def test_rejects_color(self, tmp_path, color_image):
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm", color_image)

    def test_load_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n1 1\n255\n\x00\x00\x00")
        with pytest.raises(ValueError):
            load_pgm(path)

    def test_load_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_bytes(b"P5\n10 10\n255\n\x00\x01")
        with pytest.raises(ValueError, match="truncated"):
            load_pgm(path)

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 1\n255\n\x0a\x0b")
        assert np.array_equal(load_pgm(path), np.array([[10, 11]], dtype=np.uint8))


class TestPPM:
    def test_roundtrip(self, tmp_path, color_image):
        path = tmp_path / "img.ppm"
        save_ppm(path, color_image)
        assert np.array_equal(load_ppm(path), color_image)


class TestNPZ:
    def test_roundtrip_preserves_order(self, tmp_path, rng):
        frames = [rng.integers(0, 256, (5, 7)).astype(np.uint8) for _ in range(12)]
        path = tmp_path / "frames.npz"
        save_frames_npz(path, frames)
        loaded = load_frames_npz(path)
        assert len(loaded) == 12
        for original, restored in zip(frames, loaded):
            assert np.array_equal(original, restored)
