"""Tests for blur filters, gradients and the Harris response."""

import numpy as np
import pytest

from repro.imaging.filters import (
    box_blur,
    gaussian_blur,
    gaussian_kernel_1d,
    harris_response,
    sobel_gradients,
)
from repro.runtime.context import CostProfile, ExecutionContext


class TestGaussianKernel:
    def test_normalized(self):
        assert gaussian_kernel_1d(1.5).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        kernel = gaussian_kernel_1d(2.0)
        assert np.allclose(kernel, kernel[::-1])

    def test_radius_override(self):
        assert len(gaussian_kernel_1d(1.0, radius=4)) == 9

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel_1d(0.0)


class TestGaussianBlur:
    def test_preserves_shape_and_dtype(self):
        img = np.random.default_rng(0).integers(0, 256, (20, 30)).astype(np.uint8)
        out = gaussian_blur(img)
        assert out.shape == img.shape
        assert out.dtype == np.uint8

    def test_constant_image_unchanged(self):
        img = np.full((10, 10), 77, dtype=np.uint8)
        assert np.all(gaussian_blur(img) == 77)

    def test_reduces_variance(self):
        img = np.random.default_rng(1).integers(0, 256, (40, 40)).astype(np.uint8)
        blurred = gaussian_blur(img, sigma=2.0)
        assert blurred.astype(float).var() < img.astype(float).var()

    def test_charges_cycles(self):
        img = np.zeros((10, 10), dtype=np.uint8)
        ctx = ExecutionContext(profile=CostProfile())
        gaussian_blur(img, ctx=ctx)
        assert ctx.cycles > 0
        assert any("blur" in scope for scope in ctx.profile.by_scope())


class TestBoxBlur:
    def test_preserves_constant(self):
        img = np.full((8, 8), 100, dtype=np.uint8)
        assert np.all(box_blur(img, radius=2) == 100)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            box_blur(np.zeros((5, 5), dtype=np.uint8), radius=0)


class TestSobel:
    def test_flat_image_zero_gradient(self):
        gx, gy = sobel_gradients(np.full((10, 10), 50, dtype=np.uint8))
        assert np.allclose(gx, 0) and np.allclose(gy, 0)

    def test_vertical_edge_has_x_gradient(self):
        img = np.zeros((10, 10), dtype=np.uint8)
        img[:, 5:] = 200
        gx, gy = sobel_gradients(img)
        assert np.abs(gx).max() > 100
        assert np.abs(gy[2:-2, 2:-2]).max() == 0


class TestHarris:
    def test_corner_scores_higher_than_edge(self):
        img = np.zeros((30, 30), dtype=np.uint8)
        img[10:, 10:] = 200  # one strong corner at (10, 10)
        response = harris_response(img)
        corner_score = response[10, 10]
        edge_score = response[20, 10]  # along the vertical edge
        flat_score = response[3, 3]
        assert corner_score > edge_score
        assert corner_score > flat_score
