"""Designed-corruption tests for the warp kernel's failure semantics.

These emulate specific register flips via custom checkpoint probes and
assert the *designed* outcome class, pinning the fault model's contract
(see docs/fault_model.md).
"""

import numpy as np
import pytest

from repro.imaging.geometry import translation
from repro.imaging.image import blank
from repro.imaging.warp import warp_into
from repro.runtime.context import ExecutionContext
from repro.runtime.errors import SegmentationFault


class CellCorruptor:
    """Fires once: overwrites a named bound cell at the first checkpoint."""

    def __init__(self, name, value, site_prefix="imaging.warp"):
        self.name = name
        self.value = value
        self.site_prefix = site_prefix
        self.fired = False

    @property
    def observing(self):
        return not self.fired

    def visit(self, ctx, window):
        if not window.site.startswith(self.site_prefix):
            return
        for binding in window.bindings:
            if binding.name == self.name and hasattr(binding, "cell"):
                binding.cell.value = self.value
                self.fired = True
                return


def run_warp(injector):
    src = (np.arange(30 * 40) % 251).astype(np.uint8).reshape(30, 40)
    canvas = blank(60, 70)
    coverage = blank(60, 70)
    ctx = ExecutionContext(injector=injector, watchdog_cycles=10**9)
    warp_into(canvas, coverage, src, translation(10, 10), ctx)
    return canvas, coverage


def golden_warp():
    class Nothing:
        observing = False

        def visit(self, ctx, window):  # pragma: no cover
            raise AssertionError

    return run_warp(Nothing())


class TestControlCorruption:
    def test_negative_row_segfaults(self):
        with pytest.raises(SegmentationFault):
            run_warp(CellCorruptor("row_ctr", -5))

    def test_huge_row_end_segfaults(self):
        """An inflated loop bound runs the stores off the canvas."""
        with pytest.raises(SegmentationFault):
            run_warp(CellCorruptor("row_end", 1 << 40))

    def test_backward_row_jump_masks(self):
        """Re-doing rows rewrites identical pixels: masked."""
        golden, _ = golden_warp()
        corrupted, _ = run_warp(CellCorruptor("row_ctr", 10))
        # The loop restarts from row 10 and re-warps; same final image.
        assert np.array_equal(golden, corrupted)

    def test_shortened_row_end_truncates_output(self):
        golden, _ = golden_warp()
        corrupted, coverage = run_warp(CellCorruptor("row_end", 20))
        assert not np.array_equal(golden, corrupted)
        assert np.count_nonzero(coverage[25:, :]) == 0

    def test_column_window_escape_segfaults(self):
        with pytest.raises(SegmentationFault):
            run_warp(CellCorruptor("col_hi", 10_000))

    def test_column_shrink_corrupts_silently(self):
        golden, _ = golden_warp()
        corrupted, _ = run_warp(CellCorruptor("col_hi", 30))
        assert not np.array_equal(golden, corrupted)
