"""Tests for image containers and the saturating cast."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imaging.image import (
    as_color,
    as_gray,
    blank,
    image_shape,
    images_equal,
    saturate_cast_u8,
)


class TestSaturateCast:
    def test_clamps_high(self):
        assert saturate_cast_u8(300.0) == 255

    def test_clamps_low(self):
        assert saturate_cast_u8(-5.0) == 0

    def test_rounds_half_up(self):
        assert saturate_cast_u8(10.5) == 11
        assert saturate_cast_u8(10.4) == 10

    def test_nan_becomes_zero(self):
        assert saturate_cast_u8(float("nan")) == 0

    def test_infinities(self):
        assert saturate_cast_u8(float("inf")) == 255
        assert saturate_cast_u8(float("-inf")) == 0

    def test_array_shape_preserved(self):
        arr = np.linspace(-50, 310, 24).reshape(4, 6)
        out = saturate_cast_u8(arr)
        assert out.shape == (4, 6)
        assert out.dtype == np.uint8

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(max_dims=2, max_side=16),
            elements=st.floats(allow_nan=True, allow_infinity=True, width=64),
        )
    )
    def test_always_in_range(self, arr):
        out = saturate_cast_u8(arr)
        assert out.dtype == np.uint8
        assert out.min() >= 0 and out.max() <= 255

    @given(st.integers(min_value=0, max_value=255))
    def test_identity_on_u8_range(self, value):
        assert saturate_cast_u8(float(value)) == value


class TestValidators:
    def test_as_gray_accepts(self):
        img = np.zeros((4, 5), dtype=np.uint8)
        assert as_gray(img) is img

    def test_as_gray_rejects_color(self):
        with pytest.raises(ValueError, match="grayscale"):
            as_gray(np.zeros((4, 5, 3), dtype=np.uint8))

    def test_as_gray_rejects_float(self):
        with pytest.raises(ValueError, match="uint8"):
            as_gray(np.zeros((4, 5), dtype=np.float64))

    def test_as_color_accepts(self):
        img = np.zeros((4, 5, 3), dtype=np.uint8)
        assert as_color(img) is img

    def test_as_color_rejects_gray(self):
        with pytest.raises(ValueError, match="color"):
            as_color(np.zeros((4, 5), dtype=np.uint8))


class TestBlank:
    def test_gray_shape(self):
        assert blank(3, 7).shape == (3, 7)

    def test_color_shape(self):
        assert blank(3, 7, channels=3).shape == (3, 7, 3)

    def test_fill_value(self):
        assert np.all(blank(2, 2, fill=9) == 9)

    @pytest.mark.parametrize("h,w", [(0, 5), (5, 0), (-1, 5)])
    def test_rejects_bad_dims(self, h, w):
        with pytest.raises(ValueError):
            blank(h, w)


class TestShapeAndEquality:
    def test_image_shape(self):
        assert image_shape(np.zeros((8, 9), dtype=np.uint8)) == (8, 9)
        assert image_shape(np.zeros((8, 9, 3), dtype=np.uint8)) == (8, 9)

    def test_image_shape_rejects_vector(self):
        with pytest.raises(ValueError):
            image_shape(np.zeros(5, dtype=np.uint8))

    def test_equal_images(self):
        a = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert images_equal(a, a.copy())

    def test_single_pixel_difference_detected(self):
        a = np.zeros((3, 4), dtype=np.uint8)
        b = a.copy()
        b[1, 2] = 1
        assert not images_equal(a, b)

    def test_shape_mismatch_is_unequal(self):
        assert not images_equal(
            np.zeros((3, 4), dtype=np.uint8), np.zeros((4, 3), dtype=np.uint8)
        )
