"""Tests for color conversion and the primitive rasterizers."""

import numpy as np
import pytest

from repro.imaging.color import gray_to_rgb, rgb_to_gray
from repro.imaging.draw import draw_line, fill_disk, fill_rect
from repro.runtime.context import ExecutionContext


class TestColor:
    def test_gray_to_rgb_replicates(self):
        gray = np.arange(6, dtype=np.uint8).reshape(2, 3)
        rgb = gray_to_rgb(gray)
        assert rgb.shape == (2, 3, 3)
        for channel in range(3):
            assert np.array_equal(rgb[:, :, channel], gray)

    def test_rgb_to_gray_weights(self):
        pure_red = np.zeros((1, 1, 3), dtype=np.uint8)
        pure_red[0, 0, 0] = 255
        assert rgb_to_gray(pure_red)[0, 0] == pytest.approx(76, abs=1)

    def test_roundtrip_on_gray_content(self):
        gray = np.arange(0, 250, 10, dtype=np.uint8).reshape(5, 5)
        assert np.array_equal(rgb_to_gray(gray_to_rgb(gray)), gray)

    def test_charges_cycles(self):
        ctx = ExecutionContext()
        rgb_to_gray(np.zeros((4, 4, 3), dtype=np.uint8), ctx=ctx)
        assert ctx.cycles > 0


class TestFillRect:
    def test_fills_interior(self):
        field = np.zeros((10, 10))
        fill_rect(field, 2, 3, 4, 5, 9.0)
        assert np.all(field[3:8, 2:6] == 9.0)
        assert field[2, 2] == 0.0

    def test_clips_at_borders(self):
        field = np.zeros((5, 5))
        fill_rect(field, -2, -2, 4, 4, 1.0)
        assert np.all(field[:2, :2] == 1.0)
        assert field[3, 3] == 0.0

    def test_fully_outside_is_noop(self):
        field = np.zeros((5, 5))
        fill_rect(field, 10, 10, 3, 3, 1.0)
        assert np.all(field == 0.0)


class TestFillDisk:
    def test_center_filled(self):
        field = np.zeros((11, 11))
        fill_disk(field, 5, 5, 3, 2.0)
        assert field[5, 5] == 2.0
        assert field[0, 0] == 0.0

    def test_radius_respected(self):
        field = np.zeros((11, 11))
        fill_disk(field, 5, 5, 2, 1.0)
        assert field[5, 7] == 1.0
        assert field[5, 8] == 0.0


class TestDrawLine:
    def test_horizontal_line(self):
        field = np.zeros((5, 20))
        draw_line(field, 0, 2, 19, 2, 1.0)
        assert np.all(field[2, :] == 1.0)

    def test_thickness(self):
        field = np.zeros((9, 9))
        draw_line(field, 0, 4, 8, 4, 1.0, thickness=3)
        assert np.all(field[3:6, 1:8] == 1.0)
