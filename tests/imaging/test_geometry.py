"""Tests for homogeneous 2-D geometry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.imaging.geometry import (
    apply_transform,
    identity,
    invert_transform,
    is_affine,
    normalize_homography,
    project_corners,
    projected_bounds,
    rotation,
    scaling,
    translation,
    validate_homography,
)
from repro.runtime.errors import DegenerateModelError

finite_offsets = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestConstructors:
    def test_identity_maps_points_unchanged(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(apply_transform(identity(), pts), pts)

    @given(finite_offsets, finite_offsets)
    def test_translation_moves_origin(self, tx, ty):
        mapped = apply_transform(translation(tx, ty), np.array([[0.0, 0.0]]))
        assert np.allclose(mapped, [[tx, ty]])

    def test_scaling_isotropic_default(self):
        mapped = apply_transform(scaling(2.0), np.array([[3.0, 4.0]]))
        assert np.allclose(mapped, [[6.0, 8.0]])

    def test_rotation_quarter_turn(self):
        mapped = apply_transform(rotation(np.pi / 2), np.array([[1.0, 0.0]]))
        assert np.allclose(mapped, [[0.0, 1.0]], atol=1e-12)

    def test_rotation_about_center_fixes_center(self):
        center = (5.0, -2.0)
        mapped = apply_transform(rotation(1.0, center), np.array([center]))
        assert np.allclose(mapped, [center], atol=1e-12)


class TestComposition:
    @given(finite_offsets, finite_offsets, st.floats(min_value=-3, max_value=3))
    def test_invert_roundtrip(self, tx, ty, angle):
        mat = translation(tx, ty) @ rotation(angle)
        pts = np.array([[1.0, 2.0], [-4.0, 0.5], [10.0, -10.0]])
        roundtrip = apply_transform(invert_transform(mat), apply_transform(mat, pts))
        assert np.allclose(roundtrip, pts, atol=1e-8)

    def test_composition_order(self):
        mat = translation(10, 0) @ scaling(2.0)  # scale first, then translate
        mapped = apply_transform(mat, np.array([[1.0, 1.0]]))
        assert np.allclose(mapped, [[12.0, 2.0]])


class TestValidation:
    def test_normalize_scales_pivot(self):
        mat = 3.0 * identity()
        assert np.allclose(normalize_homography(mat), identity())

    def test_normalize_rejects_zero_pivot(self):
        mat = identity()
        mat[2, 2] = 0.0
        with pytest.raises(DegenerateModelError):
            normalize_homography(mat)

    def test_validate_rejects_nan(self):
        mat = identity()
        mat[0, 1] = np.nan
        with pytest.raises(DegenerateModelError):
            validate_homography(mat)

    def test_validate_rejects_rank_deficient(self):
        mat = identity()
        mat[1, 1] = 0.0
        mat[1, 0] = 0.0
        mat[0, 1] = 0.0
        mat[0, 0] = 0.0
        with pytest.raises(DegenerateModelError):
            validate_homography(mat)

    def test_validate_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            validate_homography(np.eye(2))

    def test_invert_rejects_singular(self):
        mat = np.zeros((3, 3))
        mat[2, 2] = 1.0
        with pytest.raises(DegenerateModelError):
            invert_transform(mat)


class TestApplyTransform:
    def test_rejects_bad_point_shape(self):
        with pytest.raises(ValueError):
            apply_transform(identity(), np.zeros((2, 3)))

    def test_point_at_infinity(self):
        mat = identity()
        mat[2, 0] = 1.0
        mat[2, 2] = 0.0
        with pytest.raises(DegenerateModelError):
            apply_transform(mat, np.array([[0.0, 0.0]]))

    def test_perspective_division(self):
        mat = identity()
        mat[2, 0] = 0.01
        mapped = apply_transform(mat, np.array([[100.0, 50.0]]))
        assert np.allclose(mapped, [[50.0, 25.0]])


class TestProjection:
    def test_project_corners_identity(self):
        corners = project_corners(identity(), width=10, height=6)
        assert np.allclose(corners, [[0, 0], [9, 0], [9, 5], [0, 5]])

    def test_projected_bounds_translation(self):
        bounds = projected_bounds(translation(5, 7), width=10, height=6)
        assert bounds == pytest.approx((5.0, 7.0, 14.0, 12.0))

    def test_is_affine(self):
        assert is_affine(translation(1, 2) @ rotation(0.3))
        perspective = identity()
        perspective[2, 0] = 0.01
        assert not is_affine(perspective)
