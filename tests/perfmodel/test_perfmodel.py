"""Tests for the cost model, IPC/energy estimates and profile reporting."""

import pytest

from repro.perfmodel.cost import KERNEL_CYCLES, InstructionMix, kernel_cost, mix_for_scope
from repro.perfmodel.energy import estimate_from_profile
from repro.perfmodel.profile import (
    bucket_for_scope,
    execution_profile,
    hot_function_fraction,
    library_fraction,
)
from repro.runtime.context import CostProfile


class TestCostTable:
    def test_all_costs_positive(self):
        assert all(cost > 0 for cost in KERNEL_CYCLES.values())

    def test_kernel_cost_lookup(self):
        assert kernel_cost("warp.px") == KERNEL_CYCLES["warp.px"]

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            kernel_cost("nonexistent.kernel")

    def test_matching_is_per_pair(self):
        # The KDS lever: matching must be charged per descriptor pair.
        assert "match.pair" in KERNEL_CYCLES


class TestInstructionMix:
    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            InstructionMix(0.5, 0.5, 0.5, 0.5, ipc=1.0)

    def test_longest_prefix_wins(self):
        warp_mix = mix_for_scope("imaging.warp.warp_perspective_invoker")
        generic = mix_for_scope("imaging.io.something")
        assert warp_mix.fp_ops > generic.fp_ops

    def test_unknown_scope_gets_toplevel(self):
        assert mix_for_scope("completely.unknown") == mix_for_scope("<toplevel>")


class TestEnergyEstimate:
    def _profile(self):
        profile = CostProfile()
        profile.charge("imaging.warp.warp_perspective_invoker", 600_000)
        profile.charge("vision.matching.hamming", 300_000)
        profile.charge("summarize.pipeline.frame", 100_000)
        return profile

    def test_basic_quantities(self):
        estimate = estimate_from_profile(self._profile())
        assert estimate.cycles == 1_000_000
        assert 1.0 < estimate.ipc < 2.0
        assert estimate.time_s > 0
        assert estimate.energy_j == pytest.approx(estimate.power_w * estimate.time_s)

    def test_normalization(self):
        estimate = estimate_from_profile(self._profile())
        normalized = estimate.normalized_to(estimate)
        assert normalized == {"ipc": 1.0, "time": 1.0, "energy": 1.0}

    def test_half_workload_half_energy(self):
        full = estimate_from_profile(self._profile())
        half_profile = CostProfile()
        for scope, cycles in self._profile().by_scope().items():
            half_profile.charge(scope, cycles // 2)
        half = estimate_from_profile(half_profile)
        assert half.normalized_to(full)["time"] == pytest.approx(0.5)
        assert half.normalized_to(full)["energy"] == pytest.approx(0.5, abs=0.01)

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            estimate_from_profile(CostProfile())


class TestProfileReport:
    def test_bucket_mapping(self):
        name, is_lib = bucket_for_scope("imaging.warp.warp_perspective_invoker")
        assert name == "warpPerspectiveInvoker" and is_lib
        name, is_lib = bucket_for_scope("summarize.pipeline.frame")
        assert not is_lib

    def test_fractions_sum_to_one(self):
        profile = CostProfile()
        profile.charge("imaging.warp.warp_perspective_invoker", 500)
        profile.charge("vision.fast.detect", 300)
        profile.charge("summarize.pipeline.frame", 200)
        lines = execution_profile(profile)
        assert sum(line.fraction for line in lines) == pytest.approx(1.0)
        assert lines[0].bucket == "warpPerspectiveInvoker"  # sorted by cycles

    def test_hot_and_library_fractions(self):
        profile = CostProfile()
        profile.charge("imaging.warp.warp_perspective_invoker", 500)
        profile.charge("imaging.warp.remap_bilinear", 100)
        profile.charge("summarize.pipeline.frame", 400)
        assert hot_function_fraction(profile) == pytest.approx(0.6)
        assert library_fraction(profile) == pytest.approx(0.6)
