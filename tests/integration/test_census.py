"""Register-file occupancy census over the real pipeline.

Validates the calibration properties the fault model relies on (see
docs/fault_model.md): most GPR slots hold live values at any instant,
a large share of them are pointers, and FPR occupancy is low — the
structural facts behind the paper-shaped Fig. 10 profile.
"""

import pytest

from repro.faultinject.injector import CensusProbe
from repro.faultinject.registers import RegKind, Role
from repro.runtime.context import ExecutionContext
from repro.summarize import baseline_config, run_vs


@pytest.fixture(scope="module")
def census():
    from repro.video.synthetic import make_input2

    stream = make_input2(n_frames=12)
    probe = CensusProbe()
    ctx = ExecutionContext(injector=probe)
    run_vs(stream, baseline_config(), ctx)
    return probe.census


class TestGPROccupancy:
    def test_samples_collected(self, census):
        assert census.samples > 100

    def test_majority_of_gprs_live(self, census):
        """At a random instant, most GPR slots hold a live value."""
        assert census.live_fraction(RegKind.GPR) > 0.5

    def test_addresses_are_a_large_share(self, census):
        """Pointers occupy a large slice of the live register file —
        the precondition for the paper's ~40% GPR crash rate."""
        assert census.role_fraction(RegKind.GPR, Role.ADDRESS) > 0.25

    def test_control_state_present(self, census):
        assert census.role_fraction(RegKind.GPR, Role.CONTROL) > 0.05


class TestFPROccupancy:
    def test_fprs_sparsely_used(self, census):
        """FP registers are short-lived pixel math: low live occupancy —
        the mechanism behind the paper's 99.7% FPR masking."""
        assert census.live_fraction(RegKind.FPR) < 0.3

    def test_fpr_below_gpr(self, census):
        assert census.live_fraction(RegKind.FPR) < census.live_fraction(RegKind.GPR)
