"""Cross-module property-based tests on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.geometry import apply_transform, rotation, scaling, translation
from repro.imaging.image import saturate_cast_u8
from repro.imaging.warp import warp_perspective
from repro.quality.metrics import egregiousness_degree, relative_l2_norm
from repro.runtime.context import ExecutionContext
from repro.vision.affine import estimate_affine
from repro.vision.homography import estimate_homography

transform_params = st.tuples(
    st.floats(min_value=-20, max_value=20),  # tx
    st.floats(min_value=-20, max_value=20),  # ty
    st.floats(min_value=-0.5, max_value=0.5),  # angle
    st.floats(min_value=0.7, max_value=1.4),  # scale
)


@st.composite
def planted_transforms(draw):
    tx, ty, angle, scale = draw(transform_params)
    return translation(tx, ty) @ rotation(angle) @ scaling(scale)


class TestEstimationRoundTrips:
    @given(planted_transforms())
    @settings(max_examples=30, deadline=None)
    def test_homography_recovers_similarity(self, mat):
        rng = np.random.default_rng(0)
        src = rng.uniform(0, 100, (16, 2))
        dst = apply_transform(mat, src)
        estimated = estimate_homography(src, dst)
        assert np.allclose(estimated, mat / mat[2, 2], atol=1e-5)

    @given(planted_transforms())
    @settings(max_examples=30, deadline=None)
    def test_affine_recovers_similarity(self, mat):
        rng = np.random.default_rng(1)
        src = rng.uniform(0, 100, (12, 2))
        dst = apply_transform(mat, src)
        estimated = estimate_affine(src, dst)
        assert np.allclose(estimated, mat, atol=1e-6)


class TestWarpProperties:
    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_integer_translation_is_lossless(self, tx, ty):
        tx, ty = round(tx), round(ty)
        rng = np.random.default_rng(2)
        img = rng.integers(0, 256, (30, 40)).astype(np.uint8)
        ctx = ExecutionContext()
        out = warp_perspective(img, translation(tx, ty), (60, 70), ctx)
        y0, x0 = max(0, ty), max(0, tx)
        src_y0, src_x0 = max(0, -ty), max(0, -tx)
        copied_h = min(30 - src_y0, 60 - y0)
        copied_w = min(40 - src_x0, 70 - x0)
        if copied_h > 0 and copied_w > 0:
            assert np.array_equal(
                out[y0 : y0 + copied_h, x0 : x0 + copied_w],
                img[src_y0 : src_y0 + copied_h, src_x0 : src_x0 + copied_w],
            )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_warp_output_is_valid_image(self, seed):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (20, 25)).astype(np.uint8)
        mat = translation(rng.uniform(-5, 5), rng.uniform(-5, 5)) @ rotation(
            rng.uniform(-0.4, 0.4)
        )
        ctx = ExecutionContext()
        out = warp_perspective(img, mat, (40, 50), ctx)
        assert out.dtype == np.uint8
        assert out.shape == (40, 50)


class TestQualityMetricProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_rel_l2_nonnegative_and_zero_on_self(self, seed):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (10, 10)).astype(np.uint8)
        assert relative_l2_norm(img, img) == 0.0

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_rel_l2_symmetric_in_diff(self, seed):
        """Corrupting more pixels never decreases the metric."""
        rng = np.random.default_rng(seed)
        golden = rng.integers(60, 196, (12, 12)).astype(np.uint8)
        one = golden.copy()
        one[0, 0] = saturate_cast_u8(float(golden[0, 0]) + 200.0)
        many = one.copy()
        many[5:9, 5:9] = 255 - many[5:9, 5:9] // 2 + 100  # will clip
        many = saturate_cast_u8(many.astype(float))
        assert relative_l2_norm(golden, many) >= relative_l2_norm(golden, one) - 1e-9

    @given(st.floats(min_value=0, max_value=300))
    def test_ed_consistent_with_limit(self, value):
        ed = egregiousness_degree(value)
        if value > 100.0:
            assert ed is None
        else:
            assert ed == int(np.floor(value))
