"""End-to-end determinism and cross-component consistency checks."""

import numpy as np
import pytest

from repro.perfmodel.energy import estimate_from_profile
from repro.perfmodel.profile import execution_profile
from repro.quality import compare_outputs
from repro.runtime.context import CostProfile, ExecutionContext
from repro.summarize import (
    baseline_config,
    golden_run,
    kds_config,
    rfd_config,
    run_vs,
    sm_config,
)


class TestDeterminism:
    def test_golden_outputs_bitwise_stable(self, tiny_stream1):
        outputs = []
        for _ in range(3):
            ctx = ExecutionContext()
            outputs.append(run_vs(tiny_stream1, baseline_config(), ctx).panorama)
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[1], outputs[2])

    def test_cycle_counts_stable(self, tiny_stream1):
        cycles = []
        for _ in range(2):
            ctx = ExecutionContext()
            run_vs(tiny_stream1, baseline_config(), ctx)
            cycles.append(ctx.cycles)
        assert cycles[0] == cycles[1]

    def test_profile_and_plain_context_agree(self, tiny_stream1):
        plain = ExecutionContext()
        run_vs(tiny_stream1, baseline_config(), plain)
        profiled = ExecutionContext(profile=CostProfile())
        run_vs(tiny_stream1, baseline_config(), profiled)
        assert plain.cycles == profiled.cycles

    @pytest.mark.parametrize("factory", [rfd_config, kds_config, sm_config])
    def test_approximations_deterministic(self, tiny_stream1, factory):
        first = run_vs(tiny_stream1, factory(), ExecutionContext()).panorama
        second = run_vs(tiny_stream1, factory(), ExecutionContext()).panorama
        assert np.array_equal(first, second)


class TestCrossComponentConsistency:
    def test_energy_model_consumes_pipeline_profile(self, tiny_stream2):
        golden = golden_run(tiny_stream2, baseline_config())
        estimate = estimate_from_profile(golden.profile)
        assert estimate.cycles == golden.total_cycles
        assert 1.0 < estimate.ipc < 2.0

    def test_profile_buckets_cover_all_cycles(self, tiny_stream2):
        golden = golden_run(tiny_stream2, baseline_config())
        lines = execution_profile(golden.profile)
        assert sum(line.cycles for line in lines) == golden.total_cycles

    def test_quality_metric_on_real_outputs(self, tiny_stream1):
        base = golden_run(tiny_stream1, baseline_config())
        approx = golden_run(tiny_stream1, sm_config())
        quality = compare_outputs(base.output, approx.output)
        assert np.isfinite(quality.relative_l2_norm) or quality.egregious

    def test_approximations_actually_differ_from_baseline(self, tiny_stream1):
        base = golden_run(tiny_stream1, baseline_config())
        rfd = golden_run(tiny_stream1, rfd_config(drop_fraction=0.2))
        # RFD removes frames, so the runs cannot be byte-identical
        # unless the dropped frames were all discarded anyway.
        assert (
            rfd.result.frames_stitched + rfd.result.frames_discarded
            < base.result.frames_stitched + base.result.frames_discarded
        )


class TestWatchdogIntegration:
    def test_tight_watchdog_hangs_pipeline(self, tiny_stream1):
        from repro.runtime.errors import HangDetected

        golden = golden_run(tiny_stream1, baseline_config())
        ctx = ExecutionContext(watchdog_cycles=golden.total_cycles // 4)
        with pytest.raises(HangDetected):
            run_vs(tiny_stream1, baseline_config(), ctx)
