"""Integration tests: injected VS runs produce the designed outcome mix.

These exercise the full stack — synthetic video, VS pipeline, register
model, address space, monitor — with small but real campaigns.
"""

import numpy as np
import pytest

from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.outcomes import Outcome
from repro.faultinject.registers import RegKind
from repro.runtime.context import ExecutionContext
from repro.summarize.golden import golden_run
from repro.summarize.pipeline import run_vs


@pytest.fixture(scope="module")
def campaign_setup():
    """A golden run and workload over a very small input."""
    from repro.summarize.config import VSConfig
    from repro.video.synthetic import make_input2

    stream = make_input2(n_frames=10)
    config = VSConfig()
    golden = golden_run(stream, config, use_cache=False)

    def workload(ctx: ExecutionContext) -> np.ndarray:
        return run_vs(stream, config, ctx).panorama

    return workload, golden


class TestGPRCampaign:
    @pytest.fixture(scope="class")
    def gpr_campaign(self, campaign_setup):
        workload, golden = campaign_setup
        config = CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=17)
        return run_campaign(workload, golden.output, golden.total_cycles, config)

    def test_all_runs_classified(self, gpr_campaign):
        assert gpr_campaign.counts.total == 60

    def test_crashes_present(self, gpr_campaign):
        """GPR flips must produce a substantial crash population."""
        assert gpr_campaign.counts.crash >= 10

    def test_masking_present(self, gpr_campaign):
        assert gpr_campaign.counts.masked >= 15

    def test_crashes_dominated_by_segfaults(self, gpr_campaign):
        assert gpr_campaign.counts.segv_fraction_of_crashes() > 0.5

    def test_histograms_complete(self, gpr_campaign):
        assert gpr_campaign.register_histogram.sum() == 60
        assert gpr_campaign.bit_histogram.sum() == 60


class TestFPRCampaign:
    def test_fpr_overwhelmingly_masked(self, campaign_setup):
        workload, golden = campaign_setup
        config = CampaignConfig(n_injections=40, kind=RegKind.FPR, seed=23)
        campaign = run_campaign(workload, golden.output, golden.total_cycles, config)
        # Paper Section VI-A: FPR injections masked >= 99.7%; at this
        # tiny sample we require a conservative supermajority.
        assert campaign.counts.rate(Outcome.MASKED) >= 0.9
        assert campaign.counts.crash == 0


class TestReproducibility:
    def test_identical_campaigns(self, campaign_setup):
        workload, golden = campaign_setup
        config = CampaignConfig(n_injections=25, kind=RegKind.GPR, seed=5)
        first = run_campaign(workload, golden.output, golden.total_cycles, config)
        second = run_campaign(workload, golden.output, golden.total_cycles, config)
        assert [r.outcome for r in first.results] == [r.outcome for r in second.results]

    def test_different_seeds_differ(self, campaign_setup):
        workload, golden = campaign_setup
        base = CampaignConfig(n_injections=25, kind=RegKind.GPR, seed=5)
        other = CampaignConfig(n_injections=25, kind=RegKind.GPR, seed=6)
        first = run_campaign(workload, golden.output, golden.total_cycles, base)
        second = run_campaign(workload, golden.output, golden.total_cycles, other)
        assert [r.plan for r in first.results] != [r.plan for r in second.results]


class TestSDCQualityPath:
    def test_sdc_outputs_assessable(self, campaign_setup):
        from repro.quality import compare_outputs

        workload, golden = campaign_setup
        config = CampaignConfig(n_injections=60, kind=RegKind.GPR, seed=31)
        campaign = run_campaign(workload, golden.output, golden.total_cycles, config)
        for result in campaign.sdc_results:
            quality = compare_outputs(golden.output, result.output)
            assert quality.relative_l2_norm >= 0.0
