#!/usr/bin/env python3
"""Can a hot-function benchmark stand in for the full application?

Reproduces the paper's Section V-C / VI-C case study: build WP, a toy
application around the pipeline's hottest function (the perspective
warp), inject faults into the warp's registers both inside the running
VS application and in standalone WP, and compare the outcome profiles.

The punchline — visible in the printed rates — is that the full
workflow masks corruptions the toy benchmark reports as SDCs, because
later frames are stitched over the corrupted area.  Resiliency studies
therefore need end-to-end workloads.

Run:  python examples/hot_function_study.py [n_injections]
"""

import sys

from repro.analysis.hot import run_hot_function_study
from repro.faultinject.outcomes import Outcome
from repro.summarize import baseline_config
from repro.video import make_input2


def main(n_injections: int = 200) -> None:
    stream = make_input2(n_frames=32)
    print(f"Running the hot-function study ({n_injections} injections per side)...")
    study = run_hot_function_study(stream, baseline_config(), n_injections, seed=99)

    def show(label, counts):
        print(f"  {label:22s} n={counts.total:4d}  "
              f"mask={counts.rate(Outcome.MASKED):6.1%}  "
              f"sdc={counts.rate(Outcome.SDC):6.1%}  "
              f"crash={counts.rate(Outcome.CRASH):6.1%}  "
              f"hang={counts.rate(Outcome.HANG):6.1%}")

    print("\nOutcome rates for injections into the warp function's registers:")
    show("VS (end-to-end)", study.vs_counts)
    show("WP (standalone)", study.wp_counts)
    print(f"\ncompositional masking gain (VS - WP): {study.masking_gain():+.1%}")
    print("The standalone benchmark over-reports SDCs: corruptions that the")
    print("VS pipeline later stitches over are terminal for WP.  Estimating an")
    print("application's resiliency from its kernels alone is sub-optimal.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    main(n)
