#!/usr/bin/env python3
"""Grade the severity of Silent Data Corruptions with the paper's metric.

Runs a GPR injection campaign, collects every SDC's corrupted panorama,
aligns it against the golden output, computes the relative L2 norm and
Egregiousness Degree (ED), and prints the cumulative quality
distribution — the per-SDC version of the paper's Fig. 12.  The worst
SDC is saved next to the golden output for visual comparison.

Run:  python examples/sdc_quality_analysis.py [n_injections]
"""

import sys
from pathlib import Path

from repro.faultinject import CampaignConfig, RegKind, run_campaign
from repro.imaging.io import save_pgm
from repro.quality import build_curve, compare_outputs
from repro.summarize import baseline_config, golden_run, run_vs
from repro.video import make_input2

OUTPUT_DIR = Path(__file__).resolve().parent / "output" / "sdc_quality"


def main(n_injections: int = 150) -> None:
    stream = make_input2(n_frames=32)
    config = baseline_config()
    golden = golden_run(stream, config)

    def workload(ctx):
        return run_vs(stream, config, ctx).panorama

    print(f"Running {n_injections} GPR injections to harvest SDCs...")
    campaign = run_campaign(
        workload,
        golden.output,
        golden.total_cycles,
        CampaignConfig(n_injections=n_injections, kind=RegKind.GPR, seed=7),
    )
    sdc_runs = campaign.sdc_results
    print(f"  outcomes: {campaign.rates()}")
    print(f"  harvested {len(sdc_runs)} SDCs")
    if not sdc_runs:
        print("  no SDCs at this sample size; re-run with more injections")
        return

    qualities = []
    worst = None
    for result in sdc_runs:
        quality = compare_outputs(golden.output, result.output)
        qualities.append(quality)
        if worst is None or (
            quality.relative_l2_norm > worst[0].relative_l2_norm
        ):
            worst = (quality, result)

    curve = build_curve("VS", qualities)
    print("\nCumulative ED distribution (percent of SDCs at or below an ED):")
    for ed in (1, 2, 5, 10, 20, 50, 100):
        print(f"  ED <= {ed:3d}: {curve.fraction_at_or_below(ed):5.1f}%")
    print(f"  egregious (rel L2 > 100%): {curve.egregious_count}")

    benign = curve.fraction_at_or_below(10)
    print(f"\n{benign:.0f}% of SDCs have ED < 10: if a 10% output deviation is")
    print("acceptable for the mission, those error sites need no protection")
    print("(the paper's argument for cheap, selective hardening).")

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    save_pgm(OUTPUT_DIR / "golden.pgm", golden.output)
    worst_quality, worst_result = worst
    save_pgm(OUTPUT_DIR / "worst_sdc.pgm", worst_result.output)
    print(f"\nWorst SDC (rel L2 = {worst_quality.relative_l2_norm:.1f}%) and golden "
          f"output written to {OUTPUT_DIR}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    main(n)
