#!/usr/bin/env python3
"""Selective protection: how much hardening does the mission really need?

Implements the paper's closing argument (Section VI-D): crashes are
caught by cheap symptom detectors, and most SDCs are benign under the
ED metric — so if the mission tolerates a given output deviation, only
a small slice of the application needs expensive redundancy.

The script runs a GPR campaign, grades every SDC, and prints the
modelled protection overhead across a sweep of ED tolerances.

Run:  python examples/protection_planning.py [n_injections]
"""

import sys

import numpy as np

from repro.faultinject import CampaignConfig, RegKind, run_campaign
from repro.protection import full_duplication_overhead, plan_protection, symptom_coverage
from repro.quality import compare_outputs
from repro.runtime.context import ExecutionContext
from repro.summarize import baseline_config, golden_run, run_vs
from repro.video import make_input2


def main(n_injections: int = 200) -> None:
    stream = make_input2(n_frames=32)
    config = baseline_config()
    golden = golden_run(stream, config)

    def workload(ctx: ExecutionContext) -> np.ndarray:
        return run_vs(stream, config, ctx).panorama

    print(f"Running {n_injections} GPR injections...")
    campaign = run_campaign(
        workload,
        golden.output,
        golden.total_cycles,
        CampaignConfig(n_injections=n_injections, kind=RegKind.GPR, seed=13),
    )
    coverage = symptom_coverage(campaign)
    print(f"  outcomes: {campaign.rates()}")
    print(f"  symptom detectors catch {coverage.detector_coverage:.0%} of harmful outcomes "
          f"at ~0.5% runtime cost")

    print("Grading every SDC with the relative-L2/ED metric...")
    qualities = {
        index: compare_outputs(golden.output, result.output)
        for index, result in enumerate(campaign.results)
        if result.is_sdc and result.output is not None
    }

    print(f"\n{'ED tolerance':>12s} {'tolerable SDCs':>15s} {'overhead':>10s}   vs full duplication")
    for tolerance in (0, 2, 5, 10, 20, 50):
        plan = plan_protection(campaign, qualities, golden.profile, ed_tolerance=tolerance)
        cls = plan.classification
        print(
            f"{tolerance:12d} {cls.tolerable_sdc:7d}/{cls.sdc_total:<7d} "
            f"{plan.runtime_overhead:9.1%}   ({full_duplication_overhead():.0%})"
        )

    print("\nReading: as the mission's tolerable output deviation grows, the")
    print("share of SDC sites needing protection collapses — the paper's case")
    print("for resiliency-aware approximation without blanket redundancy.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    main(n)
