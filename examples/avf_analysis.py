#!/usr/bin/env python3
"""Which registers, bits and value roles are actually vulnerable?

Derives empirical Architectural Vulnerability Factors (AVF — the lens
of Mukherjee et al. that the paper's methodology builds on) from a GPR
injection campaign: per register, per bit bucket, and per value role
(pointer / loop state / data / dead).

Run:  python examples/avf_analysis.py [n_injections]
"""

import sys

from repro.analysis import bit_avf, register_avf, role_avf, sparkline, workload_avf
from repro.faultinject import CampaignConfig, RegKind, run_campaign
from repro.summarize import baseline_config, golden_run, run_vs
from repro.video import make_input1


def main(n_injections: int = 300) -> None:
    stream = make_input1(n_frames=32)
    config = baseline_config()
    golden = golden_run(stream, config)

    def workload(ctx):
        return run_vs(stream, config, ctx).panorama

    print(f"Running {n_injections} GPR injections...")
    campaign = run_campaign(
        workload,
        golden.output,
        golden.total_cycles,
        CampaignConfig(n_injections=n_injections, kind=RegKind.GPR, seed=21,
                       keep_sdc_outputs=False),
    )

    overall = workload_avf(campaign)
    lo, hi = overall.confidence_interval
    print(f"\nworkload AVF (GPR): {overall.avf:.1%}  [95% CI {lo:.1%} - {hi:.1%}]")

    print("\nAVF by register (sparkline over r0..r31):")
    estimates = register_avf(campaign)
    print("  [" + sparkline([e.avf for e in estimates], width=32) + "]")
    ranked = sorted(estimates, key=lambda e: -e.avf)[:5]
    for est in ranked:
        print(f"    {est.label}: AVF {est.avf:.0%} ({est.affected}/{est.total})")

    print("\nAVF by bit bucket:")
    for est in bit_avf(campaign):
        print(f"    {est.label:12s} AVF {est.avf:5.0%} ({est.affected}/{est.total})")

    print("\nAVF by value role:")
    for est in role_avf(campaign):
        print(f"    {est.label:8s} AVF {est.avf:5.0%} ({est.affected}/{est.total})")

    print("\nReading: pointer (address) registers dominate vulnerability —")
    print("their flips leave the mapped address space — while flips into")
    print("dead registers never matter; high bits hurt more than low bits.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(n)
