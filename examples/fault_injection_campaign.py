#!/usr/bin/env python3
"""Run a statistical fault-injection campaign against the VS application.

Reproduces the paper's methodology end to end on a small scale: take a
golden run, inject one single-bit register flip per run at a uniformly
random (cycle, register, bit) site, classify every outcome (Mask / SDC /
Crash / Hang), and print the resiliency profile for both GPR and FPR
register files.

Run:  python examples/fault_injection_campaign.py [n_injections]
"""

import sys

from repro.faultinject import CampaignConfig, RegKind, run_campaign
from repro.summarize import baseline_config, golden_run, run_vs
from repro.video import make_input1


def main(n_injections: int = 80) -> None:
    print(f"Preparing golden run (Input 1, {n_injections} injections per register file)...")
    stream = make_input1(n_frames=32)
    config = baseline_config()
    golden = golden_run(stream, config)
    print(f"  golden cycles: {golden.total_cycles / 1e6:.1f}M, "
          f"output {golden.output.shape[1]}x{golden.output.shape[0]}")

    def workload(ctx):
        return run_vs(stream, config, ctx).panorama

    for kind in (RegKind.GPR, RegKind.FPR):
        print(f"\nInjecting {n_injections} single-bit flips into {kind.value.upper()}s...")
        campaign = run_campaign(
            workload,
            golden.output,
            golden.total_cycles,
            CampaignConfig(n_injections=n_injections, kind=kind, seed=42),
        )
        counts = campaign.counts
        print(f"  Mask:  {counts.masked:4d} ({100 * counts.masked / counts.total:5.1f}%)")
        print(f"  SDC:   {counts.sdc:4d} ({100 * counts.sdc / counts.total:5.1f}%)")
        print(f"  Crash: {counts.crash:4d} ({100 * counts.crash / counts.total:5.1f}%)"
              f"  [segv {counts.crash_segv}, abort {counts.crash_abort}]")
        print(f"  Hang:  {counts.hang:4d} ({100 * counts.hang / counts.total:5.1f}%)")
        hit = sum(1 for r in campaign.results if r.record.hit_live_value)
        print(f"  flips that corrupted live state: {hit}/{counts.total}")

    print("\nExpected shape (paper Fig. 10): GPRs crash often (pointer corruption")
    print("segfaults) with few SDCs; FPR flips are almost always masked by the")
    print("saturating uint8 pixel cast and short floating-point lifetimes.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    main(n)
