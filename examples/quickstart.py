#!/usr/bin/env python3
"""Quickstart: summarize a synthetic UAV video into a panorama.

Generates a short aerial video with the synthetic camera, runs the
baseline VS algorithm, and writes the resulting mini-panoramas as PGM
images you can open in any viewer.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro.imaging.io import save_pgm
from repro.runtime.context import CostProfile, ExecutionContext
from repro.summarize import baseline_config, run_vs
from repro.video import make_input2

OUTPUT_DIR = Path(__file__).resolve().parent / "output" / "quickstart"


def main() -> None:
    print("Generating a synthetic aerial video (steady sweep, 48 frames)...")
    stream = make_input2(n_frames=48)

    print("Running the VS coverage-summarization pipeline...")
    profile = CostProfile()
    ctx = ExecutionContext(profile=profile)
    result = run_vs(stream, baseline_config(), ctx)

    print(f"  frames stitched:   {result.frames_stitched}")
    print(f"  frames discarded:  {result.frames_discarded}")
    print(f"  mini-panoramas:    {result.num_minis}")
    print(f"  modelled cycles:   {ctx.cycles / 1e6:.1f}M")

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    save_pgm(OUTPUT_DIR / "panorama.pgm", result.panorama)
    for index, mini in enumerate(result.minis):
        save_pgm(OUTPUT_DIR / f"mini_{index}.pgm", mini.cropped())
    print(f"Panorama written to {OUTPUT_DIR}/panorama.pgm "
          f"(+{result.num_minis} cropped mini-panoramas)")


if __name__ == "__main__":
    main()
