#!/usr/bin/env python3
"""Surveillance mission: trade output quality for energy with approximations.

Simulates the paper's motivating scenario: a UAV with a tight energy
budget must summarize its camera feed on board.  The script runs the
baseline VS algorithm and its three approximations (VS_RFD, VS_KDS,
VS_SM) over both mission profiles (busy flight / steady sweep), reports
modelled execution time and energy, and scores each approximate panorama
against the precise output using the paper's relative-L2 metric.

Run:  python examples/surveillance_mission.py
"""

from pathlib import Path

from repro.imaging.io import save_pgm
from repro.perfmodel.energy import estimate_from_profile
from repro.quality import compare_outputs
from repro.summarize import ALGORITHM_FACTORIES, config_for, golden_run
from repro.video import make_input1, make_input2

OUTPUT_DIR = Path(__file__).resolve().parent / "output" / "surveillance"


def main() -> None:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    missions = {
        "busy-flight": make_input1(n_frames=48),
        "steady-sweep": make_input2(n_frames=48),
    }

    for mission_name, stream in missions.items():
        print(f"\n=== mission: {mission_name} ({len(stream)} frames) ===")
        baseline = golden_run(stream, config_for("VS"))
        baseline_estimate = estimate_from_profile(baseline.profile)

        print(f"{'algorithm':10s} {'time':>8s} {'energy':>8s} {'rel-time':>9s} "
              f"{'quality (rel L2 vs VS)':>24s}")
        for algorithm in ALGORITHM_FACTORIES:
            golden = golden_run(stream, config_for(algorithm))
            estimate = estimate_from_profile(golden.profile)
            quality = compare_outputs(baseline.output, golden.output)
            rel = estimate.normalized_to(baseline_estimate)
            print(
                f"{algorithm:10s} {estimate.time_s * 1e3:7.1f}ms "
                f"{estimate.energy_j:7.3f}J {rel['time']:8.2f}x "
                f"{quality.relative_l2_norm:18.2f}%"
            )
            save_pgm(OUTPUT_DIR / f"{mission_name}_{algorithm}.pgm", golden.output)

        print(f"panoramas saved under {OUTPUT_DIR}")

    print("\nReading: on the busy flight the approximations save the most energy")
    print("(cascading frame discards) at a visible quality cost; on the steady")
    print("sweep the redundancy keeps quality high while VS_KDS still cuts the")
    print("quadratic matching work (the paper's Fig. 5 / Fig. 6 trade-off).")


if __name__ == "__main__":
    main()
