#!/usr/bin/env python3
"""Full UAV summarization: coverage panorama + moving-object tracks.

Reconstructs the paper's complete Fig. 2 workflow: a synthetic aerial
video with planted vehicles is summarized into a panorama, movers are
detected by registered frame differencing, tracked across frames, and
the tracks are overlaid on the panorama — "a comprehensive and concise
summarization of a whole UAV video".

Run:  python examples/event_summarization.py
"""

from pathlib import Path

import numpy as np

from repro.events import run_full_summarization
from repro.imaging.io import save_pgm
from repro.runtime.context import ExecutionContext
from repro.summarize import baseline_config
from repro.video import make_event_input

OUTPUT_DIR = Path(__file__).resolve().parent / "output" / "events"


def main() -> None:
    print("Generating a patrol video with 3 moving vehicles...")
    event_input = make_event_input(n_frames=40, n_objects=3)

    print("Running coverage + event summarization...")
    ctx = ExecutionContext()
    summary = run_full_summarization(event_input.stream, baseline_config(), ctx)

    coverage = summary.coverage
    print(f"  coverage: {coverage.frames_stitched} frames stitched into "
          f"{coverage.num_minis} mini-panorama(s)")
    detections = sum(len(d) for d in summary.detections_per_frame.values())
    print(f"  event branch: {detections} detections -> {summary.num_tracks} confirmed tracks")
    for track in summary.tracks:
        vx, vy = track.velocity()
        print(f"    track {track.track_id}: {len(track.points)} observations, "
              f"velocity ~({vx:+.1f}, {vy:+.1f}) px/frame")

    print("\nGround truth: planted movers")
    for obj in event_input.objects:
        print(f"    object {obj.object_id}: velocity ({obj.velocity_x:+.1f}, "
              f"{obj.velocity_y:+.1f}) px/frame, tone {obj.intensity:.0f}")

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    save_pgm(OUTPUT_DIR / "panorama.pgm", coverage.panorama)
    save_pgm(OUTPUT_DIR / "overlay.pgm", summary.overlay)
    changed = int(np.count_nonzero(summary.overlay != coverage.panorama))
    print(f"\nOverlay drawn ({changed} pixels changed); images in {OUTPUT_DIR}")


if __name__ == "__main__":
    main()
