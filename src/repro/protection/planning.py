"""Selective protection planning from SDC quality data.

The paper's closing argument (Section VI-D): "a large majority of the
SDC causing error-sites need not be protected if an error of 10% is
acceptable", so the cost of protecting the application is low.  This
module turns a campaign's SDC population plus an ED tolerance into a
protection plan:

* **benign** sites — masked outcomes: nothing to do;
* **symptomatic** sites — crashes/hangs: covered by cheap symptom
  detectors (a fixed small overhead);
* **tolerable SDC** sites — ED at or below the mission's tolerance:
  accepted without protection;
* **critical SDC** sites — ED above tolerance or egregious: protected
  by redundant execution of the code region the flip landed in
  (overhead modelled as the region's share of execution cycles,
  doubled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faultinject.campaign import CampaignResult
from repro.faultinject.outcomes import Outcome
from repro.quality.metrics import SDCQuality
from repro.runtime.context import CostProfile

#: Modelled overhead of always-on symptom detectors (fraction of runtime).
SYMPTOM_DETECTOR_OVERHEAD = 0.005

#: Modelled slowdown of duplicating a protected region.
DUPLICATION_FACTOR = 1.0  # the region's cycles are paid twice


@dataclass
class SiteClassification:
    """Error-site populations by protection need."""

    benign: int = 0
    symptomatic: int = 0
    tolerable_sdc: int = 0
    critical_sdc: int = 0
    critical_sites: list[str] = field(default_factory=list)  # checkpoint sites

    @property
    def total(self) -> int:
        """All classified injections."""
        return self.benign + self.symptomatic + self.tolerable_sdc + self.critical_sdc

    @property
    def sdc_total(self) -> int:
        """All silent corruptions."""
        return self.tolerable_sdc + self.critical_sdc

    @property
    def tolerable_fraction(self) -> float:
        """Share of SDCs that need no protection (the paper's headline)."""
        if self.sdc_total == 0:
            return 1.0
        return self.tolerable_sdc / self.sdc_total


@dataclass
class ProtectionPlan:
    """A selective-protection decision with its modelled overhead."""

    classification: SiteClassification
    ed_tolerance: int
    protected_scopes: dict[str, float]  # profile scope -> cycle fraction
    runtime_overhead: float  # modelled slowdown of the protected binary

    @property
    def protected_cycle_fraction(self) -> float:
        """Share of execution cycles that run duplicated."""
        return sum(self.protected_scopes.values())


def classify_sites(
    campaign: CampaignResult,
    sdc_qualities: dict[int, SDCQuality],
    ed_tolerance: int,
) -> SiteClassification:
    """Classify every injection of a campaign by protection need.

    ``sdc_qualities`` maps result indices (positions in
    ``campaign.results``) to the assessed quality of that SDC's output.
    """
    classification = SiteClassification()
    for index, result in enumerate(campaign.results):
        if result.outcome is Outcome.MASKED:
            classification.benign += 1
        elif result.outcome in (Outcome.CRASH, Outcome.HANG):
            classification.symptomatic += 1
        else:
            quality = sdc_qualities.get(index)
            if quality is None:
                # Unassessed SDCs are conservatively critical.
                classification.critical_sdc += 1
                if result.record.site:
                    classification.critical_sites.append(result.record.site)
            elif quality.egregious or (
                quality.egregious_degree is not None
                and quality.egregious_degree > ed_tolerance
            ):
                classification.critical_sdc += 1
                if result.record.site:
                    classification.critical_sites.append(result.record.site)
            else:
                classification.tolerable_sdc += 1
    return classification


def plan_protection(
    campaign: CampaignResult,
    sdc_qualities: dict[int, SDCQuality],
    profile: CostProfile,
    ed_tolerance: int = 10,
) -> ProtectionPlan:
    """Build a selective protection plan.

    Regions (profiling scopes) that produced critical SDCs are
    duplicated; everything else relies on symptom detectors and the
    mission's error tolerance.
    """
    classification = classify_sites(campaign, sdc_qualities, ed_tolerance)

    fractions = profile.fractions()
    protected: dict[str, float] = {}
    for site in classification.critical_sites:
        # A checkpoint site maps onto the profile scope(s) it prefixes.
        for scope, fraction in fractions.items():
            shared_prefix = scope.split(".")[0] == site.split(".")[0]
            if shared_prefix and scope not in protected:
                protected[scope] = fraction

    overhead = SYMPTOM_DETECTOR_OVERHEAD + DUPLICATION_FACTOR * sum(protected.values())
    return ProtectionPlan(
        classification=classification,
        ed_tolerance=ed_tolerance,
        protected_scopes=protected,
        runtime_overhead=overhead,
    )


def full_duplication_overhead() -> float:
    """The baseline alternative: duplicate everything (paper's 'high
    overhead' redundancy)."""
    return 1.0
