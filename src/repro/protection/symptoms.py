"""Symptom-based error detection model (SWAT-style).

The paper argues (Section V-D) that crashes "can be detected using low
cost symptom-based detectors and hence protecting error sites that
produce crashes incurs low overhead", while SDCs need expensive
redundancy.  This module models such detectors over campaign results:
fatal traps (segfault, abort) and watchdog hangs are *symptoms*; SDCs
are silent by definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faultinject.campaign import CampaignResult
from repro.faultinject.outcomes import Outcome


@dataclass(frozen=True)
class SymptomCoverage:
    """How much of a campaign's error population symptoms catch."""

    total_injections: int
    benign: int  # masked: no action needed
    symptomatic: int  # crash + hang: caught by cheap detectors
    silent: int  # SDCs: invisible to symptom detectors

    @property
    def detector_coverage(self) -> float:
        """Fraction of non-benign outcomes the detectors catch."""
        harmful = self.symptomatic + self.silent
        if harmful == 0:
            return 1.0
        return self.symptomatic / harmful

    @property
    def silent_fraction(self) -> float:
        """Fraction of all injections that end as silent corruptions."""
        if self.total_injections == 0:
            return 0.0
        return self.silent / self.total_injections


def symptom_coverage(campaign: CampaignResult) -> SymptomCoverage:
    """Evaluate symptom-based detection over a campaign."""
    benign = symptomatic = silent = 0
    for result in campaign.results:
        if result.outcome is Outcome.MASKED:
            benign += 1
        elif result.outcome is Outcome.SDC:
            silent += 1
        else:  # crash or hang: a visible symptom
            symptomatic += 1
    return SymptomCoverage(
        total_injections=len(campaign.results),
        benign=benign,
        symptomatic=symptomatic,
        silent=silent,
    )
