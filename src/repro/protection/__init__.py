"""Selective protection: symptom detectors + ED-driven planning."""

from repro.protection.planning import (
    DUPLICATION_FACTOR,
    SYMPTOM_DETECTOR_OVERHEAD,
    ProtectionPlan,
    SiteClassification,
    classify_sites,
    full_duplication_overhead,
    plan_protection,
)
from repro.protection.symptoms import SymptomCoverage, symptom_coverage

__all__ = [
    "SymptomCoverage",
    "symptom_coverage",
    "SiteClassification",
    "ProtectionPlan",
    "classify_sites",
    "plan_protection",
    "full_duplication_overhead",
    "SYMPTOM_DETECTOR_OVERHEAD",
    "DUPLICATION_FACTOR",
]
