"""Descriptor matching: brute-force Hamming with two matching policies.

* :func:`match_ratio` — the baseline VS policy (paper Section IV): for
  each key point the two nearest neighbours are found and the match is
  kept only when the nearest is sufficiently closer than the second
  nearest (Lowe's ratio test), which suppresses false positives.
* :func:`match_simple` — the VS_SM approximation: only the single
  nearest neighbour is computed, and the match is kept when its absolute
  Hamming distance is below a fixed bound.

Matching cost is quadratic in the number of key points — the lever the
VS_KDS approximation pulls by matching only a third of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import Cell, ExecutionContext

#: Lookup table: popcount of every byte value (fallback path and tests).
_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

#: Rows of the distance matrix computed per checkpoint batch.
_ROW_BATCH = 32

if hasattr(np, "bitwise_count"):  # numpy >= 2.0: hardware popcount

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word popcount of a uint64 array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0
    #: 16-bit lookup table: popcount of every uint16 value.
    _POPCOUNT16 = (
        _POPCOUNT[np.arange(65536) & 0xFF] + _POPCOUNT[np.arange(65536) >> 8]
    ).astype(np.uint8)

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word popcount via four 16-bit table gathers."""
        halves = _POPCOUNT16[np.ascontiguousarray(words).view(np.uint16)]
        return halves.reshape(*words.shape, 4).sum(axis=-1, dtype=np.uint8)


def _as_words(descriptors: np.ndarray) -> np.ndarray | None:
    """View packed uint8 descriptors as uint64 lanes (4 per 32 bytes).

    Returns ``None`` when no zero-copy view exists (odd widths or
    non-contiguous rows); callers then fall back to the per-byte table.
    A *view* is required — not a copy — so that in-place corruption of
    the descriptor tables by the fault injector stays visible.
    """
    if descriptors.shape[1] % 8 != 0:
        return None
    try:
        return descriptors.view(np.uint64)
    except ValueError:
        return None


@dataclass
class MatchSet:
    """Correspondences between two descriptor sets."""

    query_idx: np.ndarray  # (m,) int64 indices into the first set
    train_idx: np.ndarray  # (m,) int64 indices into the second set
    distance: np.ndarray  # (m,) int64 Hamming distances

    def __len__(self) -> int:
        return int(self.query_idx.shape[0])

    @staticmethod
    def empty() -> "MatchSet":
        """An empty match set."""
        zero = np.zeros(0, dtype=np.int64)
        return MatchSet(zero, zero.copy(), zero.copy())


def hamming_distance_matrix(
    first: np.ndarray,
    second: np.ndarray,
    ctx: ExecutionContext,
) -> np.ndarray:
    """Dense Hamming distances between two packed descriptor sets.

    ``first`` is ``(n1, 32) uint8``, ``second`` ``(n2, 32) uint8``;
    returns ``(n1, n2) int64``.
    """
    with telemetry.span("vision.match", ctx=ctx):
        return _hamming_distance_matrix(first, second, ctx)


def _hamming_distance_matrix(
    first: np.ndarray,
    second: np.ndarray,
    ctx: ExecutionContext,
) -> np.ndarray:
    n1 = first.shape[0]
    n2 = second.shape[0]
    if n1 == 0 or n2 == 0:
        return np.zeros((n1, n2), dtype=np.int64)

    first_words = _as_words(first)
    second_words = _as_words(second)
    distances = np.zeros((n1, n2), dtype=np.int64)
    row = Cell(0)
    row_end = Cell(n1)
    while row.value < row_end.value:
        start_hint = int(row.value)
        window = ctx.window("vision.matching.hamming")
        if window is not None:
            from repro.faultinject.registers import Role

            window.gpr_address("descA_ptr", first, byte_offset=start_hint * first.shape[1])
            window.gpr_address("descB_ptr", second)
            window.gpr_cell("match_row", row, role=Role.CONTROL)
            window.gpr_cell("match_rows_end", row_end, role=Role.CONTROL)
            window.gpr_array("dist_block", distances)
            ctx.checkpoint(window)

        start = int(row.value)
        stop = min(start + _ROW_BATCH, int(row_end.value))
        if start < 0 or stop > n1:
            # A corrupted row counter walks the loads off the table.
            from repro.runtime.errors import SegmentationFault

            raise SegmentationFault(start, "descriptor table overrun")
        if start >= stop:
            row.value = start + _ROW_BATCH
            continue

        with ctx.scope("vision.matching.hamming"):
            ctx.tick(kernel_cost("match.pair") * (stop - start) * n2)
            if first_words is not None and second_words is not None:
                # 4 uint64 lanes per descriptor instead of 32 byte gathers.
                xor = first_words[start:stop, np.newaxis, :] ^ second_words[np.newaxis, :, :]
                distances[start:stop] = _popcount_words(xor).sum(axis=2, dtype=np.int64)
            else:
                xor = first[start:stop, np.newaxis, :] ^ second[np.newaxis, :, :]
                distances[start:stop] = _POPCOUNT[xor].sum(axis=2, dtype=np.int64)
        row.value = stop

    return distances


def match_ratio(
    first: np.ndarray,
    second: np.ndarray,
    ctx: ExecutionContext,
    ratio: float = 0.75,
) -> MatchSet:
    """Two-nearest-neighbour matching with Lowe's ratio test."""
    distances = hamming_distance_matrix(first, second, ctx)
    if distances.size == 0 or distances.shape[1] < 2:
        return MatchSet.empty()

    with ctx.scope("vision.matching.select"):
        ctx.tick(kernel_cost("match.pair") * distances.shape[0])
        nearest = np.argmin(distances, axis=1)
        d1 = distances[np.arange(distances.shape[0]), nearest]
        masked = distances.copy()
        masked[np.arange(distances.shape[0]), nearest] = np.iinfo(np.int64).max
        d2 = masked.min(axis=1)
        good = d1 < ratio * d2

    query = np.nonzero(good)[0].astype(np.int64)
    return MatchSet(query, nearest[good].astype(np.int64), d1[good].astype(np.int64))


def match_simple(
    first: np.ndarray,
    second: np.ndarray,
    ctx: ExecutionContext,
    max_distance: int = 32,
) -> MatchSet:
    """VS_SM: single nearest neighbour with an absolute distance bound.

    Only near-perfect matches survive; identical-looking objects can
    still map to the wrong instance (the residual error source the paper
    notes for this approximation).
    """
    distances = hamming_distance_matrix(first, second, ctx)
    if distances.size == 0:
        return MatchSet.empty()

    with ctx.scope("vision.matching.select"):
        ctx.tick(kernel_cost("match.pair") * distances.shape[0])
        nearest = np.argmin(distances, axis=1)
        d1 = distances[np.arange(distances.shape[0]), nearest]
        good = d1 <= max_distance

    query = np.nonzero(good)[0].astype(np.int64)
    return MatchSet(query, nearest[good].astype(np.int64), d1[good].astype(np.int64))
