"""FAST segment-test corner detector (FAST-9 on the 16-pixel circle).

The VS algorithm uses FAST detectors for efficient keypoint detection
(paper Section III-A, citing Rosten & Drummond).  A pixel is a corner
when at least ``ARC_LENGTH`` contiguous pixels on the Bresenham circle of
radius 3 are all brighter than the center plus a threshold, or all darker
than the center minus it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.imaging.image import as_gray
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import Cell, ExecutionContext

#: The 16 (dx, dy) offsets of the Bresenham circle of radius 3, clockwise.
CIRCLE_OFFSETS: tuple[tuple[int, int], ...] = (
    (0, -3), (1, -3), (2, -2), (3, -1), (3, 0), (3, 1), (2, 2), (1, 3),
    (0, 3), (-1, 3), (-2, 2), (-3, 1), (-3, 0), (-3, -1), (-2, -2), (-1, -3),
)

#: Contiguous arc length required for a corner (FAST-9).
ARC_LENGTH = 9

#: Circle radius; keypoints cannot sit closer than this to the border.
BORDER = 3


@dataclass(frozen=True)
class Keypoint:
    """A detected corner with its FAST score."""

    x: int
    y: int
    score: float


def _circle_stack(image_f: np.ndarray) -> np.ndarray:
    """Stack the 16 circle neighbours of every interior pixel.

    Returns ``(16, h - 6, w - 6)`` float64 values aligned with the
    interior region ``image[3:-3, 3:-3]``.
    """
    h, w = image_f.shape
    inner_h, inner_w = h - 2 * BORDER, w - 2 * BORDER
    stack = np.empty((16, inner_h, inner_w), dtype=np.float64)
    for index, (dx, dy) in enumerate(CIRCLE_OFFSETS):
        stack[index] = image_f[
            BORDER + dy : BORDER + dy + inner_h, BORDER + dx : BORDER + dx + inner_w
        ]
    return stack


def _contiguous_arc(flags: np.ndarray, arc: int) -> np.ndarray:
    """True where any ``arc`` contiguous entries (cyclically) are all set.

    ``flags`` is ``(16, ...)`` boolean.  A window of ``arc`` entries is
    all-set exactly when its running sum equals ``arc``, so one cumulative
    sum over the cyclically extended stack replaces the 16 windowed
    ``all`` reductions.
    """
    wrapped = np.concatenate([flags, flags[: arc - 1]], axis=0)
    counts = np.cumsum(wrapped, axis=0, dtype=np.int16)
    padded = np.concatenate(
        [np.zeros((1,) + flags.shape[1:], dtype=np.int16), counts], axis=0
    )
    window_sums = padded[arc:] - padded[:-arc]
    return (window_sums == arc).any(axis=0)


def detect_fast(
    image: np.ndarray,
    ctx: ExecutionContext,
    threshold: int = 20,
    nms_radius: int = 1,
) -> list[Keypoint]:
    """Detect FAST-9 corners with non-maximum suppression.

    Returns keypoints sorted by descending score.  Thin object wrapper
    around :func:`detect_fast_arrays` for callers that want per-keypoint
    records; bulk consumers (the ORB front end) use the array form
    directly and skip the Python object construction.
    """
    coords, scores = detect_fast_arrays(image, ctx, threshold, nms_radius)
    return [
        Keypoint(x=int(x), y=int(y), score=float(s))
        for (x, y), s in zip(coords, scores)
    ]


def detect_fast_arrays(
    image: np.ndarray,
    ctx: ExecutionContext,
    threshold: int = 20,
    nms_radius: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Detect FAST-9 corners; returns ``(coords (n, 2) int64, scores (n,))``.

    Both arrays are sorted by descending score (stable, so raster order
    breaks ties exactly like the :class:`Keypoint` list form).
    """
    with telemetry.span("vision.fast", ctx=ctx):
        return _detect_fast_arrays(image, ctx, threshold, nms_radius)


def _detect_fast_arrays(
    image: np.ndarray,
    ctx: ExecutionContext,
    threshold: int,
    nms_radius: int,
) -> tuple[np.ndarray, np.ndarray]:
    arr = as_gray(image)
    h, w = arr.shape
    if h <= 2 * BORDER or w <= 2 * BORDER:
        return np.zeros((0, 2), dtype=np.int64), np.zeros(0)

    thresh_cell = Cell(int(threshold))
    image_f = arr.astype(np.float64)

    window = ctx.window("vision.fast.detect")
    if window is not None:
        from repro.faultinject.registers import Role

        window.gpr_address("img_ptr", image_f, window=min(4096, image_f.nbytes))
        window.gpr_cell("fast_thresh", thresh_cell, role=Role.DATA)
        ctx.checkpoint(window)

    with ctx.scope("vision.fast.detect"):
        ctx.tick(kernel_cost("fast.px") * h * w)
        effective_threshold = float(thresh_cell.value)
        center = image_f[BORDER : h - BORDER, BORDER : w - BORDER]
        circle = _circle_stack(image_f)
        brighter = circle > center + effective_threshold
        darker = circle < center - effective_threshold
        is_corner = _contiguous_arc(brighter, ARC_LENGTH) | _contiguous_arc(darker, ARC_LENGTH)
        diff = np.abs(circle - center)
        over = np.maximum(diff - effective_threshold, 0.0)
        score = np.where(is_corner, over.sum(axis=0), 0.0)

    # Non-maximum suppression on the score map.
    candidates = int(np.count_nonzero(score))
    with ctx.scope("vision.fast.nms"):
        ctx.tick(kernel_cost("fast.nms_kp") * max(candidates, 1))
        keep = _nms(score, nms_radius)

    ys, xs = np.nonzero(keep)
    scores = score[ys, xs]
    coords = np.stack([xs + BORDER, ys + BORDER], axis=1).astype(np.int64)

    window = ctx.window("vision.fast.keypoints")
    if window is not None:
        if coords.size:
            window.gpr_array("kp_coords", coords)
        window.fpr_array("kp_scores", scores if scores.size else np.zeros(1))
        ctx.checkpoint(window)

    # Rank after the checkpoint so an injected flip into the coordinate
    # or score registers perturbs the ordering exactly as it did when
    # the ranked list was built from the post-checkpoint arrays.
    order = np.argsort(-scores, kind="stable")
    return coords[order], scores[order]


def _nms(score: np.ndarray, radius: int) -> np.ndarray:
    """Boolean map of local maxima within a ``(2r+1)`` square window.

    The square-window maximum is separable, so two sliding 1-D maxima
    (rows then columns) replace the O((2r+1)^2) shifted-copy loop.
    """
    if radius < 1:
        return score > 0
    from numpy.lib.stride_tricks import sliding_window_view

    size = 2 * radius + 1
    padded = np.pad(score, radius, mode="constant", constant_values=-np.inf)
    row_max = sliding_window_view(padded, size, axis=1).max(axis=-1)
    best = sliding_window_view(row_max, size, axis=0).max(axis=-1)
    return (score > 0) & (score >= best)
