"""Affine transform estimation (the pipeline's fallback model).

When adjacent frames do not share enough matching key points for a
homography, the VS algorithm estimates a simpler affine transform that
needs fewer correspondences (paper Section III-A).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.errors import DegenerateModelError
from repro.vision.homography import _check_points

#: Minimum correspondences for an affine transform.
MIN_POINTS = 3


def estimate_affine(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Least-squares affine transform mapping ``src`` points onto ``dst``.

    Returns a 3x3 matrix with last row (0, 0, 1).  Raises
    :class:`DegenerateModelError` for collinear/degenerate configurations.
    """
    src, dst = _check_points(src, dst, MIN_POINTS)
    n = src.shape[0]
    system = np.zeros((2 * n, 6), dtype=np.float64)
    system[0::2, 0] = src[:, 0]
    system[0::2, 1] = src[:, 1]
    system[0::2, 2] = 1.0
    system[1::2, 3] = src[:, 0]
    system[1::2, 4] = src[:, 1]
    system[1::2, 5] = 1.0
    rhs = dst.reshape(-1)

    solution, _residuals, rank, _sv = np.linalg.lstsq(system, rhs, rcond=None)
    if rank < 6:
        raise DegenerateModelError(f"affine system rank {rank} < 6 (collinear points?)")
    model = np.eye(3, dtype=np.float64)
    model[0, :] = solution[0:3]
    model[1, :] = solution[3:6]
    if not np.all(np.isfinite(model)):
        raise DegenerateModelError("affine solution is non-finite")
    determinant = model[0, 0] * model[1, 1] - model[0, 1] * model[1, 0]
    if abs(determinant) < 1e-8:
        raise DegenerateModelError(f"affine transform is singular (det={determinant:.3e})")
    return model


def solve_affines_batched(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve many 3-point affine hypotheses at once.

    ``src``/``dst`` are ``(batch, 3, 2)``.  Returns ``(models, ok)`` with
    ``models`` of shape ``(batch, 3, 3)`` and ``ok`` flagging hypotheses
    whose 6x6 system was well conditioned.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    batch = src.shape[0]
    if src.shape != (batch, 3, 2) or dst.shape != (batch, 3, 2):
        raise ValueError(f"expected (batch, 3, 2) arrays, got {src.shape} and {dst.shape}")

    x, y = src[:, :, 0], src[:, :, 1]
    u, v = dst[:, :, 0], dst[:, :, 1]
    zeros = np.zeros_like(x)
    ones = np.ones_like(x)
    rows_u = np.stack([x, y, ones, zeros, zeros, zeros], axis=2)
    rows_v = np.stack([zeros, zeros, zeros, x, y, ones], axis=2)
    systems = np.concatenate([rows_u, rows_v], axis=1)  # (batch, 6, 6)
    rhs = np.concatenate([u, v], axis=1)

    dets = np.linalg.det(systems)
    ok = np.abs(dets) > 1e-10
    models = np.tile(np.eye(3), (batch, 1, 1))
    if np.any(ok):
        solutions = np.linalg.solve(systems[ok], rhs[ok][:, :, np.newaxis])[:, :, 0]
        models[ok, 0, :] = solutions[:, 0:3]
        models[ok, 1, :] = solutions[:, 3:6]
        ok &= np.all(np.isfinite(models), axis=(1, 2))
    return models, ok


def affine_residuals(model: np.ndarray, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Euclidean residual of each correspondence under an affine model."""
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    projected = np.hstack([src, np.ones((src.shape[0], 1))]) @ np.asarray(model).T
    return np.sqrt(((projected[:, :2] - dst) ** 2).sum(axis=1))
