"""Homography estimation: inhomogeneous 4-point solve and normalized DLT.

RANSAC model hypotheses use the fast inhomogeneous 8x8 solve (batched
across hypotheses); the final refit over all inliers uses the normalized
DLT with SVD, as standard stitching pipelines do.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.geometry import validate_homography
from repro.runtime.errors import DegenerateModelError, InternalAbortError

#: Minimum correspondences for a homography.
MIN_POINTS = 4

#: |det| below this marks an 8x8 hypothesis system as degenerate.
_MIN_SYSTEM_DET = 1e-10


def _check_points(src: np.ndarray, dst: np.ndarray, minimum: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate correspondence arrays; library-level precondition checks.

    Raises :class:`InternalAbortError` (the "abort" crash category) when
    corrupted state produced structurally invalid inputs.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.ndim != 2 or src.shape[1] != 2 or src.shape != dst.shape:
        raise InternalAbortError(
            f"correspondence arrays malformed: src {src.shape}, dst {dst.shape}"
        )
    if src.shape[0] < minimum:
        raise InternalAbortError(f"need >= {minimum} correspondences, got {src.shape[0]}")
    if not (np.all(np.isfinite(src)) and np.all(np.isfinite(dst))):
        raise InternalAbortError("correspondences contain non-finite coordinates")
    return src, dst


def solve_homographies_batched(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve many 4-point homography hypotheses at once.

    ``src``/``dst`` are ``(batch, 4, 2)``.  Returns ``(models, ok)``:
    ``models`` is ``(batch, 3, 3)`` and ``ok`` a boolean mask of
    hypotheses whose linear system was well conditioned.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    batch = src.shape[0]
    if src.shape != (batch, 4, 2) or dst.shape != (batch, 4, 2):
        raise ValueError(f"expected (batch, 4, 2) arrays, got {src.shape} and {dst.shape}")

    x, y = src[:, :, 0], src[:, :, 1]
    u, v = dst[:, :, 0], dst[:, :, 1]
    zeros = np.zeros_like(x)
    ones = np.ones_like(x)

    rows_u = np.stack([x, y, ones, zeros, zeros, zeros, -u * x, -u * y], axis=2)
    rows_v = np.stack([zeros, zeros, zeros, x, y, ones, -v * x, -v * y], axis=2)
    systems = np.concatenate([rows_u, rows_v], axis=1)  # (batch, 8, 8)
    rhs = np.concatenate([u, v], axis=1)  # (batch, 8)

    dets = np.linalg.det(systems)
    ok = np.abs(dets) > _MIN_SYSTEM_DET
    models = np.tile(np.eye(3), (batch, 1, 1))
    if np.any(ok):
        solutions = np.linalg.solve(systems[ok], rhs[ok][:, :, np.newaxis])[:, :, 0]
        filled = np.concatenate(
            [solutions, np.ones((solutions.shape[0], 1))], axis=1
        ).reshape(-1, 3, 3)
        models[ok] = filled
        finite = np.all(np.isfinite(models), axis=(1, 2))
        ok &= finite
    return models, ok


def _normalization(points: np.ndarray) -> np.ndarray:
    """Hartley normalization transform for DLT conditioning."""
    centroid = points.mean(axis=0)
    spread = np.sqrt(((points - centroid) ** 2).sum(axis=1)).mean()
    if spread < 1e-9:
        raise DegenerateModelError("points are coincident; cannot normalize")
    scale = np.sqrt(2.0) / spread
    transform = np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )
    return transform


def estimate_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Normalized-DLT homography over all correspondences (least squares).

    Raises :class:`DegenerateModelError` when the configuration does not
    determine a usable homography.
    """
    src, dst = _check_points(src, dst, MIN_POINTS)
    t_src = _normalization(src)
    t_dst = _normalization(dst)
    src_n = (np.hstack([src, np.ones((src.shape[0], 1))]) @ t_src.T)[:, :2]
    dst_n = (np.hstack([dst, np.ones((dst.shape[0], 1))]) @ t_dst.T)[:, :2]

    n = src_n.shape[0]
    system = np.zeros((2 * n, 9), dtype=np.float64)
    x, y = src_n[:, 0], src_n[:, 1]
    u, v = dst_n[:, 0], dst_n[:, 1]
    system[0::2, 0] = x
    system[0::2, 1] = y
    system[0::2, 2] = 1.0
    system[0::2, 6] = -u * x
    system[0::2, 7] = -u * y
    system[0::2, 8] = -u
    system[1::2, 3] = x
    system[1::2, 4] = y
    system[1::2, 5] = 1.0
    system[1::2, 6] = -v * x
    system[1::2, 7] = -v * y
    system[1::2, 8] = -v

    try:
        _, singular_values, vt = np.linalg.svd(system)
    except np.linalg.LinAlgError as exc:
        raise DegenerateModelError(f"DLT SVD failed: {exc}") from exc
    if singular_values[-2] < 1e-12:
        raise DegenerateModelError("DLT system is rank deficient")
    h_normalized = vt[-1].reshape(3, 3)
    model = np.linalg.inv(t_dst) @ h_normalized @ t_src
    return validate_homography(model)


def homography_residuals(model: np.ndarray, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Euclidean reprojection residual of each correspondence."""
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    homo = np.hstack([src, np.ones((src.shape[0], 1))]) @ np.asarray(model).T
    w = homo[:, 2]
    bad = np.abs(w) < 1e-12
    w = np.where(bad, 1.0, w)
    projected = homo[:, :2] / w[:, np.newaxis]
    residuals = np.sqrt(((projected - dst) ** 2).sum(axis=1))
    residuals[bad] = np.inf
    return residuals
