"""Computer-vision substrate: features, matching and robust estimation."""

from repro.vision.affine import affine_residuals, estimate_affine, solve_affines_batched
from repro.vision.fast import Keypoint, detect_fast
from repro.vision.homography import (
    estimate_homography,
    homography_residuals,
    solve_homographies_batched,
)
from repro.vision.matching import (
    MatchSet,
    hamming_distance_matrix,
    match_ratio,
    match_simple,
)
from repro.vision.orb import FeatureSet, brief_pattern, orb_features
from repro.vision.ransac import RansacResult, ransac_affine, ransac_homography

__all__ = [
    "Keypoint",
    "detect_fast",
    "FeatureSet",
    "brief_pattern",
    "orb_features",
    "MatchSet",
    "hamming_distance_matrix",
    "match_ratio",
    "match_simple",
    "estimate_homography",
    "homography_residuals",
    "solve_homographies_batched",
    "estimate_affine",
    "affine_residuals",
    "solve_affines_batched",
    "ransac_affine",
    "RansacResult",
    "ransac_homography",
]
