"""RANSAC homography estimation over matched key points.

RANSAC (paper Section III-A, citing Fischler & Bolles) is both the
robust-estimation core of the stitcher and a major *masking* mechanism in
the resiliency experiments: corrupted correspondences are voted out as
outliers and never reach the panorama.

Hypotheses are evaluated in vectorized batches; the iteration budget is
held in a :class:`Cell` so a control-register flip can inflate it, which
is the library's main source of *Hang* outcomes (compute-bound loop, no
memory writes to trap on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import DegenerateModelError, InsufficientMatchesError
from repro.vision.homography import (
    MIN_POINTS,
    estimate_homography,
    homography_residuals,
    solve_homographies_batched,
)

#: Hypotheses evaluated per vectorized batch (one checkpoint per batch).
_HYPOTHESIS_BATCH = 16

#: Hard cap on total hypotheses in a clean run.
DEFAULT_MAX_ITERATIONS = 512

#: If no consensus set of the required size has shown up after this many
#: hypotheses, the search is hopeless and the estimator gives up early
#: rather than burning the whole budget on an unmatchable frame pair.
ABANDON_AFTER = 96


@dataclass
class RansacResult:
    """Estimated model plus its consensus set."""

    model: np.ndarray  # (3, 3) homography
    inlier_mask: np.ndarray  # (n,) bool
    iterations: int

    @property
    def num_inliers(self) -> int:
        """Size of the consensus set."""
        return int(np.count_nonzero(self.inlier_mask))


def _required_iterations(inlier_ratio: float, confidence: float, sample_size: int) -> int:
    """Standard RANSAC stopping criterion."""
    inlier_ratio = min(max(inlier_ratio, 1e-6), 1.0 - 1e-12)
    success = inlier_ratio**sample_size
    if success >= 1.0 - 1e-12:
        return 1
    needed = np.log(1.0 - confidence) / np.log(1.0 - success)
    return int(np.ceil(needed))


def ransac_homography(
    src_pts: np.ndarray,
    dst_pts: np.ndarray,
    ctx: ExecutionContext,
    rng: np.random.Generator,
    inlier_threshold: float = 3.0,
    confidence: float = 0.995,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    min_inliers: int = 8,
) -> RansacResult:
    """Robustly estimate the homography mapping ``src_pts`` to ``dst_pts``.

    Raises :class:`InsufficientMatchesError` when no model with at least
    ``min_inliers`` supporters exists — the condition under which the
    pipeline falls back to an affine estimate or discards the frame.
    """
    with telemetry.span("vision.ransac", ctx=ctx):
        return _ransac_homography(
            src_pts, dst_pts, ctx, rng, inlier_threshold, confidence, max_iterations, min_inliers
        )


def _ransac_homography(
    src_pts: np.ndarray,
    dst_pts: np.ndarray,
    ctx: ExecutionContext,
    rng: np.random.Generator,
    inlier_threshold: float,
    confidence: float,
    max_iterations: int,
    min_inliers: int,
) -> RansacResult:
    src = np.asarray(src_pts, dtype=np.float64)
    dst = np.asarray(dst_pts, dtype=np.float64)
    n = src.shape[0]
    if n < max(MIN_POINTS, min_inliers):
        raise InsufficientMatchesError(f"{n} correspondences < required {min_inliers}")

    iteration = Cell(0)
    budget = Cell(int(max_iterations))
    best_count = 0
    best_mask: np.ndarray | None = None

    while iteration.value < budget.value:
        window = ctx.window("vision.ransac.hypotheses")
        if window is not None:
            from repro.faultinject.registers import Role

            window.gpr_cell("ransac_iter", iteration, role=Role.CONTROL)
            window.gpr_cell("ransac_budget", budget, role=Role.CONTROL)
            window.gpr_address("src_pts_ptr", src)
            window.gpr_address("dst_pts_ptr", dst)
            window.gpr_value(
                "best_count",
                best_count,
                apply=lambda value: None,  # score register; overwritten below
            )
            ctx.checkpoint(window)

        start = int(iteration.value)
        remaining = int(budget.value) - start
        if remaining <= 0:
            break
        batch = min(_HYPOTHESIS_BATCH, remaining)

        with ctx.scope("vision.ransac.iterate"):
            ctx.tick(kernel_cost("ransac.iter") * batch)
            # Uniform 4-subsets via argpartition of iid uniforms (much
            # faster than per-hypothesis rng.choice in a Python loop).
            scores = rng.random((batch, n))
            samples = np.argpartition(scores, MIN_POINTS, axis=1)[:, :MIN_POINTS]
            models, ok = solve_homographies_batched(src[samples], dst[samples])
            for index in np.nonzero(ok)[0]:
                residuals = homography_residuals(models[index], src, dst)
                mask = residuals < inlier_threshold
                count = int(np.count_nonzero(mask))
                if count > best_count:
                    best_count = count
                    best_mask = mask

        iteration.value = start + batch
        if best_count >= min_inliers:
            needed = _required_iterations(best_count / n, confidence, MIN_POINTS)
            if needed < budget.value:
                budget.value = max(int(iteration.value), needed)
        elif int(iteration.value) >= ABANDON_AFTER:
            break

    if best_mask is None or best_count < min_inliers:
        raise InsufficientMatchesError(
            f"RANSAC found no model with >= {min_inliers} inliers (best {best_count})"
        )

    with ctx.scope("vision.ransac.refit"):
        ctx.tick(kernel_cost("homography.solve"))
        try:
            model = estimate_homography(src[best_mask], dst[best_mask])
        except DegenerateModelError:
            # Fall back to the best hypothesis-level consensus refit over
            # the minimal sample; rare, but keeps marginal frames usable.
            raise InsufficientMatchesError("inlier refit degenerate")

    residuals = homography_residuals(model, src, dst)
    final_mask = residuals < inlier_threshold
    if int(np.count_nonzero(final_mask)) < min_inliers:
        raise InsufficientMatchesError("refit model lost its consensus set")
    return RansacResult(model=model, inlier_mask=final_mask, iterations=int(iteration.value))


def ransac_affine(
    src_pts: np.ndarray,
    dst_pts: np.ndarray,
    ctx: ExecutionContext,
    rng: np.random.Generator,
    inlier_threshold: float = 3.0,
    max_iterations: int = 128,
    min_inliers: int = 5,
) -> RansacResult:
    """Robust affine estimation — the pipeline's fallback model.

    Used when too few correspondences support a homography (paper
    Section III-A); needs 3-point samples instead of 4.
    """
    with telemetry.span("vision.ransac", ctx=ctx):
        return _ransac_affine(
            src_pts, dst_pts, ctx, rng, inlier_threshold, max_iterations, min_inliers
        )


def _ransac_affine(
    src_pts: np.ndarray,
    dst_pts: np.ndarray,
    ctx: ExecutionContext,
    rng: np.random.Generator,
    inlier_threshold: float,
    max_iterations: int,
    min_inliers: int,
) -> RansacResult:
    from repro.vision.affine import affine_residuals, estimate_affine, solve_affines_batched
    from repro.vision.affine import MIN_POINTS as AFFINE_MIN

    src = np.asarray(src_pts, dtype=np.float64)
    dst = np.asarray(dst_pts, dtype=np.float64)
    n = src.shape[0]
    if n < max(AFFINE_MIN, min_inliers):
        raise InsufficientMatchesError(f"{n} correspondences < required {min_inliers}")

    iteration = Cell(0)
    budget = Cell(int(max_iterations))
    best_count = 0
    best_mask: np.ndarray | None = None

    while iteration.value < budget.value:
        window = ctx.window("vision.ransac.affine_hypotheses")
        if window is not None:
            from repro.faultinject.registers import Role

            window.gpr_cell("aff_iter", iteration, role=Role.CONTROL)
            window.gpr_cell("aff_budget", budget, role=Role.CONTROL)
            window.gpr_address("aff_src_ptr", src)
            window.gpr_address("aff_dst_ptr", dst)
            ctx.checkpoint(window)

        start = int(iteration.value)
        remaining = int(budget.value) - start
        if remaining <= 0:
            break
        batch = min(_HYPOTHESIS_BATCH, remaining)

        with ctx.scope("vision.ransac.iterate"):
            ctx.tick(kernel_cost("ransac.iter") * batch)
            scores = rng.random((batch, n))
            samples = np.argpartition(scores, AFFINE_MIN, axis=1)[:, :AFFINE_MIN]
            models, ok = solve_affines_batched(src[samples], dst[samples])
            for index in np.nonzero(ok)[0]:
                residuals = affine_residuals(models[index], src, dst)
                mask = residuals < inlier_threshold
                count = int(np.count_nonzero(mask))
                if count > best_count:
                    best_count = count
                    best_mask = mask
        iteration.value = start + batch
        if best_count >= min_inliers:
            needed = _required_iterations(best_count / n, 0.995, AFFINE_MIN)
            if needed < budget.value:
                budget.value = max(int(iteration.value), needed)
        elif int(iteration.value) >= ABANDON_AFTER:
            break

    if best_mask is None or best_count < min_inliers:
        raise InsufficientMatchesError(
            f"affine RANSAC found no model with >= {min_inliers} inliers (best {best_count})"
        )

    with ctx.scope("vision.ransac.refit"):
        ctx.tick(kernel_cost("affine.solve"))
        try:
            model = estimate_affine(src[best_mask], dst[best_mask])
        except DegenerateModelError:
            raise InsufficientMatchesError("affine inlier refit degenerate")

    residuals = affine_residuals(model, src, dst)
    final_mask = residuals < inlier_threshold
    if int(np.count_nonzero(final_mask)) < min_inliers:
        raise InsufficientMatchesError("affine refit lost its consensus set")
    return RansacResult(model=model, inlier_mask=final_mask, iterations=int(iteration.value))
