"""ORB-style features: oriented FAST keypoints + rotated BRIEF descriptors.

Mirrors the feature front end the paper's VS algorithm uses (Section
III-A, citing Rublee et al.): FAST detection, Harris ranking of the
candidates, intensity-centroid orientation, and a steered 256-bit BRIEF
descriptor sampled from a blurred patch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.forensics import probes
from repro.imaging.filters import gaussian_blur, harris_response
from repro.imaging.image import as_gray
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext
from repro.vision.fast import detect_fast_arrays

#: Number of BRIEF test pairs (bits) per descriptor.
DESCRIPTOR_BITS = 256

#: Bytes per packed descriptor.
DESCRIPTOR_BYTES = DESCRIPTOR_BITS // 8

#: Half-width of the BRIEF sampling pattern.
PATTERN_RADIUS = 6

#: Keypoints closer than this to the border are dropped (rotation can
#: push pattern samples out to ``PATTERN_RADIUS * sqrt(2)``).
ORB_BORDER = 10

#: Patch half-width for the intensity-centroid orientation.
CENTROID_RADIUS = 7

#: Keypoints described per checkpoint batch.
_BATCH = 32


@dataclass
class FeatureSet:
    """Keypoints and descriptors extracted from one frame."""

    coords: np.ndarray  # (n, 2) int64 pixel coordinates (x, y)
    descriptors: np.ndarray  # (n, 32) uint8 packed 256-bit descriptors
    angles: np.ndarray  # (n,) float64 orientation in radians

    def __len__(self) -> int:
        return int(self.coords.shape[0])


def brief_pattern(seed: int = 1234) -> np.ndarray:
    """The fixed BRIEF test pattern: ``(256, 2, 2)`` integer offsets.

    Offsets are drawn from a clipped Gaussian, the distribution the BRIEF
    paper found best, and are identical across the whole library (the
    pattern is baked into the algorithm, not per-run randomness).
    """
    rng = np.random.default_rng(seed)
    pattern = rng.normal(0.0, PATTERN_RADIUS / 2.0, size=(DESCRIPTOR_BITS, 2, 2))
    return np.clip(np.round(pattern), -PATTERN_RADIUS, PATTERN_RADIUS).astype(np.int64)


_PATTERN = brief_pattern()


def _centroid_grids() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The fixed centroid patch offsets: ``(oy, ox, disk)`` grids."""
    offsets = np.arange(-CENTROID_RADIUS, CENTROID_RADIUS + 1)
    oy, ox = np.meshgrid(offsets, offsets, indexing="ij")
    disk = (ox**2 + oy**2) <= CENTROID_RADIUS**2
    return oy, ox, disk


_CENTROID_OY, _CENTROID_OX, _CENTROID_DISK = _centroid_grids()


def orientation_angles(image_f: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Intensity-centroid orientation of each keypoint patch (radians).

    One batched gather replaces the per-keypoint patch loop: all ``n``
    patches are pulled in a single advanced-indexing read and the moment
    sums reduce over the trailing patch axes.  Each patch product is
    freshly materialised C-contiguous in both formulations, so the
    pairwise summation order — and therefore every output bit — matches
    the scalar loop exactly.
    """
    ys = coords[:, 1][:, np.newaxis, np.newaxis] + _CENTROID_OY
    xs = coords[:, 0][:, np.newaxis, np.newaxis] + _CENTROID_OX
    masked = image_f[ys, xs] * _CENTROID_DISK
    m10 = (masked * _CENTROID_OX).sum(axis=(1, 2))
    m01 = (masked * _CENTROID_OY).sum(axis=(1, 2))
    return np.arctan2(m01, m10)


def _steered_samples(coords: np.ndarray, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rotate the BRIEF pattern per keypoint; returns two (n, 256, 2) int grids."""
    cos = np.cos(angles)[:, np.newaxis]
    sin = np.sin(angles)[:, np.newaxis]
    pattern = _PATTERN.astype(np.float64)

    def rotate(points: np.ndarray) -> np.ndarray:
        px = points[:, 0][np.newaxis, :]
        py = points[:, 1][np.newaxis, :]
        rx = np.round(cos * px - sin * py).astype(np.int64)
        ry = np.round(sin * px + cos * py).astype(np.int64)
        return np.stack([rx, ry], axis=2)

    first = rotate(pattern[:, 0, :]) + coords[:, np.newaxis, :]
    second = rotate(pattern[:, 1, :]) + coords[:, np.newaxis, :]
    return first, second


def _gather(image_f: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Sample image values at integer points with border clamping."""
    h, w = image_f.shape
    xs = np.clip(points[..., 0], 0, w - 1)
    ys = np.clip(points[..., 1], 0, h - 1)
    return image_f[ys, xs]


def describe(
    image_blurred_f: np.ndarray,
    coords: np.ndarray,
    ctx: ExecutionContext,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute packed steered-BRIEF descriptors for ``coords``.

    Returns ``(descriptors (n, 32) uint8, angles (n,) float64)``.
    """
    n = coords.shape[0]
    descriptors = np.zeros((n, DESCRIPTOR_BYTES), dtype=np.uint8)
    angles = np.zeros(n, dtype=np.float64)
    if n == 0:
        return descriptors, angles

    for start in range(0, n, _BATCH):
        stop = min(start + _BATCH, n)
        batch_coords = coords[start:stop]

        window = ctx.window("vision.orb.describe")
        if window is not None:
            window.gpr_address("patch_ptr", image_blurred_f, window=min(4096, image_blurred_f.nbytes))
            window.gpr_array("kp_xy", batch_coords)
            ctx.checkpoint(window)

        with ctx.scope("vision.orb.describe"):
            ctx.tick(kernel_cost("orb.describe_kp") * (stop - start))
            # Library precondition (the OpenCV CV_Assert analog): key
            # points must lie sensibly near the image.  Grossly corrupted
            # coordinates trip it — the paper's "abort" crash category.
            h, w = image_blurred_f.shape
            limit = 8 * max(h, w)
            if np.any(np.abs(batch_coords) > limit):
                from repro.runtime.errors import InternalAbortError

                raise InternalAbortError("keypoint coordinates outside image bounds")
            # Mildly corrupted coordinates are clamped into the image
            # (border replication), producing garbage descriptors rather
            # than a wild read; the pointer binding models the wild-read
            # case.
            safe_coords = np.clip(
                batch_coords,
                [ORB_BORDER, ORB_BORDER],
                [image_blurred_f.shape[1] - 1 - ORB_BORDER, image_blurred_f.shape[0] - 1 - ORB_BORDER],
            )
            batch_angles = orientation_angles(image_blurred_f, safe_coords)
            first, second = _steered_samples(safe_coords, batch_angles)
            bits = _gather(image_blurred_f, first) < _gather(image_blurred_f, second)
            descriptors[start:stop] = np.packbits(bits, axis=1)
            angles[start:stop] = batch_angles

    window = ctx.window("vision.orb.descriptors")
    if window is not None:
        window.gpr_array("desc_bytes", descriptors)
        window.fpr_array("kp_angles", angles)
        ctx.checkpoint(window)

    return descriptors, angles


def orb_features(
    image: np.ndarray,
    ctx: ExecutionContext,
    n_keypoints: int = 100,
    fast_threshold: int = 20,
) -> FeatureSet:
    """Full ORB front end: blur, detect, rank, orient and describe."""
    with telemetry.span("vision.orb", ctx=ctx):
        return _orb_features(image, ctx, n_keypoints, fast_threshold)


def _orb_features(
    image: np.ndarray,
    ctx: ExecutionContext,
    n_keypoints: int,
    fast_threshold: int,
) -> FeatureSet:
    arr = as_gray(image)
    h, w = arr.shape
    blurred = gaussian_blur(arr, sigma=1.1, ctx=ctx)
    blurred_f = blurred.astype(np.float64)

    kp_coords, kp_scores = detect_fast_arrays(arr, ctx, threshold=fast_threshold)
    if probes.active():
        # Divergence probe: the FAST stage's output is the detected
        # corner list (positions and scores, in rank order).  The empty
        # case stays a flat (0,) float64 record, matching the shape the
        # per-keypoint tuple list produced.
        record = (
            np.column_stack([kp_coords.astype(np.float64), kp_scores])
            if kp_coords.shape[0]
            else np.array([], dtype=np.float64)
        )
        probes.record("fast", record)
    xs, ys = kp_coords[:, 0], kp_coords[:, 1]
    bounds_mask = (
        (xs >= ORB_BORDER)
        & (xs < w - ORB_BORDER)
        & (ys >= ORB_BORDER)
        & (ys < h - ORB_BORDER)
    )
    in_bounds = kp_coords[bounds_mask]
    if not in_bounds.shape[0]:
        empty = np.zeros((0, 2), dtype=np.int64)
        features = FeatureSet(empty, np.zeros((0, DESCRIPTOR_BYTES), dtype=np.uint8), np.zeros(0))
        probes.record("orb", features.coords, features.descriptors, features.angles)
        return features

    with ctx.scope("vision.orb.rank"):
        ctx.tick(kernel_cost("orb.harris_px") * h * w)
        response = harris_response(arr)
        # Stable descending argsort over the gathered responses: the same
        # permutation as the stable Python sort over keypoint objects,
        # including FAST-rank tie-breaking.
        ranked = np.argsort(-response[in_bounds[:, 1], in_bounds[:, 0]], kind="stable")

    coords = np.ascontiguousarray(in_bounds[ranked[:n_keypoints]])
    descriptors, angles = describe(blurred_f, coords, ctx)
    probes.record("orb", coords, descriptors, angles)
    return FeatureSet(coords, descriptors, angles)
