"""Crash-safe live status snapshots of a running campaign.

A :class:`StatusWriter` subscribes to the campaign event bus and folds
every event into one JSON payload — progress, rate and ETA, running
outcome rates with Wilson 95% CIs, retry/degrade/fast-forward/fan-out
counters, and per-cell CI widths in stratified mode.  When constructed
with a path it rewrites the file on every event via the atomic
write-temp-then-``os.replace`` protocol, so a reader (or a post-crash
investigator) always sees a complete, parseable JSON document — never
a torn write, even when the campaign process is SIGKILL'd mid-update
(pinned by ``tests/faultinject/test_kill_resume.py``).

``repro watch <status.json>`` tails the file live;
:func:`validate_status` is the schema gate CI runs against ``/status``
responses.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable

from repro.faultinject.outcomes import wilson_interval
from repro.observe.events import CampaignEvent

#: Bump when a required field changes shape or meaning.
STATUS_SCHEMA_VERSION = 1

#: Outcome classes tracked in the running tally — the same keys as the
#: forensics report's ``OUTCOME_FIELDS`` (``Outcome.value`` for mask).
OUTCOME_KEYS = ("mask", "sdc", "crash", "hang")

#: Counter names maintained from event kinds.
COUNTER_KEYS = (
    "retries",
    "degrades",
    "watchdog_hangs",
    "golden_tails",
    "journal_checkpoints",
    "notes",
)

#: Event kinds that carry a completed unit of work (``done`` totals and
#: an ``outcomes`` tally in their payload).
_PROGRESS_KINDS = ("injection_done", "chunk_done", "group_done", "round_done")


class StatusWriter:
    """Event-bus subscriber maintaining (and atomically writing) status.

    ``path=None`` keeps the snapshot in memory only — the HTTP server
    uses that mode when ``--serve`` is given without ``--status``.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.clock = clock
        self.started = clock()
        self.state = "starting"
        self.campaign: dict = {}
        self.done = 0
        self.total: int | None = None
        self.outcomes = {key: 0 for key in OUTCOME_KEYS}
        self.counters = {key: 0 for key in COUNTER_KEYS}
        self.resume: dict | None = None
        self.stratified: dict | None = None
        self.events_seen = 0
        self.writes = 0
        self.last_event: dict = {}

    # ------------------------------------------------------------------
    # Event folding
    # ------------------------------------------------------------------
    def __call__(self, event: CampaignEvent) -> None:
        self.events_seen += 1
        self.last_event = {"seq": event.seq, "kind": event.kind}
        payload = event.payload
        kind = event.kind
        if kind == "campaign_start":
            self.state = "running"
            self.campaign = dict(payload)
            total = payload.get("total")
            self.total = int(total) if isinstance(total, int) else None
            self.started = self.clock()
        elif kind in _PROGRESS_KINDS:
            done = payload.get("done")
            if isinstance(done, int):
                self.done = done
            if kind == "round_done":
                # Rounds carry the engine's cumulative tally (they are
                # also the only progress signal during journal replay),
                # so assignment both reconstructs resumed state and
                # corrects any chunk-level increments in between.
                totals = payload.get("outcomes_total")
                if isinstance(totals, dict):
                    for key in OUTCOME_KEYS:
                        self.outcomes[key] = int(totals.get(key, 0))
                self._fold_round(payload)
            else:
                outcomes = payload.get("outcomes")
                if isinstance(outcomes, dict):
                    for key in OUTCOME_KEYS:
                        self.outcomes[key] += int(outcomes.get(key, 0))
        elif kind == "retry":
            self.counters["retries"] += 1
        elif kind == "degrade":
            self.counters["degrades"] += 1
        elif kind == "watchdog_hang":
            self.counters["watchdog_hangs"] += int(payload.get("count", 1))
        elif kind == "golden_tail":
            self.counters["golden_tails"] += 1
        elif kind == "journal_checkpoint":
            self.counters["journal_checkpoints"] += 1
        elif kind == "note":
            self.counters["notes"] += 1
        elif kind == "journal_resume":
            self.resume = dict(payload)
        elif kind == "stratum_converged":
            if self.stratified is not None:
                self.stratified["cells_converged"] = (
                    int(self.stratified.get("cells_converged", 0)) + 1
                )
        elif kind == "campaign_finish":
            self.state = "finished"
            outcomes = payload.get("outcomes")
            if isinstance(outcomes, dict):
                # The engine's final tally is authoritative (it covers
                # journal-replayed work a mid-campaign subscriber missed).
                for key in OUTCOME_KEYS:
                    self.outcomes[key] = int(outcomes.get(key, 0))
            total = payload.get("total")
            if isinstance(total, int):
                self.done = total
        elif kind == "interrupt":
            self.state = "interrupted"
        self.write()

    def _fold_round(self, payload: dict) -> None:
        stratified = self.stratified if self.stratified is not None else {}
        for key in ("round", "cells_total", "cells_converged", "max_ci_width"):
            if key in payload:
                stratified[key] = payload[key]
        cells = payload.get("cell_ci_widths")
        if isinstance(cells, list):
            stratified["cell_ci_widths"] = cells
        self.stratified = stratified

    # ------------------------------------------------------------------
    # Snapshot assembly
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The current status payload (schema ``STATUS_SCHEMA_VERSION``)."""
        now = self.clock()
        elapsed = max(now - self.started, 1e-9)
        rate = self.done / elapsed if self.done else 0.0
        eta_s: float | None = None
        if self.total is not None and rate > 0:
            eta_s = max(0.0, (self.total - self.done) / rate)
        total_classified = sum(self.outcomes.values())
        rates = {}
        for key in OUTCOME_KEYS:
            count = self.outcomes[key]
            low, high = wilson_interval(count, total_classified)
            rates[key] = {
                "count": count,
                "rate": round(count / total_classified, 6) if total_classified else 0.0,
                "ci_low": round(low, 6),
                "ci_high": round(high, 6),
            }
        payload = {
            "schema": STATUS_SCHEMA_VERSION,
            "state": self.state,
            "campaign": self.campaign,
            "progress": {
                "done": self.done,
                "total": self.total,
                "fraction": (
                    round(self.done / self.total, 6)
                    if self.total
                    else None
                ),
            },
            "elapsed_s": round(elapsed, 3),
            "rate_per_s": round(rate, 3),
            "eta_s": round(eta_s, 3) if eta_s is not None else None,
            "outcomes": {
                "total": total_classified,
                "rates": rates,
            },
            "counters": dict(self.counters),
            "resume": self.resume,
            "stratified": self.stratified,
            "events_seen": self.events_seen,
            "last_event": self.last_event,
            "updated_unix": round(now, 3),
        }
        return payload

    # ------------------------------------------------------------------
    # Atomic persistence
    # ------------------------------------------------------------------
    def write(self) -> None:
        """Atomically replace the status file with the current snapshot."""
        if self.path is None:
            return
        write_status(self.path, self.snapshot())
        self.writes += 1

    def mark(self, state: str) -> None:
        """Force a terminal state (used by the observe session teardown)."""
        self.state = state
        self.write()


def write_status(path: str | os.PathLike, payload: dict) -> Path:
    """Write ``payload`` crash-safely: temp file, fsync, atomic rename.

    ``os.replace`` within one directory is atomic on POSIX, so any
    concurrent (or post-mortem) reader sees either the previous
    complete document or the new one — never a torn mix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    data = json.dumps(payload, sort_keys=True) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_status(path: str | os.PathLike) -> dict:
    """Load one status snapshot (raises like ``json.loads`` / ``open``)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def validate_status(payload: dict) -> list[str]:
    """Schema-check one status payload; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema") != STATUS_SCHEMA_VERSION:
        problems.append(
            f"schema {payload.get('schema')!r} != {STATUS_SCHEMA_VERSION}"
        )
    if payload.get("state") not in ("starting", "running", "finished", "interrupted"):
        problems.append(f"unknown state {payload.get('state')!r}")
    progress = payload.get("progress")
    if not isinstance(progress, dict):
        problems.append("missing progress object")
    else:
        done = progress.get("done")
        total = progress.get("total")
        if not isinstance(done, int) or done < 0:
            problems.append(f"progress.done {done!r} is not a non-negative int")
        if total is not None and (not isinstance(total, int) or total < 0):
            problems.append(f"progress.total {total!r} is not an int or null")
        if isinstance(done, int) and isinstance(total, int) and done > total:
            problems.append(f"progress.done {done} exceeds total {total}")
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, dict) or not isinstance(outcomes.get("rates"), dict):
        problems.append("missing outcomes.rates object")
    else:
        for key in OUTCOME_KEYS:
            entry = outcomes["rates"].get(key)
            if not isinstance(entry, dict):
                problems.append(f"outcomes.rates.{key} missing")
                continue
            rate = entry.get("rate")
            low, high = entry.get("ci_low"), entry.get("ci_high")
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                problems.append(f"outcomes.rates.{key}.rate {rate!r} out of [0,1]")
            if (
                not isinstance(low, (int, float))
                or not isinstance(high, (int, float))
                or not 0.0 <= low <= high <= 1.0
            ):
                problems.append(
                    f"outcomes.rates.{key} CI ({low!r}, {high!r}) is not ordered in [0,1]"
                )
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        problems.append("missing counters object")
    else:
        for key in COUNTER_KEYS:
            value = counters.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"counters.{key} {value!r} is not a non-negative int")
    for key in ("elapsed_s", "rate_per_s", "updated_unix"):
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{key} {payload.get(key)!r} is not a number")
    return problems


def render_status(payload: dict) -> str:
    """Human-readable rendering of one snapshot (``repro watch``)."""
    progress = payload.get("progress", {})
    done = progress.get("done", 0)
    total = progress.get("total")
    campaign = payload.get("campaign", {})
    header = (
        f"[{payload.get('state', '?')}] "
        f"{campaign.get('mode', 'campaign')} {campaign.get('kind', '')}".rstrip()
    )
    lines = [header]
    bar = ""
    if total:
        fraction = min(1.0, done / total)
        filled = int(round(fraction * 30))
        bar = f" [{'#' * filled}{'.' * (30 - filled)}] {fraction:6.1%}"
    eta = payload.get("eta_s")
    eta_text = f", ETA {eta:.0f}s" if isinstance(eta, (int, float)) else ""
    lines.append(
        f"  progress: {done}/{total if total is not None else '?'}{bar} "
        f"({payload.get('rate_per_s', 0)}/s, elapsed {payload.get('elapsed_s', 0)}s"
        f"{eta_text})"
    )
    rates = payload.get("outcomes", {}).get("rates", {})
    for key in OUTCOME_KEYS:
        entry = rates.get(key)
        if not entry:
            continue
        lines.append(
            f"  {key:6s} {entry.get('count', 0):6d}  rate {entry.get('rate', 0.0):.4f}  "
            f"CI [{entry.get('ci_low', 0.0):.4f}, {entry.get('ci_high', 0.0):.4f}]"
        )
    counters = payload.get("counters", {})
    busy = {key: value for key, value in counters.items() if value}
    if busy:
        lines.append(
            "  counters: "
            + ", ".join(f"{key}={busy[key]}" for key in sorted(busy))
        )
    stratified = payload.get("stratified")
    if stratified:
        lines.append(
            f"  stratified: round {stratified.get('round', '?')}, "
            f"{stratified.get('cells_converged', 0)}/{stratified.get('cells_total', '?')} "
            f"cells converged, max CI width {stratified.get('max_ci_width', '?')}"
        )
    resume = payload.get("resume")
    if resume:
        lines.append(
            f"  resumed: {resume.get('replayed', '?')} journaled unit(s), "
            f"{resume.get('injections', '?')} injection(s) replayed"
        )
    return "\n".join(lines)
