"""Bounded flight recorder: the last N events, dumped on trouble.

The recorder subscribes to the campaign event bus and keeps a ring of
the most recent events.  When the campaign hits an anomaly — a
watchdog hang, a worker-pool retry/degrade, an interrupt — the ring is
flagged as *triggered*, and the observe session dumps it as a JSONL
post-mortem artifact so an operator can reconstruct the final moments
of a dead campaign without re-running it.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path

from repro.observe.events import EVENT_SCHEMA_VERSION, CampaignEvent

#: Ring capacity by default — small enough to dump instantly, large
#: enough to cover many chunks of context before an anomaly.
DEFAULT_CAPACITY = 512

#: Event kinds that arm the post-mortem dump.
TRIGGER_KINDS = frozenset({"watchdog_hang", "retry", "degrade", "interrupt"})


class FlightRecorder:
    """Event-bus subscriber keeping the last ``capacity`` events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"flight-recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.ring: deque[CampaignEvent] = deque(maxlen=capacity)
        self.events_seen = 0
        self.triggered = False
        self.trigger_kinds_seen: list[str] = []

    def __call__(self, event: CampaignEvent) -> None:
        self.events_seen += 1
        self.ring.append(event)
        if event.kind in TRIGGER_KINDS:
            self.triggered = True
            self.trigger_kinds_seen.append(event.kind)

    def dump(self, path: str | os.PathLike) -> Path:
        """Write the ring as JSONL: one header line, then the events."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "flight_recorder": 1,
            "event_schema": EVENT_SCHEMA_VERSION,
            "capacity": self.capacity,
            "events_seen": self.events_seen,
            "events_kept": len(self.ring),
            "triggered": self.triggered,
            "trigger_kinds": self.trigger_kinds_seen,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(event.to_dict(), sort_keys=True) for event in self.ring
        )
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path


def read_dump(path: str | os.PathLike) -> tuple[dict, list[dict]]:
    """Load one dump: ``(header, events)``; raises on malformed lines."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"flight-recorder dump {path} is empty")
    header = json.loads(lines[0])
    events = [json.loads(line) for line in lines[1:] if line.strip()]
    return header, events
