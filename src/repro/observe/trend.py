"""Cross-campaign trend dashboard: outcome rates and perf over history.

``repro report trend`` walks the forensics store in insertion order,
renders each campaign's outcome rates (Wilson CIs, unicode sparklines)
as a trajectory, gates **adjacent** campaigns through the same pooled
two-proportion z-test as ``repro report diff``, and — when a
``BENCH_campaign.json`` perf trajectory is present — adds the timing
history alongside.  The output reuses the forensics report renderers,
so the HTML artifact is byte-deterministic for a given store + bench
file, and the z-gate exit code makes the dashboard double as a CI
regression tripwire.

This module imports the forensics/report stack and must therefore never
be imported from ``repro.observe.__init__`` (the event-bus side stays
stdlib-only); consumers import ``repro.observe.trend`` explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faultinject.outcomes import wilson_interval
from repro.forensics.report import (
    OUTCOME_FIELDS,
    Z_THRESHOLD,
    Section,
    _effective_outcome_counts,
    render_sections,
    two_proportion_z,
)
from repro.forensics.store import CampaignStore

#: Eight-level block ramp for deterministic text sparklines.
SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float], ceiling: float | None = None) -> str:
    """Map ``values`` onto block characters; deterministic, no deps.

    ``ceiling`` pins the scale (rates use 1.0 is wasteful — the default
    scales to the series maximum so small movements stay visible).
    """
    if not values:
        return ""
    top = ceiling if ceiling is not None else max(values)
    if top <= 0:
        return SPARK_BLOCKS[0] * len(values)
    chars = []
    for value in values:
        level = int(round((value / top) * (len(SPARK_BLOCKS) - 1)))
        chars.append(SPARK_BLOCKS[max(0, min(level, len(SPARK_BLOCKS) - 1))])
    return "".join(chars)


#: Summary fields a trend row can be built from without loading the
#: full record (uniform campaigns; stratified ones need the record's
#: Horvitz-Thompson rates).
_SUMMARY_COUNT_FIELDS = ("total", "masked", "sdc", "crash_segv", "crash_abort", "hang")


def _counts_from_summary(summary: dict) -> tuple[dict[str, int], int] | None:
    """Effective outcome counts straight from an index summary row.

    Returns ``None`` when the row cannot stand in for the record: a
    stratified campaign (its diff-comparable counts are reweighted) or
    a legacy ``index.json`` row predating the full count breakdown.
    """
    if summary.get("sampling", None) != "uniform":
        return None
    if any(field not in summary for field in _SUMMARY_COUNT_FIELDS):
        return None
    return {
        "mask": int(summary["masked"]),
        "sdc": int(summary["sdc"]),
        "crash": int(summary["crash_segv"]) + int(summary["crash_abort"]),
        "hang": int(summary["hang"]),
    }, int(summary["total"])


def build_trend(
    store: CampaignStore, bench_path: Path | str | None = None
) -> dict:
    """Fold store + bench history into one trend payload.

    Returns ``{campaigns, outcomes, gates, flagged, bench}`` where
    ``gates`` holds one z-test row per adjacent campaign pair and
    outcome, and ``flagged`` lists the significant ones.  Reads go
    through the store index: uniform campaigns are charted from their
    summary rows alone; only stratified records (whose gate-comparable
    counts are Horvitz-Thompson reweighted) are fully loaded.
    """
    campaigns = []
    for cid, summary in store.summaries().items():
        from_summary = _counts_from_summary(summary)
        if from_summary is not None:
            effective, total = from_summary
            label = summary.get("label")
            kind = summary["kind"]
            stratified = False
        else:
            record = store.get(cid)
            effective, total = _effective_outcome_counts(record)
            label = record.get("label")
            kind = record["fingerprint"]["kind"]
            stratified = bool(record.get("sampling"))
        rates = {}
        for outcome, _fields in OUTCOME_FIELDS:
            count = effective[outcome]
            low, high = wilson_interval(count, total)
            rates[outcome] = {
                "count": count,
                "rate": count / total if total else 0.0,
                "ci_low": low,
                "ci_high": high,
            }
        campaigns.append(
            {
                "id": cid,
                "label": label,
                "kind": kind,
                "stratified": stratified,
                "total": total,
                "rates": rates,
            }
        )

    gates = []
    for prev, curr in zip(campaigns, campaigns[1:]):
        for outcome, _fields in OUTCOME_FIELDS:
            a, b = prev["rates"][outcome], curr["rates"][outcome]
            z = two_proportion_z(
                b["count"], curr["total"], a["count"], prev["total"]
            )
            gates.append(
                {
                    "pair": f"{prev['id']}->{curr['id']}",
                    "metric": f"outcome:{outcome}",
                    "rate_a": a["rate"],
                    "rate_b": b["rate"],
                    "z": z,
                    "flagged": abs(z) > Z_THRESHOLD,
                }
            )

    bench_entries = []
    if bench_path is not None:
        bench_path = Path(bench_path)
        if bench_path.exists():
            bench_entries = json.loads(bench_path.read_text())

    return {
        "campaigns": campaigns,
        "gates": gates,
        "flagged": [
            f"{gate['pair']} {gate['metric']}" for gate in gates if gate["flagged"]
        ],
        "bench": bench_entries,
        "threshold": Z_THRESHOLD,
    }


#: Bench timing fields charted in the perf trajectory, in column order.
BENCH_TIMING_FIELDS = (
    "serial_s",
    "parallel_s",
    "traced_s",
    "journaled_s",
    "probed_s",
    "observed_s",
    "fastforward_s",
    "fanout_s",
)


def _trend_sections(trend: dict) -> list[Section]:
    campaigns = trend["campaigns"]

    history = Section(
        "Campaign history (store insertion order)",
        headers=["#", "id", "label", "kind", "mode", "classified",
                 *[outcome for outcome, _f in OUTCOME_FIELDS]],
    )
    for index, campaign in enumerate(campaigns):
        history.rows.append(
            [
                index,
                campaign["id"],
                campaign["label"] or "-",
                campaign["kind"],
                "stratified" if campaign["stratified"] else "uniform",
                campaign["total"],
                *[
                    f"{campaign['rates'][outcome]['rate']:.4f}"
                    for outcome, _f in OUTCOME_FIELDS
                ],
            ]
        )
    if not campaigns:
        history.notes.append("store is empty — run campaigns with --store first")

    trajectory = Section(
        "Outcome-rate trajectories (Wilson 95% CI of the latest campaign)",
        headers=["outcome", "trend", "latest_rate", "ci_low", "ci_high"],
    )
    for outcome, _fields in OUTCOME_FIELDS:
        series = [campaign["rates"][outcome]["rate"] for campaign in campaigns]
        latest = campaigns[-1]["rates"][outcome] if campaigns else None
        trajectory.rows.append(
            [
                outcome,
                sparkline(series),
                f"{latest['rate']:.4f}" if latest else "-",
                f"{latest['ci_low']:.4f}" if latest else "-",
                f"{latest['ci_high']:.4f}" if latest else "-",
            ]
        )

    gate = Section(
        f"Adjacent-campaign z-gate (|z| > {trend['threshold']:g} flagged)",
        headers=["pair", "metric", "rate_a", "rate_b", "delta", "z", "flag"],
    )
    for row in trend["gates"]:
        gate.rows.append(
            [
                row["pair"],
                row["metric"],
                f"{row['rate_a']:.4f}",
                f"{row['rate_b']:.4f}",
                f"{row['rate_b'] - row['rate_a']:+.4f}",
                f"{row['z']:+.2f}",
                "SHIFT" if row["flagged"] else "",
            ]
        )
    if trend["flagged"]:
        gate.notes.append(
            f"{len(trend['flagged'])} significant shift(s): "
            + ", ".join(trend["flagged"])
        )
    elif trend["gates"]:
        gate.notes.append("no statistically significant shifts between neighbours")
    else:
        gate.notes.append("need at least 2 stored campaigns to gate")

    sections = [history, trajectory, gate]

    bench = trend.get("bench") or []
    if bench:
        perf = Section(
            "Performance trajectory (BENCH_campaign.json)",
            headers=["#", "timestamp", "scale", "workers", *BENCH_TIMING_FIELDS],
        )
        for index, entry in enumerate(bench):
            perf.rows.append(
                [
                    index,
                    entry.get("timestamp", "-"),
                    entry.get("scale", "-"),
                    entry.get("workers", "-"),
                    *[
                        f"{entry[field_name]:.3f}" if field_name in entry else "-"
                        for field_name in BENCH_TIMING_FIELDS
                    ],
                ]
            )
        spark = Section(
            "Timing sparklines (scaled per stage)",
            headers=["stage", "trend", "latest_s"],
        )
        for field_name in BENCH_TIMING_FIELDS:
            series = [
                float(entry[field_name]) for entry in bench if field_name in entry
            ]
            if not series:
                continue
            spark.rows.append([field_name, sparkline(series), f"{series[-1]:.3f}"])
        sections.extend([perf, spark])

    return sections


def render_trend(trend: dict, fmt: str = "terminal") -> str:
    """Render one trend payload; byte-deterministic per input."""
    return render_sections("Campaign trend dashboard", _trend_sections(trend), fmt)
