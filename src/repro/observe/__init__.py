"""Live campaign observatory: event bus, status snapshots, flight recorder.

Only the stdlib-only event API is re-exported here so that importing
``repro.observe`` from the telemetry progress path cannot create an
import cycle (``repro.telemetry`` imports ``progress`` at package
import, and ``progress`` emits events through this package).  The
heavier layers are explicit submodules:

* :mod:`repro.observe.status` — crash-safe JSON status snapshots
* :mod:`repro.observe.server` — zero-dependency ``/status`` + ``/metrics``
* :mod:`repro.observe.recorder` — bounded flight-recorder ring
* :mod:`repro.observe.session` — the ``observe_campaign`` wiring
* :mod:`repro.observe.trend` — cross-campaign trend dashboard
"""

from repro.observe.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    CampaignEvent,
    EventBus,
    current,
    emit,
    enabled,
    install,
    restore,
    uninstall,
)

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "CampaignEvent",
    "EventBus",
    "current",
    "emit",
    "enabled",
    "install",
    "restore",
    "uninstall",
]
