"""The one-call wiring for an observed campaign.

:func:`observe_campaign` installs an event bus, subscribes the status
writer and flight recorder, optionally starts the HTTP observatory,
and guarantees teardown: terminal status state, post-mortem flight
dump on anomalies, server shutdown, previous bus restored.  The
campaign engine itself never imports this module — observation is
wired entirely from the outside (CLI, tests), which is what keeps
observed and unobserved campaigns bit-identical.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator

from repro.observe import events
from repro.observe.recorder import FlightRecorder
from repro.observe.server import ObservatoryServer
from repro.observe.status import StatusWriter

#: Environment one-flag: a path enables status snapshots campaign-wide.
STATUS_ENV = "REPRO_STATUS"


class ObserveSession:
    """Handles for the live observation layers of one campaign."""

    def __init__(
        self,
        bus: events.EventBus,
        status: StatusWriter,
        recorder: FlightRecorder,
        server: ObservatoryServer | None,
        flight_path: Path | None,
    ) -> None:
        self.bus = bus
        self.status = status
        self.recorder = recorder
        self.server = server
        self.flight_path = flight_path
        self.flight_dumped: Path | None = None

    def dump_flight(self) -> Path | None:
        """Write the flight-recorder ring (once) if a path is known."""
        if self.flight_path is None or self.flight_dumped is not None:
            return self.flight_dumped
        self.flight_dumped = self.recorder.dump(self.flight_path)
        return self.flight_dumped


def resolve_status_path(flag_value: str | None) -> str | None:
    """CLI flag beats the ``REPRO_STATUS`` environment variable."""
    if flag_value is not None:
        return flag_value
    env = os.environ.get(STATUS_ENV)
    return env if env else None


def default_flight_path(status_path: str | os.PathLike | None) -> Path | None:
    """Flight dumps land next to the status file by default."""
    if status_path is None:
        return None
    status_path = Path(status_path)
    return status_path.with_name(status_path.stem + ".flightrec.jsonl")


@contextlib.contextmanager
def observe_campaign(
    status_path: str | os.PathLike | None = None,
    *,
    serve: bool = False,
    serve_host: str = "127.0.0.1",
    serve_port: int = 0,
    flight_path: str | os.PathLike | None = None,
    flight_capacity: int | None = None,
) -> Iterator[ObserveSession]:
    """Observe every campaign run inside the ``with`` block.

    On a clean exit the status file reaches ``finished`` and the flight
    recorder dumps only if it saw trigger events (hangs, retries).  On
    an exception — including ``KeyboardInterrupt`` and the journal's
    ``CampaignInterrupted`` — an ``interrupt`` event is published, the
    status file reaches ``interrupted``, the ring is dumped, and the
    exception propagates unchanged.
    """
    previous = events.current()
    bus = events.install(events.EventBus())
    status = StatusWriter(status_path)
    recorder = (
        FlightRecorder(flight_capacity)
        if flight_capacity is not None
        else FlightRecorder()
    )
    bus.subscribe(status)
    bus.subscribe(recorder)
    status.write()
    server = None
    if serve:
        server = ObservatoryServer(status, host=serve_host, port=serve_port).start()
    resolved_flight = (
        Path(flight_path) if flight_path is not None else default_flight_path(status_path)
    )
    session = ObserveSession(bus, status, recorder, server, resolved_flight)
    try:
        yield session
    except BaseException as exc:
        bus.publish("interrupt", {"error": type(exc).__name__})
        session.dump_flight()
        raise
    else:
        if status.state not in ("finished", "interrupted"):
            status.mark("finished")
        if recorder.triggered:
            session.dump_flight()
    finally:
        if server is not None:
            server.stop()
        events.restore(previous)
