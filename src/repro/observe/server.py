"""Zero-dependency observatory endpoints: ``/status`` and ``/metrics``.

:class:`ObservatoryServer` wraps a stdlib :class:`http.server` instance
on a daemon thread.  ``/status`` serves the live JSON snapshot from a
:class:`~repro.observe.status.StatusWriter`; ``/metrics`` renders the
telemetry :class:`~repro.telemetry.metrics.MetricsRegistry` (when
tracing is active) plus the status counters in the Prometheus text
exposition format.  Requests never touch campaign state — the handler
reads immutable snapshots — so serving cannot perturb results.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observe.status import StatusWriter


def _sanitize(name: str) -> str:
    """Metric-name charset for Prometheus: ``[a-zA-Z0-9_]``."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def render_prometheus(
    status: dict | None, metrics_snapshot: dict | None
) -> str:
    """Prometheus text exposition of status + telemetry metrics.

    Output is deterministic (sorted keys) so CI can diff it.
    """
    lines: list[str] = []
    if status is not None:
        progress = status.get("progress", {})
        done = progress.get("done", 0)
        total = progress.get("total")
        lines.append("# TYPE repro_campaign_injections_done gauge")
        lines.append(f"repro_campaign_injections_done {done}")
        if isinstance(total, int):
            lines.append("# TYPE repro_campaign_injections_total gauge")
            lines.append(f"repro_campaign_injections_total {total}")
        rates = status.get("outcomes", {}).get("rates", {})
        for outcome in sorted(rates):
            entry = rates[outcome]
            lines.append(
                f'repro_campaign_outcome_count{{outcome="{outcome}"}} '
                f"{entry.get('count', 0)}"
            )
            lines.append(
                f'repro_campaign_outcome_rate{{outcome="{outcome}"}} '
                f"{entry.get('rate', 0.0)}"
            )
        for counter in sorted(status.get("counters", {})):
            value = status["counters"][counter]
            lines.append(f"repro_campaign_{_sanitize(counter)}_total {value}")
        state = status.get("state", "unknown")
        lines.append(f'repro_campaign_state{{state="{state}"}} 1')
    if metrics_snapshot is not None:
        for name in sorted(metrics_snapshot.get("counters", {})):
            value = metrics_snapshot["counters"][name]
            lines.append(f"repro_{_sanitize(name)}_total {value}")
        for name in sorted(metrics_snapshot.get("gauges", {})):
            value = metrics_snapshot["gauges"][name]
            lines.append(f"repro_{_sanitize(name)} {value}")
        for name in sorted(metrics_snapshot.get("timers", {})):
            timer = metrics_snapshot["timers"][name]
            base = f"repro_{_sanitize(name)}"
            lines.append(f"{base}_seconds_total {timer.get('total_s', 0.0)}")
            lines.append(f"{base}_count {timer.get('count', 0)}")
    return "\n".join(lines) + "\n"


class ObservatoryServer:
    """A daemon-thread HTTP server over one :class:`StatusWriter`."""

    def __init__(self, status_writer: StatusWriter, host: str = "127.0.0.1", port: int = 0):
        self.status_writer = status_writer
        observatory = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] == "/status":
                    body = json.dumps(
                        observatory.status_writer.snapshot(), sort_keys=True
                    ).encode("utf-8")
                    self._reply(200, "application/json", body)
                elif self.path.split("?", 1)[0] == "/metrics":
                    body = observatory.render_metrics().encode("utf-8")
                    self._reply(200, "text/plain; version=0.0.4", body)
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _reply(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                # Never write request logs onto the campaign's stdout.
                pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-observatory", daemon=True
        )

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def render_metrics(self) -> str:
        """The ``/metrics`` body: status + live telemetry registry."""
        # Imported lazily: repro.telemetry activates tracing from the
        # environment at package import, which this module must not
        # force just to construct a server.
        from repro import telemetry

        tracer = telemetry.get_tracer()
        metrics_snapshot = tracer.registry.snapshot() if tracer is not None else None
        return render_prometheus(self.status_writer.snapshot(), metrics_snapshot)

    def start(self) -> "ObservatoryServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
