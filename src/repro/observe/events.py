"""Typed campaign event bus: one subscriber API for live observability.

The campaign engine — :mod:`repro.faultinject.campaign`, the parallel
executor, the checkpoint journal and the stratified sampling loop —
emits :class:`CampaignEvent` records describing everything an operator
would want to watch: campaign start/finish, chunk/group/round
completion, retries and degradation, watchdog hangs, journal
checkpoints and resumes, stratum convergence, fan-out golden tails and
heartbeat progress.  Subscribers (the status-snapshot writer, the
flight recorder, tests) receive every event in emission order.

Determinism contract — the same one tracing and probes honour:

* **Disabled cost is one ``None`` check.**  ``emit`` reads one module
  global; with no bus installed it returns immediately, so the
  emission points in the campaign hot paths cost nothing measurable.
* **Observation never perturbs.**  A subscriber that raises is counted
  (``EventBus.subscriber_errors``) and skipped — an exception in a
  status writer must never abort, reorder or otherwise change a
  campaign.  Observed campaigns are bit-identical to unobserved ones
  at any worker count and across interrupt/resume (pinned by
  ``tests/observe/test_observed_equivalence.py``).
* Events are emitted **parent-side only**: worker processes never have
  a bus installed, so fan-out never duplicates events.

The payload vocabulary is versioned like the journal schema:
``EVENT_SCHEMA_VERSION`` bumps whenever a kind is removed or a payload
field changes meaning (adding kinds or fields is compatible).  The
full schema is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

#: Bump when an event kind is removed or a payload field changes
#: meaning; adding new kinds or payload fields is backward compatible.
EVENT_SCHEMA_VERSION = 1

#: Every event kind the engine emits (the typed vocabulary).  Tests
#: assert emitted kinds stay inside this set; subscribers may rely on
#: unknown kinds never appearing within one schema version.
EVENT_KINDS = frozenset(
    {
        "campaign_start",  # one campaign began (mode, total, workers)
        "campaign_finish",  # final outcome counts
        "injection_done",  # one injection finished (serial loop)
        "chunk_done",  # one index chunk secured (parallel/journaled)
        "group_done",  # one boundary group secured (fan-out mode)
        "round_done",  # one stratified sampling round absorbed
        "retry",  # a worker-pool failure triggered a chunk retry
        "degrade",  # worker count halved / serial fallback engaged
        "watchdog_hang",  # a secured chunk carried watchdog-hang runs
        "journal_checkpoint",  # one chunk/round fsync'd to the journal
        "journal_resume",  # a resume replayed journaled work
        "stratum_converged",  # one stratified cell reached its CI target
        "golden_tail",  # fan-out synthesized a golden tail
        "heartbeat",  # rate-limited progress (done/total/rate/ETA)
        "note",  # free-form annotation (probe/fast-forward/... banners)
        "interrupt",  # the campaign stopped early (abort hook, Ctrl-C)
    }
)


@dataclass(frozen=True)
class CampaignEvent:
    """One typed event: a monotonic sequence number, kind and payload.

    ``t`` is a wall-clock timestamp (``time.time()``) for post-mortem
    correlation; nothing in the engine ever reads it back, so it cannot
    perturb determinism.
    """

    seq: int
    t: float
    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-stable encoding (flight-recorder dumps)."""
        return {
            "seq": self.seq,
            "t": round(self.t, 6),
            "kind": self.kind,
            "payload": dict(self.payload),
        }


Subscriber = Callable[[CampaignEvent], None]


class EventBus:
    """Synchronous fan-out of campaign events to subscribers.

    Emission order is delivery order; subscribers run in subscription
    order.  Subscriber exceptions are swallowed and counted — the bus
    exists to observe a campaign, never to influence one.
    """

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []
        self.next_seq = 0
        self.events_emitted = 0
        self.subscriber_errors = 0

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register ``subscriber``; returns it (decorator-friendly)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove one subscription (no-op when absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def publish(self, kind: str, payload: Mapping[str, object]) -> CampaignEvent:
        """Deliver one event to every subscriber; returns the event."""
        event = CampaignEvent(
            seq=self.next_seq, t=time.time(), kind=kind, payload=payload
        )
        self.next_seq += 1
        self.events_emitted += 1
        for subscriber in tuple(self._subscribers):
            try:
                subscriber(event)
            except Exception:
                # Observability must never abort a campaign: count the
                # failure (surfaced via bus stats) and keep going.
                self.subscriber_errors += 1
        return event


#: The process-local bus; ``None`` means observation is off (the
#: default) and every ``emit`` is a single-check no-op — the same
#: fast-path idiom as ``repro.telemetry.tracing._TRACER``.
_BUS: EventBus | None = None


def enabled() -> bool:
    """True when an event bus is installed in this process."""
    return _BUS is not None


def current() -> EventBus | None:
    """The installed bus, or None while observation is off."""
    return _BUS


def install(bus: EventBus | None = None) -> EventBus:
    """Install ``bus`` (or a fresh one) as the process bus.

    Returns the now-active bus.  Callers that need nesting safety keep
    the previous return of :func:`current` and restore it via
    :func:`restore` — the ``observe_campaign`` context manager does.
    """
    global _BUS
    _BUS = bus if bus is not None else EventBus()
    return _BUS


def restore(previous: EventBus | None) -> None:
    """Re-install ``previous`` (possibly None) as the process bus."""
    global _BUS
    _BUS = previous


def uninstall() -> EventBus | None:
    """Remove the process bus; returns the bus that was active."""
    global _BUS
    bus, _BUS = _BUS, None
    return bus


def emit(kind: str, /, **payload: object) -> None:
    """Publish one event — the single-check fast path.

    With no bus installed this is one global read and a ``None``
    comparison, so emission points stay free in unobserved campaigns.
    """
    bus = _BUS
    if bus is not None:
        bus.publish(kind, payload)
