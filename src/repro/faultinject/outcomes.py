"""Outcome taxonomy and campaign statistics.

The paper classifies every error-injection run into Mask, Crash, SDC or
Hang (Section V-A), and further splits crashes into segmentation faults
(92%) and aborts (8%) (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.faultinject.watchdog import WatchdogExpired
from repro.runtime.errors import (
    HangDetected,
    InsufficientMatchesError,
    InternalAbortError,
    SegmentationFault,
)


class Outcome(Enum):
    """Primary outcome of one error-injection run."""

    MASKED = "mask"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"


class CrashKind(Enum):
    """Sub-classification of Crash outcomes."""

    SEGV = "segv"  # memory access violation
    ABORT = "abort"  # library-internal constraint violation


class HangKind(Enum):
    """Sub-classification of Hang outcomes.

    ``SIMULATED`` hangs come from the cycle-budget watchdog
    (:class:`~repro.runtime.errors.HangDetected`): the workload kept
    running the simulated machine past its cycle budget.  ``WATCHDOG``
    hangs are *real* wall-clock stalls caught by the monitor-thread
    deadline (:mod:`repro.faultinject.watchdog`): the workload stopped
    making progress entirely, so the cycle watchdog could never fire.
    Both count as the paper's Hang outcome; the split is diagnostic.
    """

    SIMULATED = "simulated"
    WATCHDOG = "watchdog"


#: Exception types that model a memory access violation (SIGSEGV).
_SEGV_TYPES = (SegmentationFault, IndexError, KeyError)

#: Exception types that model the binary trapping on corrupted state
#: (abort signals raised by the application or its libraries).
_ABORT_TYPES = (
    InternalAbortError,
    InsufficientMatchesError,  # only if it ever escapes the pipeline
    ValueError,
    TypeError,
    ZeroDivisionError,
    OverflowError,
    FloatingPointError,
    MemoryError,
    np.linalg.LinAlgError,
)


def classify_exception(exc: BaseException) -> tuple[Outcome, CrashKind | None]:
    """Map an exception from an injected run to its outcome class.

    Unrecognized exception types are *not* silently classified — they
    indicate a library bug and are re-raised by the monitor.
    """
    if isinstance(exc, (HangDetected, WatchdogExpired)):
        return Outcome.HANG, None
    if isinstance(exc, _SEGV_TYPES):
        return Outcome.CRASH, CrashKind.SEGV
    if isinstance(exc, _ABORT_TYPES):
        return Outcome.CRASH, CrashKind.ABORT
    raise exc


def hang_kind_for(exc: BaseException) -> HangKind | None:
    """The Hang sub-kind for an exception, or None for non-hangs."""
    if isinstance(exc, WatchdogExpired):
        return HangKind.WATCHDOG
    if isinstance(exc, HangDetected):
        return HangKind.SIMULATED
    return None


@dataclass
class OutcomeCounts:
    """Tallies of every outcome class."""

    masked: int = 0
    sdc: int = 0
    crash_segv: int = 0
    crash_abort: int = 0
    hang: int = 0

    @property
    def crash(self) -> int:
        """All crashes (segv + abort)."""
        return self.crash_segv + self.crash_abort

    @property
    def total(self) -> int:
        """Total classified runs."""
        return self.masked + self.sdc + self.crash + self.hang

    def add(self, outcome: Outcome, crash_kind: CrashKind | None = None) -> None:
        """Record one run's outcome."""
        if outcome is Outcome.MASKED:
            self.masked += 1
        elif outcome is Outcome.SDC:
            self.sdc += 1
        elif outcome is Outcome.HANG:
            self.hang += 1
        elif outcome is Outcome.CRASH:
            if crash_kind is CrashKind.ABORT:
                self.crash_abort += 1
            else:
                self.crash_segv += 1
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown outcome {outcome!r}")

    def rate(self, outcome: Outcome) -> float:
        """Fraction of runs with the given outcome (0 when no runs)."""
        if self.total == 0:
            return 0.0
        counts = {
            Outcome.MASKED: self.masked,
            Outcome.SDC: self.sdc,
            Outcome.CRASH: self.crash,
            Outcome.HANG: self.hang,
        }
        return counts[outcome] / self.total

    def rates(self) -> dict[str, float]:
        """All rates keyed by outcome value name."""
        return {outcome.value: self.rate(outcome) for outcome in Outcome}

    def segv_fraction_of_crashes(self) -> float:
        """Share of crashes that are segmentation faults."""
        if self.crash == 0:
            return 0.0
        return self.crash_segv / self.crash


def wilson_interval(successes: int, total: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial rate.

    With no samples there is no rate to bound: ``total == 0`` returns
    the degenerate ``(0.0, 0.0)`` (matching the 0.0 point estimate used
    throughout, e.g. :meth:`OutcomeCounts.rate`) rather than dividing
    by zero.  ``z == 0`` likewise degenerates cleanly to ``(p, p)``.
    """
    if total == 0:
        return 0.0, 0.0
    p = successes / total
    denom = 1.0 + z * z / total
    center = (p + z * z / (2 * total)) / denom
    margin = z * np.sqrt(p * (1 - p) / total + z * z / (4 * total * total)) / denom
    return max(0.0, center - margin), min(1.0, center + margin)


@dataclass
class RunningRates:
    """Outcome rates as a function of injection count (paper Fig. 9a)."""

    checkpoints: list[int] = field(default_factory=list)
    rates: dict[str, list[float]] = field(
        default_factory=lambda: {o.value: [] for o in Outcome}
    )

    def record(self, counts: OutcomeCounts) -> None:
        """Append the current rates at the current injection count."""
        self.checkpoints.append(counts.total)
        for outcome in Outcome:
            self.rates[outcome.value].append(counts.rate(outcome))

    def series(self, outcome: Outcome) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(n_injections, rate)`` arrays for one outcome."""
        return np.array(self.checkpoints), np.array(self.rates[outcome.value])
