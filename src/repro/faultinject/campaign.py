"""Statistical error-injection campaigns (paper Section V-A).

A campaign runs ``n`` single-bit injections at uniformly random error
sites (cycle, register, bit) of one register kind, collecting:

* outcome counts and rates (Fig. 10 / Fig. 11),
* running rates after every injection — the convergence trend whose
  knee tells how many injections suffice (Fig. 9a),
* the per-register and per-bit injection histograms that demonstrate
  error-site coverage (Fig. 9b),
* the corrupted outputs of SDC runs, for quality analysis (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry
from repro.faultinject.injector import InjectionPlan, random_plan
from repro.faultinject.journal import (
    CampaignJournal,
    JournalError,
    config_fingerprint,
    load_journal,
    require_sampling_mode,
)
from repro.faultinject.monitor import FaultMonitor, InjectionResult, Workload
from repro.faultinject.outcomes import OutcomeCounts, RunningRates
from repro.faultinject.parallel import (
    RetryPolicy,
    WorkloadSpec,
    compute_chunk_bounds,
    execute_plans_parallel,
    resolve_workers,
)
from repro.faultinject.registers import NUM_REGISTERS, REGISTER_BITS, LivenessModel, RegKind
from repro.faultinject.watchdog import WatchdogPolicy
from repro.observe import events as observe_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faultinject.sampling import StratifiedSummary


@dataclass
class CampaignConfig:
    """Parameters of one injection campaign."""

    n_injections: int
    kind: RegKind
    seed: int = 0
    hang_factor: float = 6.0
    site_filter: str | None = None
    keep_sdc_outputs: bool = True
    liveness: LivenessModel = field(default_factory=LivenessModel)
    #: Worker processes to shard the campaign across.  ``None`` defers
    #: to the ``REPRO_WORKERS`` environment variable (default 1 = the
    #: serial path).  Values above 1 take effect only when the caller
    #: supplies a picklable workload spec (see ``run_campaign``).
    workers: int | None = None
    #: Wall-clock watchdog deadlines (see
    #: :mod:`repro.faultinject.watchdog`).  ``None`` disables both the
    #: per-injection soft deadline and the per-chunk hard deadline;
    #: the simulated cycle-budget watchdog (``hang_factor``) is always
    #: active either way.
    watchdog: WatchdogPolicy | None = None
    #: Chunk retry/backoff/degradation behaviour for worker failures
    #: (see :class:`repro.faultinject.parallel.RetryPolicy`).  Never
    #: affects results, only whether and how a campaign survives them.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Enable stage-boundary divergence probes (see
    #: :mod:`repro.forensics`): every injection additionally records the
    #: first pipeline stage whose output diverged from the golden run,
    #: the last stage reached, and a per-stage diverged bitmap.  Probes
    #: only observe — outcomes, counts, histograms and SDC payloads are
    #: bit-identical to an unprobed campaign at any worker count.
    probe: bool = False
    #: Golden-prefix fast-forward (see
    #: :mod:`repro.faultinject.fastforward`): injected runs restore the
    #: last golden frame-boundary snapshot before their target cycle and
    #: execute only the live suffix.  Results are bit-identical to full
    #: executions; only wall-clock time changes.  Takes effect for
    #: workloads whose spec can rebuild a snapshot tape (the standard VS
    #: workloads); custom workloads run in full either way.  Part of the
    #: journal config fingerprint, so a journal written in one mode
    #: cannot be resumed in the other.
    fast_forward: bool = True
    #: Boundary fan-out (see :class:`repro.faultinject.fastforward.
    #: BoundaryFanOut`): group plans by the frame boundary they resume
    #: from, dispatch whole groups to workers, materialize each
    #: boundary's restore once per worker and clone per-run state
    #: copy-on-write from it, synthesizing golden tails for runs that
    #: re-converge to the tape.  Results are bit-identical to plain
    #: fast-forward (``--no-boundary-batch``); only wall-clock time
    #: changes.  No effect unless ``fast_forward`` is active.  Part of
    #: the journal config fingerprint: journals checkpoint at group
    #: granularity in this mode, so mixed-mode resume is rejected.
    boundary_batch: bool = True
    #: Sampling strategy (see :mod:`repro.faultinject.sampling`).
    #: ``"uniform"`` (the default) draws ``n_injections`` plans exactly
    #: as every previous release did — byte-identical for the same seed,
    #: an invariant pinned by tests.  ``"stratified"`` ignores
    #: ``n_injections`` and instead samples (register-class x bit-octet
    #: x resume-boundary) cells in rounds, stopping each cell once its
    #: widest Wilson CI drops below ``ci_width``; results carry both raw
    #: and Horvitz-Thompson reweighted rates.  Part of the journal
    #: config fingerprint, so mixed-mode resume is rejected.
    sampling: str = "uniform"
    #: Stratified mode: per-cell convergence target — a cell stops once
    #: the widest Wilson 95% CI over its outcome rates is at most this.
    ci_width: float = 0.02
    #: Stratified mode: injections drawn per still-unresolved cell per
    #: round (the journal checkpoints once per round).
    round_size: int = 8
    #: Stratified mode: hard campaign-wide draw budget; ``None`` keeps
    #: sampling until every cell converges.  A cell that cannot reach
    #: ``ci_width`` within the budget is reported unconverged.
    max_injections: int | None = None
    #: Stratified mode: the cell grid as (register classes, bit octets,
    #: max cycle strata).  Register classes and bit octets must divide
    #: 32 and 64; cycle strata snap to the golden run's frame boundaries
    #: when a snapshot tape exists.
    strata: tuple[int, int, int] = (4, 8, 8)
    #: Heartbeat cadence in seconds; ``None`` defers to the
    #: ``REPRO_HEARTBEAT_INTERVAL`` environment variable (default 2.0).
    #: Pure presentation — never part of the journal fingerprint.
    heartbeat_interval: float | None = None
    #: Suppress heartbeat/annotation lines on stderr.  Progress still
    #: flows through the observe event bus when one is installed, so a
    #: quiet campaign remains fully watchable via ``--status``.
    quiet: bool = False


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    counts: OutcomeCounts
    running: RunningRates
    results: list[InjectionResult]
    register_histogram: np.ndarray  # (NUM_REGISTERS,) injections per register
    bit_histogram: np.ndarray  # (REGISTER_BITS,) injections per bit
    #: Fired-and-in-study counts, tallied incrementally during the run
    #: so the full ``results`` list never has to be re-walked (and could
    #: in principle be dropped for huge campaigns).
    fired: OutcomeCounts | None = None
    #: Stratified-sampling summary (per-cell statistics, raw vs
    #: Horvitz-Thompson reweighted rates, draws saved) when the campaign
    #: ran with ``sampling="stratified"``; None for uniform campaigns.
    sampling: "StratifiedSummary | None" = None

    @property
    def sdc_results(self) -> list[InjectionResult]:
        """The SDC runs (with corrupted outputs when kept)."""
        return [r for r in self.results if r.is_sdc]

    def rates(self) -> dict[str, float]:
        """Outcome rates keyed by name."""
        return self.counts.rates()

    def fired_counts(self) -> OutcomeCounts:
        """Outcome counts restricted to runs whose flip actually fired.

        Site-filtered campaigns (the hot-function study) only count the
        experiments that injected into the functions of interest, as the
        paper's AFI configuration does (Section V-C).
        """
        if self.fired is not None:
            return self.fired
        counts = OutcomeCounts()
        for result in self.results:
            if result.record.fired and result.record.in_study:
                counts.add(result.outcome, result.crash_kind)
        return counts


def draw_plans(config: CampaignConfig, golden_cycles: int) -> list[InjectionPlan]:
    """Draw the campaign's full plan sequence from its seed.

    Serial and parallel execution share this single, ordered draw, which
    is what makes their results bit-identical.
    """
    plan_rng = np.random.default_rng(config.seed)
    return [
        random_plan(plan_rng, golden_cycles, config.kind)
        for _ in range(config.n_injections)
    ]


def assemble_campaign(
    config: CampaignConfig, results: list[InjectionResult]
) -> CampaignResult:
    """Fold ordered per-run results into campaign statistics."""
    counts = OutcomeCounts()
    fired = OutcomeCounts()
    running = RunningRates()
    register_histogram = np.zeros(NUM_REGISTERS, dtype=np.int64)
    bit_histogram = np.zeros(REGISTER_BITS, dtype=np.int64)
    for result in results:
        counts.add(result.outcome, result.crash_kind)
        running.record(counts)
        if result.record.fired and result.record.in_study:
            fired.add(result.outcome, result.crash_kind)
        register_histogram[result.plan.register] += 1
        bit_histogram[result.plan.bit] += 1
        if not config.keep_sdc_outputs:
            # Drop any corrupted-output payload eagerly; nothing
            # downstream may rely on it when retention is off.
            result.output = None
    return CampaignResult(
        config=config,
        counts=counts,
        running=running,
        results=results,
        register_histogram=register_histogram,
        bit_histogram=bit_histogram,
        fired=fired,
    )


def _prepare_journal(
    config: CampaignConfig,
    n_plans: int,
    workers: int,
    journal_path: Path,
    resume: bool,
    groups: list[list[int]] | None = None,
) -> tuple[
    CampaignJournal,
    list[tuple[int, int]] | None,
    list[list[int]] | None,
    dict[int, list[InjectionResult]],
    bool,
]:
    """Open (or reopen) the journal.

    Returns ``(journal, bounds, groups, completed, partial)`` — exactly
    one of ``bounds``/``groups`` is set, and on resume it is whatever
    the journal header recorded (the original run's dispatch must be
    replayed verbatim; the config fingerprint has already rejected a
    journal written in the other batching mode).
    """
    journal_path = Path(journal_path)
    if not resume:
        if groups is not None:
            journal = CampaignJournal.create(journal_path, config, groups=groups)
            return journal, None, groups, {}, False
        bounds = compute_chunk_bounds(n_plans, workers)
        journal = CampaignJournal.create(journal_path, config, bounds)
        return journal, bounds, None, {}, False

    state = load_journal(journal_path)
    # Mode mixing gets its own targeted error before the generic
    # fingerprint comparison (which would also refuse it, less clearly).
    require_sampling_mode(state.fingerprint, config, journal_path)
    fingerprint = config_fingerprint(config)
    if state.fingerprint != fingerprint:
        raise JournalError(
            f"journal {journal_path} was written by a different campaign "
            f"configuration (journal {state.fingerprint} vs requested "
            f"{fingerprint}); refusing to mix results"
        )
    journal_groups = state.groups
    if journal_groups is not None:
        covered = sorted(index for group in journal_groups for index in group)
        if covered != list(range(n_plans)):
            raise JournalError(
                f"journal {journal_path} boundary groups do not cover the "
                f"campaign's {n_plans} injections"
            )
        journal = CampaignJournal.append_to(
            journal_path, chunks_written=len(state.chunks)
        )
        return journal, None, journal_groups, state.chunks, state.discarded_partial
    bounds = state.chunk_bounds
    if not bounds or bounds[-1][1] != n_plans or bounds[0][0] != 0:
        raise JournalError(
            f"journal {journal_path} chunk bounds {bounds!r} do not cover "
            f"the campaign's {n_plans} injections"
        )
    journal = CampaignJournal.append_to(journal_path, chunks_written=len(state.chunks))
    return journal, bounds, None, state.chunks, state.discarded_partial


def run_campaign(
    workload: Workload,
    golden_output: np.ndarray,
    golden_cycles: int,
    config: CampaignConfig,
    spec: WorkloadSpec | None = None,
    journal_path: Path | None = None,
    resume: bool = False,
) -> CampaignResult:
    """Run a full statistical injection campaign.

    Fully deterministic given ``config.seed``: plans are drawn from a
    seeded generator and each run's injector RNG is derived from it.

    When ``spec`` (a picklable recipe that rebuilds the workload, see
    :mod:`repro.faultinject.parallel`) is given and the resolved worker
    count exceeds 1, injections are sharded across a process pool and
    reassembled in order — the result is bit-identical to the serial
    path regardless of the worker count.  Worker deaths and stalled
    chunks retry under ``config.retry`` and degrade toward in-process
    execution rather than aborting (see ``docs/resilience.md``).

    ``journal_path`` makes the campaign **crash-safe**: every completed
    chunk is durably appended (fsync'd) to a JSONL checkpoint journal.
    ``resume=True`` replays the journal's completed chunks — after
    validating that its config fingerprint matches — and executes only
    the remainder, producing a result bit-identical to an uninterrupted
    run.  A torn trailing record from a mid-write crash is detected and
    discarded; that chunk simply re-runs.

    With telemetry enabled (see :mod:`repro.telemetry`) the campaign
    additionally records phase spans, per-outcome counters and a
    progress heartbeat on stderr — none of which feed back into the
    campaign, so traced and untraced runs produce identical results.

    ``config.sampling="stratified"`` dispatches to the adaptive planner
    (see :mod:`repro.faultinject.sampling`): draws are stratified over
    (register-class x bit-octet x resume-boundary) cells and each cell
    stops once its Wilson-CI width converges.  The default uniform mode
    is untouched — plans stay byte-identical to previous releases.
    """
    if config.sampling not in ("uniform", "stratified"):
        raise ValueError(
            f"sampling must be 'uniform' or 'stratified', got {config.sampling!r}"
        )
    if config.sampling == "stratified":
        from repro.faultinject.sampling import run_stratified_campaign

        return run_stratified_campaign(
            workload,
            golden_output,
            golden_cycles,
            config,
            spec=spec,
            journal_path=journal_path,
            resume=resume,
        )
    workers = resolve_workers(config.workers, max_useful=config.n_injections)
    with telemetry.span("campaign.draw_plans"):
        plans = draw_plans(config, golden_cycles)

    batching = (
        config.fast_forward
        and config.boundary_batch
        and spec is not None
        and hasattr(spec, "build_fast_forward")
    )
    groups: list[list[int]] | None = None
    if batching and (journal_path is not None or workers > 1):
        # Boundary-grouped dispatch needs the tape parent-side: group
        # the plans by resume boundary so each group lands whole on one
        # worker, and clamp the pool — more workers than groups only
        # buys idle startup cost.
        from repro.faultinject.parallel import fast_forward_for, group_plan_indices

        parent_ff = fast_forward_for(spec, config)
        if parent_ff is not None:
            with telemetry.span("campaign.group_plans"):
                groups = group_plan_indices(parent_ff.boundary_index_for, plans)
            workers = resolve_workers(
                config.workers, max_useful=min(len(plans), max(1, len(groups)))
            )

    observe_events.emit(
        "campaign_start",
        mode="uniform",
        kind=config.kind.value,
        total=len(plans),
        workers=workers,
        seed=config.seed,
        journaled=journal_path is not None,
        resume=resume,
        groups=len(groups) if groups is not None else None,
    )
    # The heartbeat exists whenever anyone is listening — telemetry for
    # the stderr lines, or an observe bus for heartbeat events.  Without
    # telemetry it stays quiet (no surprise stderr from --status alone).
    heartbeat = (
        telemetry.Heartbeat(
            len(plans),
            label=f"campaign {config.kind.value}",
            interval_s=telemetry.resolve_heartbeat_interval(config.heartbeat_interval),
            quiet=config.quiet or not telemetry.enabled(),
        )
        if telemetry.enabled() or observe_events.enabled()
        else None
    )
    progress = heartbeat.update if heartbeat is not None else None
    annotate = heartbeat.annotate if heartbeat is not None else None
    if heartbeat is not None and config.probe:
        heartbeat.annotate("divergence probes on")
    if (
        heartbeat is not None
        and config.fast_forward
        and spec is not None
        and hasattr(spec, "build_fast_forward")
    ):
        heartbeat.annotate("golden-prefix fast-forward on")
    if heartbeat is not None and batching:
        if groups is not None:
            heartbeat.annotate(f"boundary fan-out on ({len(groups)} groups)")
        else:
            heartbeat.annotate("boundary fan-out on")

    if journal_path is not None:
        journal, bounds, journal_groups, done, partial = _prepare_journal(
            config, len(plans), workers, journal_path, resume, groups=groups
        )
        if resume:
            n_chunks = len(bounds) if bounds is not None else len(journal_groups)
            observe_events.emit(
                "journal_resume",
                replayed=len(done),
                units=n_chunks,
                injections=sum(len(res) for res in done.values()),
                discarded_partial=partial,
            )
            if heartbeat is not None:
                note = f"resumed {len(done)}/{n_chunks} journaled chunks"
                if partial:
                    note += " (discarded one torn record)"
                heartbeat.annotate(note)
        with telemetry.span("campaign.execute"), journal:
            results = execute_plans_parallel(
                spec,
                config,
                plans,
                workers,
                progress=progress,
                local_state=(workload, golden_output, golden_cycles),
                bounds=bounds,
                groups=journal_groups,
                completed=done,
                journal=journal,
                annotate=annotate,
            )
    elif spec is not None and workers > 1 and config.n_injections > 1:
        with telemetry.span("campaign.execute"):
            results = execute_plans_parallel(
                spec,
                config,
                plans,
                workers,
                progress=progress,
                local_state=(workload, golden_output, golden_cycles),
                groups=groups,
                annotate=annotate,
            )
    else:
        from repro.faultinject.parallel import fast_forward_for

        monitor = FaultMonitor(
            workload,
            golden_output,
            golden_cycles,
            hang_factor=config.hang_factor,
            liveness=config.liveness,
            site_filter=config.site_filter,
            keep_sdc_outputs=config.keep_sdc_outputs,
            watchdog=config.watchdog,
            probe=config.probe,
            fast_forward=fast_forward_for(spec, config),
            boundary_batch=config.boundary_batch,
        )
        results = []
        with telemetry.span("campaign.execute"):
            for index, plan in enumerate(plans):
                run_rng = np.random.default_rng((config.seed + 1) * 1_000_003 + index)
                result = monitor.run_injected(plan, run_rng)
                results.append(result)
                if observe_events.enabled():
                    observe_events.emit(
                        "injection_done",
                        index=index,
                        done=index + 1,
                        outcomes={result.outcome.value: 1},
                    )
                if progress is not None:
                    progress(index + 1)

    with telemetry.span("campaign.assemble"):
        campaign = assemble_campaign(config, results)
    observe_events.emit(
        "campaign_finish",
        total=campaign.counts.total,
        outcomes={
            "mask": campaign.counts.masked,
            "sdc": campaign.counts.sdc,
            "crash": campaign.counts.crash,
            "hang": campaign.counts.hang,
        },
    )
    return campaign
