"""Statistical error-injection campaigns (paper Section V-A).

A campaign runs ``n`` single-bit injections at uniformly random error
sites (cycle, register, bit) of one register kind, collecting:

* outcome counts and rates (Fig. 10 / Fig. 11),
* running rates after every injection — the convergence trend whose
  knee tells how many injections suffice (Fig. 9a),
* the per-register and per-bit injection histograms that demonstrate
  error-site coverage (Fig. 9b),
* the corrupted outputs of SDC runs, for quality analysis (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faultinject.injector import InjectionPlan, random_plan
from repro.faultinject.monitor import FaultMonitor, InjectionResult, Workload
from repro.faultinject.outcomes import OutcomeCounts, RunningRates
from repro.faultinject.registers import NUM_REGISTERS, REGISTER_BITS, LivenessModel, RegKind


@dataclass
class CampaignConfig:
    """Parameters of one injection campaign."""

    n_injections: int
    kind: RegKind
    seed: int = 0
    hang_factor: float = 6.0
    site_filter: str | None = None
    keep_sdc_outputs: bool = True
    liveness: LivenessModel = field(default_factory=LivenessModel)


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    counts: OutcomeCounts
    running: RunningRates
    results: list[InjectionResult]
    register_histogram: np.ndarray  # (NUM_REGISTERS,) injections per register
    bit_histogram: np.ndarray  # (REGISTER_BITS,) injections per bit

    @property
    def sdc_results(self) -> list[InjectionResult]:
        """The SDC runs (with corrupted outputs when kept)."""
        return [r for r in self.results if r.is_sdc]

    def rates(self) -> dict[str, float]:
        """Outcome rates keyed by name."""
        return self.counts.rates()

    def fired_counts(self) -> OutcomeCounts:
        """Outcome counts restricted to runs whose flip actually fired.

        Site-filtered campaigns (the hot-function study) only count the
        experiments that injected into the functions of interest, as the
        paper's AFI configuration does (Section V-C).
        """
        counts = OutcomeCounts()
        for result in self.results:
            if result.record.fired and result.record.in_study:
                counts.add(result.outcome, result.crash_kind)
        return counts


def run_campaign(
    workload: Workload,
    golden_output: np.ndarray,
    golden_cycles: int,
    config: CampaignConfig,
) -> CampaignResult:
    """Run a full statistical injection campaign.

    Fully deterministic given ``config.seed``: plans are drawn from a
    seeded generator and each run's injector RNG is derived from it.
    """
    monitor = FaultMonitor(
        workload,
        golden_output,
        golden_cycles,
        hang_factor=config.hang_factor,
        liveness=config.liveness,
        site_filter=config.site_filter,
        keep_sdc_outputs=config.keep_sdc_outputs,
    )
    plan_rng = np.random.default_rng(config.seed)
    counts = OutcomeCounts()
    running = RunningRates()
    results: list[InjectionResult] = []
    register_histogram = np.zeros(NUM_REGISTERS, dtype=np.int64)
    bit_histogram = np.zeros(REGISTER_BITS, dtype=np.int64)

    for index in range(config.n_injections):
        plan: InjectionPlan = random_plan(plan_rng, golden_cycles, config.kind)
        run_rng = np.random.default_rng((config.seed + 1) * 1_000_003 + index)
        result = monitor.run_injected(plan, run_rng)
        results.append(result)
        counts.add(result.outcome, result.crash_kind)
        running.record(counts)
        register_histogram[plan.register] += 1
        bit_histogram[plan.bit] += 1

    return CampaignResult(
        config=config,
        counts=counts,
        running=running,
        results=results,
        register_histogram=register_histogram,
        bit_histogram=bit_histogram,
    )
