"""Parallel campaign execution: shard injections across worker processes.

Injection runs are embarrassingly parallel — each run derives its own
RNG from ``(seed, index)`` and shares nothing with its neighbours except
the (read-only) golden reference — so a campaign's wall clock scales
with available cores.  The engine here keeps the serial path's exact
semantics:

* the plan sequence is drawn **once, in order**, from the campaign seed
  in the parent process (workers never touch the plan RNG),
* each run's injector RNG is the same ``(seed, index)`` derivation the
  serial loop uses,
* results are reassembled **in injection order** before statistics are
  computed, so counts, running-rate trends, histograms and SDC outputs
  are bit-identical to ``workers=1``.

Because workloads are closures over in-process state (frame streams,
golden outputs), they cannot be pickled to workers.  Instead a small
picklable :class:`WorkloadSpec` describes how to *rebuild* the workload
— workers reconstruct it once per process and cache it, so golden
outputs are shared via the spec rather than shipped with every task.

The engine is additionally **crash-safe** (see ``docs/resilience.md``):
a chunk whose worker dies (OOM kill, segfault of the interpreter) is
retried with exponential backoff and jitter under a bounded retry
budget; repeated pool failures degrade the worker count and ultimately
fall back to in-process serial execution, so a campaign finishes —
bit-identically — as long as the parent survives.  An optional
:class:`~repro.faultinject.journal.CampaignJournal` makes completed
chunks durable across *parent* crashes too, and a
:class:`~repro.faultinject.watchdog.WatchdogPolicy` hard deadline
bounds how long the parent waits on any one chunk before declaring its
worker lost.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro import telemetry
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.monitor import FaultMonitor, InjectionResult, Workload
from repro.faultinject.outcomes import HangKind
from repro.observe import events as observe_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faultinject.campaign import CampaignConfig
    from repro.faultinject.journal import CampaignJournal

#: Environment variable overriding the worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Task chunks dispatched per worker (load-balancing granularity).
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded chunk-retry behaviour for worker failures.

    A *failure* here is infrastructure-level — a worker process killed
    by the OS or a chunk exceeding its hard wall-clock deadline — never
    a workload exception (those are classified outcomes or library
    bugs, and bugs propagate unchanged on the first occurrence).

    Backoff is exponential with multiplicative jitter so a transient
    cause (memory pressure, a noisy neighbour) gets time to clear and
    retries from concurrent campaigns do not synchronize.  After
    ``degrade_after`` failures each subsequent round also halves the
    worker count — the classic response when the failure *is* the
    parallelism (OOM from too many resident golden copies).  When the
    budget is exhausted the engine falls back to in-process serial
    execution of the remaining chunks.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.25
    backoff_max_s: float = 5.0
    jitter_frac: float = 0.25
    degrade_after: int = 2

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered."""
        base = min(self.backoff_max_s, self.backoff_base_s * (2.0 ** (attempt - 1)))
        return base * (1.0 + self.jitter_frac * rng.random())


@runtime_checkable
class WorkloadSpec(Protocol):
    """A picklable recipe for rebuilding a workload in a worker process.

    Implementations must be hashable (they key the per-process cache)
    and cheap to pickle; ``build`` may be expensive — it runs once per
    worker process and its result is cached.
    """

    def build(self) -> tuple[Workload, np.ndarray, int]:
        """Return ``(workload, golden_output, golden_cycles)``."""
        ...


@dataclass(frozen=True)
class VSWorkloadSpec:
    """Spec for the VS pipeline on one synthetic input at one scale."""

    input_name: str
    config: "object"  # VSConfig; kept loose to avoid a summarize import here
    n_frames: int
    frame_size: tuple[int, int]  # (w, h), as make_input expects

    @staticmethod
    def for_stream(stream, config) -> "VSWorkloadSpec | None":
        """Build a spec for ``stream`` if it is a reconstructible input.

        Returns ``None`` for streams that ``make_input`` cannot
        regenerate (custom or transformed streams), in which case the
        campaign falls back to serial execution.
        """
        if stream.name not in ("input1", "input2") or len(stream) == 0:
            return None
        frame_h, frame_w = stream.frame_shape
        return VSWorkloadSpec(
            input_name=stream.name,
            config=config,
            n_frames=len(stream),
            frame_size=(frame_w, frame_h),
        )

    def build(self) -> tuple[Workload, np.ndarray, int]:
        """Rebuild the stream, golden run and workload closure."""
        from repro.summarize.golden import golden_run
        from repro.summarize.pipeline import run_vs
        from repro.video.synthetic import cached_input

        stream = cached_input(self.input_name, n_frames=self.n_frames, frame_size=self.frame_size)
        golden = golden_run(stream, self.config)
        config = self.config

        def workload(ctx) -> np.ndarray:
            return run_vs(stream, config, ctx).panorama

        return workload, golden.output, golden.total_cycles

    def build_fast_forward(self):
        """The fast-forward handle for this workload (or ``None``).

        Captured against the same cached input and golden run ``build``
        uses, so parent- and worker-side snapshots describe the same
        deterministic execution.
        """
        from repro.summarize.golden import golden_fast_forward
        from repro.video.synthetic import cached_input

        stream = cached_input(self.input_name, n_frames=self.n_frames, frame_size=self.frame_size)
        return golden_fast_forward(stream, self.config)


def _parse_workers(raw: str | int, source: str) -> int:
    """Validate a worker count: a base-10 integer >= 1, or ValueError."""
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer worker count, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{source} must be a positive integer worker count, got {raw!r}"
        )
    return value


def _workers_from_env() -> int | None:
    env = os.environ.get(WORKERS_ENV)
    if env is None or env == "":
        return None
    return _parse_workers(env, WORKERS_ENV)


def resolve_workers(requested: int | None = None, max_useful: int | None = None) -> int:
    """Resolve an explicit or configured worker count.

    An explicit ``requested`` wins (and must be >= 1 — zero and negative
    counts are rejected with a clear error rather than silently clamped);
    otherwise ``REPRO_WORKERS`` from the environment; otherwise 1 (the
    conservative library default — entry points that want machine-wide
    fan-out use :func:`default_workers`).

    ``max_useful`` (when given, the number of planned injections) caps
    the result: spawning eight processes for a three-injection campaign
    only buys three idle workers' startup cost.  Validation still runs
    first, so a malformed request fails loudly rather than being hidden
    by the clamp.
    """
    if requested is not None:
        workers = _parse_workers(requested, "workers")
    else:
        env_workers = _workers_from_env()
        workers = env_workers if env_workers is not None else 1
    if max_useful is not None and max_useful >= 1:
        workers = min(workers, max_useful)
    return workers


def default_workers() -> int:
    """The cpu-count-aware default for CLI/bench fan-out."""
    env_workers = _workers_from_env()
    if env_workers is not None:
        return env_workers
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process cache: spec -> (workload, golden_output, golden_cycles).
#: Shared by all chunks a worker executes, so the golden output is
#: materialized once per process, not once per task.
_WORKER_STATE: dict[WorkloadSpec, tuple[Workload, np.ndarray, int]] = {}


def _workload_state(spec: WorkloadSpec) -> tuple[Workload, np.ndarray, int]:
    state = _WORKER_STATE.get(spec)
    if state is None:
        state = spec.build()
        _WORKER_STATE[spec] = state
    return state


#: Per-process cache: spec -> FastForward handle (or None when the spec
#: offers no tape).  Kept separate from ``_WORKER_STATE`` so toggling
#: ``config.fast_forward`` never has to invalidate workload state.
_WORKER_FF: dict[WorkloadSpec, object] = {}


def clear_fast_forward_cache() -> None:
    """Drop this process's cached fast-forward handles (test isolation).

    Called from :func:`repro.summarize.golden.clear_golden_cache`: the
    handles wrap tapes captured against golden runs, so clearing one
    without the other would leave handles over stale tapes.
    """
    _WORKER_FF.clear()


def fast_forward_for(spec: WorkloadSpec | None, config: "CampaignConfig"):
    """The (cached) fast-forward handle the campaign config calls for.

    Returns ``None`` when fast-forward is off, when there is no spec to
    rebuild a tape from (custom workload closures run in full), or when
    the spec does not support snapshotting.
    """
    if spec is None or not getattr(config, "fast_forward", True):
        return None
    builder = getattr(spec, "build_fast_forward", None)
    if builder is None:
        return None
    if spec not in _WORKER_FF:
        _WORKER_FF[spec] = builder()
    return _WORKER_FF[spec]


def monitor_for(
    workload: Workload,
    golden_output: np.ndarray,
    golden_cycles: int,
    config: "CampaignConfig",
    fast_forward=None,
) -> FaultMonitor:
    """A fault monitor configured exactly as the campaign prescribes."""
    return FaultMonitor(
        workload,
        golden_output,
        golden_cycles,
        hang_factor=config.hang_factor,
        liveness=config.liveness,
        site_filter=config.site_filter,
        keep_sdc_outputs=config.keep_sdc_outputs,
        watchdog=config.watchdog,
        probe=config.probe,
        fast_forward=fast_forward,
        boundary_batch=getattr(config, "boundary_batch", True),
    )


def run_chunk_on_monitor(
    monitor: FaultMonitor,
    config: "CampaignConfig",
    chunk: list[tuple[int, InjectionPlan]],
) -> list[InjectionResult]:
    """Execute one chunk of ``(index, plan)`` pairs on ``monitor``.

    The single source of the per-run RNG derivation — serial, worker
    and degraded-fallback execution all run chunks through here, which
    is what makes their results interchangeable bit for bit.
    """
    results = []
    for index, plan in chunk:
        run_rng = np.random.default_rng((config.seed + 1) * 1_000_003 + index)
        results.append(monitor.run_injected(plan, run_rng))
    return results


def run_injection_chunk(
    spec: WorkloadSpec,
    config: "CampaignConfig",
    chunk: list[tuple[int, InjectionPlan]],
) -> list[InjectionResult]:
    """Execute one chunk of ``(index, plan)`` pairs in this process.

    The module-level entry point workers import; also usable in-process
    (the serial path and the tests go through the same code).
    """
    workload, golden_output, golden_cycles = _workload_state(spec)
    monitor = monitor_for(
        workload,
        golden_output,
        golden_cycles,
        config,
        fast_forward=fast_forward_for(spec, config),
    )
    return run_chunk_on_monitor(monitor, config, chunk)


def run_injection_chunk_metered(
    spec: WorkloadSpec,
    config: "CampaignConfig",
    chunk: list[tuple[int, InjectionPlan]],
) -> tuple[list[InjectionResult], dict]:
    """Like :func:`run_injection_chunk`, plus this chunk's metric snapshot.

    A fresh tracer is swapped in for the chunk's duration, so the
    returned snapshot covers exactly this chunk's activity (stage
    timers, outcome counters, golden-cache counters) regardless of what
    a forked worker inherited from the parent.  The parent merges the
    snapshots in chunk order, which makes the aggregated registry
    deterministic for a fixed chunking.
    """
    fresh, previous = telemetry.swap_in_fresh_tracer()
    try:
        results = run_injection_chunk(spec, config, chunk)
    finally:
        telemetry.restore_tracer(previous)
    return results, fresh.registry.snapshot()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def compute_chunk_bounds(n_plans: int, workers: int) -> list[tuple[int, int]]:
    """Deterministic contiguous ``(start, stop)`` chunk boundaries.

    Resume depends on replaying the original run's exact chunking, so
    the boundaries are a pure function of ``(n_plans, workers)`` and the
    journal header records them verbatim.
    """
    if n_plans <= 0:
        return []
    n_chunks = min(n_plans, max(1, workers) * CHUNKS_PER_WORKER)
    edges = np.linspace(0, n_plans, n_chunks + 1).astype(int)
    return [
        (int(start), int(stop))
        for start, stop in zip(edges[:-1], edges[1:])
        if stop > start
    ]


def chunks_from_bounds(
    plans: list[InjectionPlan],
    bounds: list[tuple[int, int]],
    index_base: int = 0,
) -> list[list[tuple[int, InjectionPlan]]]:
    """Materialize the indexed plan chunks for the given boundaries.

    ``index_base`` offsets the per-run RNG index: stratified campaigns
    execute plans round by round, and each round's runs must continue
    the campaign-global ``(seed, index)`` derivation rather than restart
    it at zero.  Bounds stay in local (0-based) plan positions.
    """
    indexed = list(enumerate(plans, start=index_base))
    return [indexed[start:stop] for start, stop in bounds]


def chunk_indexed_plans(
    plans: list[InjectionPlan], workers: int
) -> list[list[tuple[int, InjectionPlan]]]:
    """Split the plan list into order-preserving contiguous chunks."""
    return chunks_from_bounds(plans, compute_chunk_bounds(len(plans), workers))


def group_plan_indices(
    boundary_index_for: Callable[[int], int | None],
    plans: list[InjectionPlan],
) -> list[list[int]]:
    """Partition plan indices by the frame boundary they resume from.

    The boundary-batched scheduler's unit of dispatch: all plans whose
    target cycle fast-forwards from the same golden frame boundary form
    one group, so a worker materializes that boundary's restore once and
    fans every member out of it.  Plans with no eligible boundary
    (targets before the first skippable frame) share a single fallback
    group of full runs.

    Deterministic and order-preserving: groups are emitted in order of
    their first member's plan index, and members within a group keep
    ascending plan index.  The flattened groups are a permutation of
    ``range(len(plans))`` — the journal records them verbatim so a
    resume replays the exact original dispatch.
    """
    members: dict[int | None, list[int]] = {}
    for index, plan in enumerate(plans):
        boundary = boundary_index_for(plan.target_cycle)
        members.setdefault(boundary, []).append(index)
    return sorted(members.values(), key=lambda group: group[0])


def chunks_from_groups(
    plans: list[InjectionPlan],
    groups: list[list[int]],
    index_base: int = 0,
) -> list[list[tuple[int, InjectionPlan]]]:
    """Materialize indexed plan chunks, one chunk per boundary group.

    Group members are local plan positions; ``index_base`` offsets only
    the RNG index carried alongside each plan (see
    :func:`chunks_from_bounds`).
    """
    return [
        [(index_base + index, plans[index]) for index in group] for group in groups
    ]


def _terminate_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Forcibly kill a pool's workers (a chunk blew its hard deadline).

    ``ProcessPoolExecutor`` has no public kill switch — ``shutdown``
    joins workers, which would block on the stuck one forever — so this
    reaches into the private process table.  Guarded defensively: if
    the attribute moves, the engine degrades to waiting (correct, just
    slower).
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


class _ChunkCollector:
    """Secures completed chunks: results, telemetry snapshot, journal.

    ``progress`` is reported as the cumulative injection count over all
    secured chunks (journal-replayed ones included), and snapshots are
    merged into the parent tracer at :meth:`finish` in ascending chunk
    order so the aggregated metrics stay deterministic no matter what
    order retries completed in.
    """

    def __init__(
        self,
        tracer,
        journal: "CampaignJournal | None",
        progress: Callable[[int], None] | None,
        completed: dict[int, list[InjectionResult]],
        unit: str = "chunk",
        done_base: int = 0,
    ) -> None:
        self.tracer = tracer
        self.journal = journal
        self.progress = progress
        self.unit = unit
        # Injections secured before this collector existed (stratified
        # rounds call the executor once per round): offsets the ``done``
        # totals events report, never the progress callback.
        self.done_base = done_base
        self.results_by_chunk: dict[int, list[InjectionResult]] = dict(completed)
        self.snapshots: dict[int, dict] = {}

    @property
    def injections_done(self) -> int:
        return sum(len(results) for results in self.results_by_chunk.values())

    def secure(self, chunk_index: int, chunk_result) -> None:
        """Record one freshly executed chunk (journal before reporting)."""
        if self.tracer is not None:
            results, snapshot = chunk_result
            self.snapshots[chunk_index] = snapshot
        else:
            results = chunk_result
        self.results_by_chunk[chunk_index] = results
        if self.journal is not None:
            # Durability first: only a journaled chunk counts as done.
            # May raise CampaignInterrupted (the abort-after test hook).
            self.journal.append_chunk(chunk_index, results)
        if observe_events.enabled():
            # Tallies are computed only when someone is listening, so
            # the unobserved hot path stays one None check per chunk.
            outcomes: dict[str, int] = {}
            watchdog_hangs = 0
            for result in results:
                outcomes[result.outcome.value] = outcomes.get(result.outcome.value, 0) + 1
                if result.hang_kind is HangKind.WATCHDOG:
                    watchdog_hangs += 1
            observe_events.emit(
                f"{self.unit}_done",
                index=chunk_index,
                size=len(results),
                done=self.done_base + self.injections_done,
                outcomes=outcomes,
            )
            if watchdog_hangs:
                observe_events.emit(
                    "watchdog_hang", index=chunk_index, count=watchdog_hangs
                )
        if self.progress is not None:
            self.progress(self.injections_done)

    def finish(self, n_chunks: int) -> list[InjectionResult]:
        """Merge telemetry in chunk order and flatten results in order."""
        if self.tracer is not None:
            for chunk_index in sorted(self.snapshots):
                self.tracer.registry.merge_snapshot(self.snapshots[chunk_index])
        assert sorted(self.results_by_chunk) == list(range(n_chunks))
        return [
            result
            for chunk_index in range(n_chunks)
            for result in self.results_by_chunk[chunk_index]
        ]


def execute_plans_parallel(
    spec: WorkloadSpec | None,
    config: "CampaignConfig",
    plans: list[InjectionPlan],
    workers: int,
    progress: Callable[[int], None] | None = None,
    *,
    local_state: tuple[Workload, np.ndarray, int] | None = None,
    bounds: list[tuple[int, int]] | None = None,
    groups: list[list[int]] | None = None,
    completed: dict[int, list[InjectionResult]] | None = None,
    journal: "CampaignJournal | None" = None,
    annotate: Callable[[str], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    index_base: int = 0,
) -> list[InjectionResult]:
    """Run all plans, in injection order, surviving worker failures.

    The happy path dispatches chunks to a process pool and drains them
    in chunk order.  Infrastructure failures — a worker killed by the
    OS (``BrokenProcessPool``) or a chunk exceeding its hard wall-clock
    deadline — never abort the campaign: already-finished chunks are
    swept from the broken pool, the remainder is retried under
    ``config.retry`` (exponential backoff + jitter, bounded attempts,
    worker-count degradation), and once the budget is exhausted the
    remaining chunks run in-process serially.  Workload exceptions that
    the monitor does not classify still propagate unchanged — those are
    library bugs, not infrastructure.

    ``completed`` chunks (from a journal replay) are skipped;
    ``journal`` makes each newly finished chunk durable before it is
    counted.  ``bounds`` pins the chunk boundaries (resume must reuse
    the original run's); by default they derive from ``workers``.
    ``groups`` (boundary-batched mode) replaces index chunking entirely:
    each group of plan indices sharing a fast-forward boundary becomes
    one chunk, so a whole group lands on one worker and shares its
    restore.  Results are still flattened in plan-index order, so the
    output is a plain in-order result list either way.  ``index_base``
    offsets the per-run RNG index without shifting chunk/group
    positions — stratified campaigns use it so each round continues the
    campaign-global ``(seed, index)`` derivation.

    When telemetry is enabled, each chunk returns a worker-side metric
    snapshot; snapshots are merged into the parent tracer **in chunk
    order** at the end, so the aggregated metrics are deterministic
    regardless of retry scheduling.  ``progress``, when given, receives
    the cumulative number of completed injections; ``annotate`` receives
    human-readable notes about retries and degradation (wired to the
    heartbeat by the campaign driver).
    """
    if groups is not None:
        chunks = chunks_from_groups(plans, groups, index_base=index_base)
    else:
        if bounds is None:
            bounds = compute_chunk_bounds(len(plans), workers)
        chunks = chunks_from_bounds(plans, bounds, index_base=index_base)
    if not chunks:
        return []
    retry = config.retry if config.retry is not None else RetryPolicy()
    watchdog = config.watchdog
    tracer = telemetry.get_tracer()
    chunk_fn = run_injection_chunk_metered if tracer is not None else run_injection_chunk
    collector = _ChunkCollector(
        tracer,
        journal,
        progress,
        completed or {},
        unit="group" if groups is not None else "chunk",
        done_base=index_base,
    )
    if collector.results_by_chunk and progress is not None:
        progress(collector.injections_done)

    pending = [i for i in range(len(chunks)) if i not in collector.results_by_chunk]
    # Jitter RNG: timing-only, never touches result determinism.
    jitter_rng = random.Random(config.seed ^ 0x5EED)
    pool_workers = min(workers, len(pending)) if pending else workers
    attempt = 0

    while pending and spec is not None and pool_workers > 1:
        pool = ProcessPoolExecutor(max_workers=pool_workers)
        try:
            futures = {
                index: pool.submit(chunk_fn, spec, config, chunks[index])
                for index in pending
            }
            for index in list(pending):
                deadline = (
                    watchdog.chunk_deadline(len(chunks[index]))
                    if watchdog is not None
                    else None
                )
                collector.secure(index, futures[index].result(timeout=deadline))
                pending.remove(index)
            pool.shutdown(wait=True)
            break
        except (BrokenProcessPool, TimeoutError) as exc:
            # Salvage chunks that finished before the failure, then
            # retry the rest (the failed chunk re-runs from scratch —
            # per-run RNGs derive from (seed, index), so a re-run is
            # bit-identical to a first run).
            if isinstance(exc, TimeoutError):
                _terminate_pool_processes(pool)
            for index in list(pending):
                future = futures.get(index)
                if (
                    future is not None
                    and future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    collector.secure(index, future.result())
                    pending.remove(index)
            pool.shutdown(wait=False, cancel_futures=True)
            attempt += 1
            telemetry.counter_inc("campaign.retries")
            cause = (
                "chunk exceeded its hard deadline"
                if isinstance(exc, TimeoutError)
                else "worker process died"
            )
            observe_events.emit(
                "retry",
                attempt=attempt,
                cause=cause,
                chunks_left=len(pending),
                workers=pool_workers,
            )
            if attempt > retry.max_retries:
                telemetry.counter_inc("campaign.degraded")
                observe_events.emit(
                    "degrade", to_workers=1, serial_fallback=True, attempt=attempt
                )
                if annotate is not None:
                    annotate(
                        f"{cause}; retry budget exhausted after {attempt - 1} "
                        f"retries — degrading to in-process serial execution"
                    )
                break
            if attempt >= retry.degrade_after and pool_workers > 1:
                pool_workers = max(1, pool_workers // 2)
                telemetry.counter_inc("campaign.degraded")
                observe_events.emit(
                    "degrade",
                    to_workers=pool_workers,
                    serial_fallback=False,
                    attempt=attempt,
                )
            if annotate is not None:
                annotate(
                    f"{cause}; retry {attempt}/{retry.max_retries} "
                    f"({len(pending)} chunks left, {pool_workers} workers)"
                )
            sleep(retry.delay_s(attempt, jitter_rng))
        except BaseException:
            # Workload bugs, CampaignInterrupted, KeyboardInterrupt:
            # release the pool without waiting on stragglers.
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    if pending:
        # Serial in-process fallback (also the spec-less/journal-only
        # path): same chunk runner, same RNG derivation, same results.
        if local_state is not None:
            workload, golden_output, golden_cycles = local_state
        elif spec is not None:
            workload, golden_output, golden_cycles = _workload_state(spec)
        else:
            raise ValueError(
                "execute_plans_parallel needs a spec or local_state to run chunks"
            )
        monitor = monitor_for(
            workload,
            golden_output,
            golden_cycles,
            config,
            fast_forward=fast_forward_for(spec, config),
        )
        for index in list(pending):
            if tracer is not None:
                fresh, previous = telemetry.swap_in_fresh_tracer()
                try:
                    results = run_chunk_on_monitor(monitor, config, chunks[index])
                finally:
                    telemetry.restore_tracer(previous)
                collector.secure(index, (results, fresh.registry.snapshot()))
            else:
                collector.secure(index, run_chunk_on_monitor(monitor, config, chunks[index]))
            pending.remove(index)

    flat = collector.finish(len(chunks))
    if groups is None:
        return flat
    # Group chunks are ordered by first member, not contiguous by plan
    # index — put the flattened results back into injection order, so
    # downstream statistics see exactly the serial path's sequence.
    reordered: list[InjectionResult | None] = [None] * len(flat)
    for position, plan_index in enumerate(index for group in groups for index in group):
        reordered[plan_index] = flat[position]
    return reordered
