"""Parallel campaign execution: shard injections across worker processes.

Injection runs are embarrassingly parallel — each run derives its own
RNG from ``(seed, index)`` and shares nothing with its neighbours except
the (read-only) golden reference — so a campaign's wall clock scales
with available cores.  The engine here keeps the serial path's exact
semantics:

* the plan sequence is drawn **once, in order**, from the campaign seed
  in the parent process (workers never touch the plan RNG),
* each run's injector RNG is the same ``(seed, index)`` derivation the
  serial loop uses,
* results are reassembled **in injection order** before statistics are
  computed, so counts, running-rate trends, histograms and SDC outputs
  are bit-identical to ``workers=1``.

Because workloads are closures over in-process state (frame streams,
golden outputs), they cannot be pickled to workers.  Instead a small
picklable :class:`WorkloadSpec` describes how to *rebuild* the workload
— workers reconstruct it once per process and cache it, so golden
outputs are shared via the spec rather than shipped with every task.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro import telemetry
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.monitor import FaultMonitor, InjectionResult, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faultinject.campaign import CampaignConfig

#: Environment variable overriding the worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Task chunks dispatched per worker (load-balancing granularity).
CHUNKS_PER_WORKER = 4


@runtime_checkable
class WorkloadSpec(Protocol):
    """A picklable recipe for rebuilding a workload in a worker process.

    Implementations must be hashable (they key the per-process cache)
    and cheap to pickle; ``build`` may be expensive — it runs once per
    worker process and its result is cached.
    """

    def build(self) -> tuple[Workload, np.ndarray, int]:
        """Return ``(workload, golden_output, golden_cycles)``."""
        ...


@dataclass(frozen=True)
class VSWorkloadSpec:
    """Spec for the VS pipeline on one synthetic input at one scale."""

    input_name: str
    config: "object"  # VSConfig; kept loose to avoid a summarize import here
    n_frames: int
    frame_size: tuple[int, int]  # (w, h), as make_input expects

    @staticmethod
    def for_stream(stream, config) -> "VSWorkloadSpec | None":
        """Build a spec for ``stream`` if it is a reconstructible input.

        Returns ``None`` for streams that ``make_input`` cannot
        regenerate (custom or transformed streams), in which case the
        campaign falls back to serial execution.
        """
        if stream.name not in ("input1", "input2") or len(stream) == 0:
            return None
        frame_h, frame_w = stream.frame_shape
        return VSWorkloadSpec(
            input_name=stream.name,
            config=config,
            n_frames=len(stream),
            frame_size=(frame_w, frame_h),
        )

    def build(self) -> tuple[Workload, np.ndarray, int]:
        """Rebuild the stream, golden run and workload closure."""
        from repro.summarize.golden import golden_run
        from repro.summarize.pipeline import run_vs
        from repro.video.synthetic import cached_input

        stream = cached_input(self.input_name, n_frames=self.n_frames, frame_size=self.frame_size)
        golden = golden_run(stream, self.config)
        config = self.config

        def workload(ctx) -> np.ndarray:
            return run_vs(stream, config, ctx).panorama

        return workload, golden.output, golden.total_cycles


def _parse_workers(raw: str | int, source: str) -> int:
    """Validate a worker count: a base-10 integer >= 1, or ValueError."""
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer worker count, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{source} must be a positive integer worker count, got {raw!r}"
        )
    return value


def _workers_from_env() -> int | None:
    env = os.environ.get(WORKERS_ENV)
    if env is None or env == "":
        return None
    return _parse_workers(env, WORKERS_ENV)


def resolve_workers(requested: int | None = None) -> int:
    """Resolve an explicit or configured worker count.

    An explicit ``requested`` wins (and must be >= 1 — zero and negative
    counts are rejected with a clear error rather than silently clamped);
    otherwise ``REPRO_WORKERS`` from the environment; otherwise 1 (the
    conservative library default — entry points that want machine-wide
    fan-out use :func:`default_workers`).
    """
    if requested is not None:
        return _parse_workers(requested, "workers")
    env_workers = _workers_from_env()
    if env_workers is not None:
        return env_workers
    return 1


def default_workers() -> int:
    """The cpu-count-aware default for CLI/bench fan-out."""
    env_workers = _workers_from_env()
    if env_workers is not None:
        return env_workers
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process cache: spec -> (workload, golden_output, golden_cycles).
#: Shared by all chunks a worker executes, so the golden output is
#: materialized once per process, not once per task.
_WORKER_STATE: dict[WorkloadSpec, tuple[Workload, np.ndarray, int]] = {}


def _workload_state(spec: WorkloadSpec) -> tuple[Workload, np.ndarray, int]:
    state = _WORKER_STATE.get(spec)
    if state is None:
        state = spec.build()
        _WORKER_STATE[spec] = state
    return state


def run_injection_chunk(
    spec: WorkloadSpec,
    config: "CampaignConfig",
    chunk: list[tuple[int, InjectionPlan]],
) -> list[InjectionResult]:
    """Execute one chunk of ``(index, plan)`` pairs in this process.

    The module-level entry point workers import; also usable in-process
    (the serial path and the tests go through the same code).
    """
    workload, golden_output, golden_cycles = _workload_state(spec)
    monitor = FaultMonitor(
        workload,
        golden_output,
        golden_cycles,
        hang_factor=config.hang_factor,
        liveness=config.liveness,
        site_filter=config.site_filter,
        keep_sdc_outputs=config.keep_sdc_outputs,
    )
    results = []
    for index, plan in chunk:
        run_rng = np.random.default_rng((config.seed + 1) * 1_000_003 + index)
        results.append(monitor.run_injected(plan, run_rng))
    return results


def run_injection_chunk_metered(
    spec: WorkloadSpec,
    config: "CampaignConfig",
    chunk: list[tuple[int, InjectionPlan]],
) -> tuple[list[InjectionResult], dict]:
    """Like :func:`run_injection_chunk`, plus this chunk's metric snapshot.

    A fresh tracer is swapped in for the chunk's duration, so the
    returned snapshot covers exactly this chunk's activity (stage
    timers, outcome counters, golden-cache counters) regardless of what
    a forked worker inherited from the parent.  The parent merges the
    snapshots in chunk order, which makes the aggregated registry
    deterministic for a fixed chunking.
    """
    fresh, previous = telemetry.swap_in_fresh_tracer()
    try:
        results = run_injection_chunk(spec, config, chunk)
    finally:
        telemetry.restore_tracer(previous)
    return results, fresh.registry.snapshot()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def chunk_indexed_plans(
    plans: list[InjectionPlan], workers: int
) -> list[list[tuple[int, InjectionPlan]]]:
    """Split the plan list into order-preserving contiguous chunks."""
    indexed = list(enumerate(plans))
    if not indexed:
        return []
    n_chunks = min(len(indexed), max(1, workers) * CHUNKS_PER_WORKER)
    bounds = np.linspace(0, len(indexed), n_chunks + 1).astype(int)
    return [
        indexed[start:stop]
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]


def execute_plans_parallel(
    spec: WorkloadSpec,
    config: "CampaignConfig",
    plans: list[InjectionPlan],
    workers: int,
    progress: Callable[[int], None] | None = None,
) -> list[InjectionResult]:
    """Run all plans across a process pool, in injection order.

    Worker crashes (a dead process, not a classified workload outcome)
    surface as a ``RuntimeError`` rather than a hang; workload
    exceptions that the monitor does not classify propagate unchanged.

    When telemetry is enabled, each chunk additionally returns a
    worker-side metric snapshot; snapshots are merged into the parent
    tracer **in chunk order**, so the aggregated metrics are
    deterministic, matching the ordered reassembly of the results
    themselves.  ``progress``, when given, is called with the cumulative
    number of completed injections as ordered chunks drain.
    """
    chunks = chunk_indexed_plans(plans, workers)
    if not chunks:
        return []
    tracer = telemetry.get_tracer()
    chunk_fn = run_injection_chunk_metered if tracer is not None else run_injection_chunk
    results: list[InjectionResult] = []
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk_result in pool.map(
                chunk_fn,
                [spec] * len(chunks),
                [config] * len(chunks),
                chunks,
            ):
                if tracer is not None:
                    chunk_results_part, snapshot = chunk_result
                    tracer.registry.merge_snapshot(snapshot)
                else:
                    chunk_results_part = chunk_result
                results.extend(chunk_results_part)
                if progress is not None:
                    progress(len(results))
    except BrokenProcessPool as exc:
        raise RuntimeError(
            "campaign worker process died unexpectedly; re-run with workers=1 "
            "to reproduce the failure in-process"
        ) from exc
    return results
