"""Architectural register-file model and the kernel binding API.

The paper injects single bit flips into the POWER architectural register
file: 32 general-purpose registers (GPRs) and 32 floating-point registers
(FPRs), 64 bits each, at a random execution cycle (Section V-B).

This module models that register file for a Python/numpy program.  At
*checkpoints*, kernels **bind** the values currently living in registers:

* scalars held across loop iterations (:class:`repro.runtime.context.Cell`),
* pointers into arrays (bound with the owning array and byte offset),
* streaming data elements (bound as whole arrays; a flip corrupts one
  element, modelling the register the elements stream through),
* floating-point working values (FPR bindings).

Each binding carries a *role* (DATA / ADDRESS / CONTROL) and a *liveness
lease* (ttl in cycles).  Bindings are written into one of 32 slots per
register kind (slot chosen by a stable hash of the binding's site and
name).  When the injector fires at its planned (cycle, register, bit)
site, the slot's current binding — if still live — is corrupted through
its ``flip`` method; empty, stale, or truncated targets leave the program
untouched (the paper's dead-register masking).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

import numpy as np

from repro.faultinject.addrspace import AddressSpace
from repro.runtime.context import Cell

_MASK64 = (1 << 64) - 1

#: Number of architectural registers per kind, matching the paper's POWER
#: register file (Fig. 9b shows 32 GPRs).
NUM_REGISTERS = 32

#: Register width in bits (the paper flips one of 64 bits).
REGISTER_BITS = 64


class RegKind(Enum):
    """Register file kind."""

    GPR = "gpr"
    FPR = "fpr"


class Role(Enum):
    """What the register is used for; drives default liveness and
    failure semantics."""

    DATA = "data"
    ADDRESS = "address"
    CONTROL = "control"


class FlipEffect(Enum):
    """What actually happened when the planned flip fired."""

    APPLIED = "applied"  # live value corrupted
    DEAD_EMPTY = "dead_empty"  # register slot never written
    DEAD_STALE = "dead_stale"  # slot value's liveness lease had expired
    TRUNCATED = "truncated"  # flip above the stored width; store masked it


@dataclass(frozen=True)
class LivenessModel:
    """Default liveness leases (cycles) per register kind and role.

    Leases are scaled to the pipeline's per-frame cost (~1M model
    cycles): GPR pointers and loop state live across whole kernel
    invocations and stay hot from frame to frame, GPR data values live
    for a large fraction of a kernel, while FPR values are short-lived
    pixel math (loaded, transformed, stored back) — the paper's
    explanation of the very high FPR masking rate (Section VI-A).
    """

    gpr_data_ttl: int = 400_000
    gpr_address_ttl: int = 1_500_000
    gpr_control_ttl: int = 1_500_000
    fpr_data_ttl: int = 40_000

    def ttl_for(self, kind: RegKind, role: Role) -> int:
        """Default lease for a binding of the given kind and role."""
        if kind is RegKind.FPR:
            return self.fpr_data_ttl
        if role is Role.ADDRESS:
            return self.gpr_address_ttl
        if role is Role.CONTROL:
            return self.gpr_control_ttl
        return self.gpr_data_ttl


def _to_raw64(value: int) -> int:
    """Two's-complement encode an int into a 64-bit raw register image."""
    return int(value) & _MASK64


def _from_raw64(raw: int) -> int:
    """Decode a 64-bit raw register image into a signed Python int."""
    raw &= _MASK64
    if raw >= 1 << 63:
        raw -= 1 << 64
    return raw


def flip_bit64(value: int, bit: int) -> int:
    """Flip ``bit`` of a signed 64-bit integer value."""
    if not 0 <= bit < REGISTER_BITS:
        raise ValueError(f"bit must be in [0, 64), got {bit}")
    return _from_raw64(_to_raw64(value) ^ (1 << bit))


def flip_float64_bit(value: float, bit: int) -> float:
    """Flip ``bit`` of the IEEE-754 binary64 representation of ``value``."""
    if not 0 <= bit < REGISTER_BITS:
        raise ValueError(f"bit must be in [0, 64), got {bit}")
    raw = np.float64(value).view(np.uint64)
    flipped = np.uint64(int(raw) ^ (1 << bit))
    return float(flipped.view(np.float64))


class Binding:
    """Base class for one architectural-register binding."""

    def __init__(
        self,
        name: str,
        kind: RegKind,
        role: Role,
        ttl: Optional[int],
    ) -> None:
        self.name = name
        self.kind = kind
        self.role = role
        self.ttl = ttl

    def effective_ttl(self, model: LivenessModel) -> int:
        """The binding's lease, falling back to the liveness model."""
        if self.ttl is not None:
            return self.ttl
        return model.ttl_for(self.kind, self.role)

    def flip(self, bit: int, rng: np.random.Generator, space: AddressSpace) -> FlipEffect:
        """Corrupt the bound program value.  May raise a machine error."""
        raise NotImplementedError


class IntCellBinding(Binding):
    """A scalar integer held in a :class:`Cell` the kernel keeps reading."""

    def __init__(
        self,
        name: str,
        cell: Cell,
        role: Role = Role.DATA,
        ttl: Optional[int] = None,
    ) -> None:
        super().__init__(name, RegKind.GPR, role, ttl)
        self.cell = cell

    def flip(self, bit: int, rng: np.random.Generator, space: AddressSpace) -> FlipEffect:
        self.cell.value = flip_bit64(int(self.cell.value), bit)
        return FlipEffect.APPLIED


class IntValueBinding(Binding):
    """A scalar integer delivered back to the kernel via a callback."""

    def __init__(
        self,
        name: str,
        value: int,
        apply: Callable[[int], None],
        role: Role = Role.DATA,
        ttl: Optional[int] = None,
    ) -> None:
        super().__init__(name, RegKind.GPR, role, ttl)
        self.value = int(value)
        self.apply = apply

    def flip(self, bit: int, rng: np.random.Generator, space: AddressSpace) -> FlipEffect:
        self.apply(flip_bit64(self.value, bit))
        return FlipEffect.APPLIED


class FloatValueBinding(Binding):
    """A scalar floating-point value delivered back via a callback."""

    def __init__(
        self,
        name: str,
        value: float,
        apply: Callable[[float], None],
        ttl: Optional[int] = None,
    ) -> None:
        super().__init__(name, RegKind.FPR, Role.DATA, ttl)
        self.value = float(value)
        self.apply = apply

    def flip(self, bit: int, rng: np.random.Generator, space: AddressSpace) -> FlipEffect:
        self.apply(flip_float64_bit(self.value, bit))
        return FlipEffect.APPLIED


class ArrayBinding(Binding):
    """The register that elements of ``array`` stream through.

    A flip corrupts one randomly chosen element in place.  Flips above
    the element's stored width are masked by the truncating store
    (:attr:`FlipEffect.TRUNCATED`) — e.g. a flip in bit 23 of a register
    holding an 8-bit pixel disappears when the byte is stored back.
    """

    def __init__(
        self,
        name: str,
        array: np.ndarray,
        kind: RegKind,
        role: Role = Role.DATA,
        ttl: Optional[int] = None,
    ) -> None:
        super().__init__(name, kind, role, ttl)
        if array.size == 0:
            raise ValueError(f"cannot bind empty array {name!r}")
        if not array.flags.writeable:
            raise ValueError(f"cannot bind read-only array {name!r}")
        self.array = array

    def flip(self, bit: int, rng: np.random.Generator, space: AddressSpace) -> FlipEffect:
        flat = self.array.reshape(-1)
        index = int(rng.integers(0, flat.size))
        width = self.array.dtype.itemsize * 8
        if bit >= width:
            return FlipEffect.TRUNCATED
        if self.array.dtype == np.float64:
            raw = flat[index : index + 1].view(np.uint64)
            raw ^= np.uint64(1 << bit)
        elif self.array.dtype == np.float32:
            raw = flat[index : index + 1].view(np.uint32)
            raw ^= np.uint32(1 << bit)
        elif np.issubdtype(self.array.dtype, np.integer):
            unsigned = np.dtype(f"u{self.array.dtype.itemsize}")
            raw = flat[index : index + 1].view(unsigned)
            raw ^= unsigned.type(1 << bit)
        else:
            raise TypeError(f"unsupported dtype for binding {self.name!r}: {self.array.dtype}")
        return FlipEffect.APPLIED


class AddressBinding(Binding):
    """A pointer register: base of ``array`` plus ``byte_offset``.

    A flip rewrites the pointer; the new address is resolved against the
    simulated :class:`AddressSpace`:

    * **unmapped** -> :class:`~repro.runtime.errors.SegmentationFault`
      (the overwhelmingly common case in a sparse heap),
    * **mapped, read pointer** -> the bytes at the aliased location are
      copied over the beginning of the bound array (the program reads
      the wrong memory),
    * **mapped, write pointer** (``writes=True``) -> a pattern derived
      from the corrupted address is smashed over the aliased location
      (the program writes to the wrong memory).

    A custom ``on_alias(view, offset)`` callback overrides the default
    mapped-address semantics.
    """

    #: Bytes transferred by the default wrong-read / wrong-write model.
    DEFAULT_WINDOW = 64

    def __init__(
        self,
        name: str,
        array: np.ndarray,
        byte_offset: int = 0,
        writes: bool = False,
        window: Optional[int] = None,
        on_alias: Optional[Callable[[np.ndarray, int], None]] = None,
        ttl: Optional[int] = None,
    ) -> None:
        super().__init__(name, RegKind.GPR, Role.ADDRESS, ttl)
        self.array = array
        self.byte_offset = int(byte_offset)
        self.writes = writes
        self.window = window if window is not None else min(self.DEFAULT_WINDOW, array.nbytes)
        self.on_alias = on_alias

    def flip(self, bit: int, rng: np.random.Generator, space: AddressSpace) -> FlipEffect:
        base = space.ensure(self.array)
        raw = _to_raw64(base + self.byte_offset)
        corrupted = raw ^ (1 << bit)
        view, offset = space.byte_window(corrupted, self.window)  # may segfault
        if self.on_alias is not None:
            self.on_alias(view, offset)
            return FlipEffect.APPLIED
        if self.writes:
            pattern = np.uint8(corrupted & 0xFF)
            view[offset : offset + self.window] = pattern
        else:
            own = self.array.reshape(-1).view(np.uint8)
            span = min(self.window, own.size)
            own[:span] = view[offset : offset + span]
        return FlipEffect.APPLIED


def slot_for(site: str, name: str) -> int:
    """Stable hash-based slot for a binding (0..31).

    Used where no register-file state exists (diagnostics).  The live
    campaign path uses :class:`RegisterFileState`'s round-robin
    allocator instead, which covers the whole register file the way a
    compiler's register allocator does.
    """
    return zlib.crc32(f"{site}:{name}".encode()) % NUM_REGISTERS


class RegisterWindow:
    """The set of architectural registers live at one checkpoint."""

    def __init__(self, site: str) -> None:
        self.site = site
        self.bindings: list[Binding] = []

    # -- GPR bindings ---------------------------------------------------
    def gpr_cell(self, name: str, cell: Cell, role: Role = Role.DATA, ttl: int | None = None) -> None:
        """Bind an integer :class:`Cell` into a GPR slot."""
        self.bindings.append(IntCellBinding(name, cell, role=role, ttl=ttl))

    def gpr_value(
        self,
        name: str,
        value: int,
        apply: Callable[[int], None],
        role: Role = Role.DATA,
        ttl: int | None = None,
    ) -> None:
        """Bind an integer scalar with an apply callback into a GPR slot."""
        self.bindings.append(IntValueBinding(name, value, apply, role=role, ttl=ttl))

    def gpr_array(self, name: str, array: np.ndarray, ttl: int | None = None) -> None:
        """Bind an integer array's streaming register into a GPR slot."""
        if not np.issubdtype(array.dtype, np.integer):
            raise TypeError(f"gpr_array needs an integer array, got {array.dtype}")
        self.bindings.append(ArrayBinding(name, array, RegKind.GPR, ttl=ttl))

    def gpr_address(
        self,
        name: str,
        array: np.ndarray,
        byte_offset: int = 0,
        writes: bool = False,
        window: int | None = None,
        on_alias: Callable[[np.ndarray, int], None] | None = None,
        ttl: int | None = None,
    ) -> None:
        """Bind a pointer register into a GPR slot."""
        self.bindings.append(
            AddressBinding(
                name,
                array,
                byte_offset=byte_offset,
                writes=writes,
                window=window,
                on_alias=on_alias,
                ttl=ttl,
            )
        )

    # -- FPR bindings ---------------------------------------------------
    def fpr_array(self, name: str, array: np.ndarray, ttl: int | None = None) -> None:
        """Bind a floating-point array's streaming register into an FPR slot."""
        if array.dtype not in (np.float32, np.float64):
            raise TypeError(f"fpr_array needs a float array, got {array.dtype}")
        self.bindings.append(ArrayBinding(name, array, RegKind.FPR, ttl=ttl))

    def fpr_value(
        self,
        name: str,
        value: float,
        apply: Callable[[float], None],
        ttl: int | None = None,
    ) -> None:
        """Bind a floating-point scalar with an apply callback into an FPR slot."""
        self.bindings.append(FloatValueBinding(name, value, apply, ttl=ttl))


@dataclass
class SlotEntry:
    """The most recent binding written into one register slot."""

    binding: Binding
    site: str
    written_cycle: int


@dataclass
class SlotCensus:
    """Occupancy statistics of the register file over a run."""

    samples: int = 0
    live_by_kind_role: dict[tuple[RegKind, Role], int] = field(default_factory=dict)
    live_slots_total: int = 0

    def live_fraction(self, kind: RegKind) -> float:
        """Mean fraction of ``kind`` slots holding a live binding."""
        if self.samples == 0:
            return 0.0
        live = sum(
            count
            for (slot_kind, _role), count in self.live_by_kind_role.items()
            if slot_kind is kind
        )
        return live / (self.samples * NUM_REGISTERS)

    def role_fraction(self, kind: RegKind, role: Role) -> float:
        """Mean fraction of ``kind`` slots live with the given role."""
        if self.samples == 0:
            return 0.0
        live = self.live_by_kind_role.get((kind, role), 0)
        return live / (self.samples * NUM_REGISTERS)


class RegisterFileState:
    """Tracks what each architectural register currently holds.

    Slots are assigned round-robin per unique ``(site, name)`` in
    first-bind order — the same name always lands in the same register
    within a run (runs are deterministic up to the injection), and a
    workload with enough distinct values exercises the whole file, as a
    compiler's register allocator does.
    """

    def __init__(self) -> None:
        self._slots: dict[RegKind, list[SlotEntry | None]] = {
            RegKind.GPR: [None] * NUM_REGISTERS,
            RegKind.FPR: [None] * NUM_REGISTERS,
        }
        self._assigned: dict[tuple[RegKind, str, str], int] = {}
        self._next_slot: dict[RegKind, int] = {RegKind.GPR: 0, RegKind.FPR: 0}

    def _slot_of(self, kind: RegKind, site: str, name: str) -> int:
        key = (kind, site, name)
        slot = self._assigned.get(key)
        if slot is None:
            slot = self._next_slot[kind]
            self._next_slot[kind] = (slot + 1) % NUM_REGISTERS
            self._assigned[key] = slot
        return slot

    def write(self, binding: Binding, site: str, cycle: int) -> int:
        """Record ``binding`` as the new contents of its slot."""
        slot = self._slot_of(binding.kind, site, binding.name)
        self._slots[binding.kind][slot] = SlotEntry(binding, site, cycle)
        return slot

    def entry(self, kind: RegKind, slot: int) -> SlotEntry | None:
        """Current contents of register ``slot`` of ``kind``."""
        return self._slots[kind][slot]

    def export_state(
        self,
    ) -> tuple[
        dict[tuple[RegKind, str, str], int],
        dict[RegKind, int],
        dict[RegKind, list[SlotEntry | None]],
    ]:
        """Copies of ``(assigned, next_slot, slots)`` for snapshot tooling.

        The slot lists are shallow copies: entries still reference the
        live :class:`Binding` objects, which is what the fast-forward
        recorder needs (it converts them to value descriptors itself).
        """
        return (
            dict(self._assigned),
            dict(self._next_slot),
            {kind: list(slots) for kind, slots in self._slots.items()},
        )

    def import_state(
        self,
        assigned: dict[tuple[RegKind, str, str], int],
        next_slot: dict[RegKind, int],
        slots: dict[RegKind, list[SlotEntry | None]],
    ) -> None:
        """Install a previously exported register-file state.

        Restoring the slot-assignment map and round-robin cursor along
        with the slot contents is what keeps a fast-forwarded run's
        register allocation bit-identical to a full run: every suffix
        binding must land in exactly the slot it would have landed in
        had the prefix executed for real.
        """
        self._assigned = dict(assigned)
        self._next_slot = dict(next_slot)
        self._slots = {kind: list(entries) for kind, entries in slots.items()}

    def sample_census(self, census: SlotCensus, cycle: int, model: LivenessModel) -> None:
        """Accumulate one occupancy sample into ``census``."""
        census.samples += 1
        for kind, slots in self._slots.items():
            for entry in slots:
                if entry is None:
                    continue
                age = cycle - entry.written_cycle
                if age > entry.binding.effective_ttl(model):
                    continue
                key = (kind, entry.binding.role)
                census.live_by_kind_role[key] = census.live_by_kind_role.get(key, 0) + 1
                census.live_slots_total += 1
