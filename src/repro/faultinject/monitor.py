"""The Fault Monitor: run one injected execution and classify its outcome.

The analog of AFI's second module (paper Section V-B): continue the
program after the injection, capture a potential hang or crash, and —
when the program finishes normally — invoke the result-checking
procedure that compares the output with the golden output to decide
between Masked and SDC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import telemetry
from repro.faultinject.injector import FaultInjector, InjectionPlan, InjectionRecord
from repro.faultinject.outcomes import (
    CrashKind,
    HangKind,
    Outcome,
    classify_exception,
    hang_kind_for,
)
from repro.faultinject.registers import LivenessModel
from repro.faultinject.watchdog import WatchdogPolicy, call_with_deadline
from repro.forensics import probes
from repro.forensics.divergence import DivergenceRecord, diff_against_golden
from repro.imaging.image import images_equal
from repro.runtime.context import ExecutionContext

#: Default watchdog budget as a multiple of the golden run's cycles.
DEFAULT_HANG_FACTOR = 6.0

#: A workload maps a context to its output image.
Workload = Callable[[ExecutionContext], np.ndarray]


@dataclass
class InjectionResult:
    """Everything known about one injected run."""

    plan: InjectionPlan
    record: InjectionRecord
    outcome: Outcome
    crash_kind: CrashKind | None = None
    hang_kind: HangKind | None = None  # set for HANG outcomes only
    output: np.ndarray | None = None  # the corrupted output for SDC runs
    cycles: int = 0
    #: Stage-level divergence attribution; set only for probed runs
    #: (``FaultMonitor(probe=True)`` / ``CampaignConfig(probe=True)``).
    divergence: DivergenceRecord | None = None

    @property
    def is_sdc(self) -> bool:
        """True for Silent Data Corruption outcomes."""
        return self.outcome is Outcome.SDC


class FaultMonitor:
    """Runs workloads under injection and classifies the outcomes."""

    def __init__(
        self,
        workload: Workload,
        golden_output: np.ndarray,
        golden_cycles: int,
        hang_factor: float = DEFAULT_HANG_FACTOR,
        liveness: Optional[LivenessModel] = None,
        site_filter: Optional[str] = None,
        keep_sdc_outputs: bool = True,
        watchdog: Optional[WatchdogPolicy] = None,
        probe: bool = False,
        fast_forward=None,
        boundary_batch: bool = True,
    ) -> None:
        if golden_cycles <= 0:
            raise ValueError(f"golden_cycles must be positive, got {golden_cycles}")
        self.workload = workload
        self.golden_output = golden_output
        self.golden_cycles = golden_cycles
        self.watchdog_cycles = int(golden_cycles * hang_factor)
        self.liveness = liveness
        self.site_filter = site_filter
        self.keep_sdc_outputs = keep_sdc_outputs
        self.watchdog = watchdog
        self.probe = probe
        #: Optional :class:`repro.faultinject.fastforward.FastForward`
        #: handle.  When set, runs whose plan cycle lies past a golden
        #: frame boundary restore that boundary's snapshot and execute
        #: only the suffix — bit-identical to the full execution.
        self.fast_forward = fast_forward
        #: When True (the default) and a fast-forward handle is present,
        #: runs resume through the boundary's shared
        #: :class:`~repro.faultinject.fastforward.BoundaryFanOut` —
        #: restore materialized once per worker, per-run state cloned
        #: copy-on-write, golden tails synthesized.  ``False`` is the
        #: ``--no-boundary-batch`` reference path: one full restore per
        #: run, no convergence watch.
        self.boundary_batch = boundary_batch

    def run_injected(self, plan: InjectionPlan, rng: np.random.Generator) -> InjectionResult:
        """Execute one injected run and classify the result."""
        result = self._run_injected(plan, rng)
        if telemetry.enabled():
            # Telemetry only observes — counters never feed back into
            # classification, so traced and untraced campaigns agree.
            telemetry.counter_inc("campaign.runs")
            telemetry.counter_inc(f"campaign.outcome.{result.outcome.value}")
            if result.hang_kind is HangKind.WATCHDOG:
                telemetry.counter_inc("campaign.watchdog_hangs")
            if result.record.fired:
                telemetry.counter_inc("campaign.fired")
            if result.divergence is not None and result.divergence.first_divergence:
                telemetry.counter_inc(
                    f"campaign.divergence.{result.divergence.first_divergence}"
                )
                if result.divergence.absorbed:
                    telemetry.counter_inc("campaign.divergence.absorbed")
        return result

    def golden_signature(self) -> dict[str, tuple[int, ...]]:
        """Per-stage golden checksum sequences for this workload.

        Captured once per (process, workload) by re-running the workload
        on a clean context under a probe — the golden run is
        deterministic, so the re-run reproduces it exactly (checked
        against ``golden_output`` as cheap insurance).  Cached through
        :func:`repro.forensics.probes.golden_signature_for`.
        """
        return probes.golden_signature_for(self.workload, self._capture_golden_signature)

    def _capture_golden_signature(self) -> dict[str, tuple[int, ...]]:
        probe = probes.StageProbe()
        with probes.capturing(probe):
            output = self.workload(ExecutionContext())
        if not images_equal(output, self.golden_output):
            raise ValueError(
                "probed golden capture does not reproduce the golden output; "
                "the workload is not deterministic or the golden reference "
                "belongs to a different workload"
            )
        return probe.signature()

    def _run_injected(self, plan: InjectionPlan, rng: np.random.Generator) -> InjectionResult:
        probe: probes.StageProbe | None = None
        golden_signature: dict[str, tuple[int, ...]] | None = None
        if self.probe:
            # Capture (or fetch) the golden signature before arming the
            # injector, so the reference run is never probed while a
            # fault is pending.
            golden_signature = self.golden_signature()
            probe = probes.StageProbe()
        injector = FaultInjector(
            plan,
            rng=rng,
            liveness=self.liveness,
            site_filter=self.site_filter,
        )
        ctx = ExecutionContext(injector=injector, watchdog_cycles=self.watchdog_cycles)
        soft_deadline = self.watchdog.soft_deadline_s if self.watchdog is not None else None
        divergence = (
            lambda: diff_against_golden(golden_signature, probe) if probe is not None else None
        )
        snapshot_index = (
            self.fast_forward.boundary_index_for(plan.target_cycle)
            if self.fast_forward is not None
            else None
        )
        if telemetry.enabled() and self.fast_forward is not None:
            if snapshot_index is not None:
                telemetry.counter_inc("campaign.fastforward.hits")
                telemetry.counter_inc(
                    "campaign.fastforward.skipped_cycles",
                    self.fast_forward.tape.boundaries[snapshot_index].cycles,
                )
            else:
                telemetry.counter_inc("campaign.fastforward.full_runs")
        if snapshot_index is not None:
            if self.boundary_batch:
                fanout = self.fast_forward.fanout(snapshot_index)
                runner = lambda: fanout.resume_member(ctx)  # noqa: E731
            else:
                snapshot = self.fast_forward.tape.boundaries[snapshot_index]
                runner = lambda: self.fast_forward.resume(ctx, snapshot)  # noqa: E731
        else:
            runner = lambda: self.workload(ctx)  # noqa: E731
        try:
            # With no soft deadline this is a direct call (no thread);
            # with one, the workload runs on a watched daemon thread and
            # a wall-clock stall surfaces as WatchdogExpired -> a real
            # HANG, where the cycle watchdog could never fire.
            with probes.capturing(probe):
                output = call_with_deadline(runner, soft_deadline)
        except Exception as exc:  # noqa: BLE001 - classified below, bugs re-raised
            outcome, crash_kind = classify_exception(exc)
            return InjectionResult(
                plan=plan,
                record=injector.record,
                outcome=outcome,
                crash_kind=crash_kind,
                hang_kind=hang_kind_for(exc),
                cycles=ctx.cycles,
                divergence=divergence(),
            )

        if images_equal(output, self.golden_output):
            return InjectionResult(
                plan=plan,
                record=injector.record,
                outcome=Outcome.MASKED,
                cycles=ctx.cycles,
                divergence=divergence(),
            )
        return InjectionResult(
            plan=plan,
            record=injector.record,
            outcome=Outcome.SDC,
            output=output.copy() if self.keep_sdc_outputs else None,
            cycles=ctx.cycles,
            divergence=divergence(),
        )
