"""Golden-prefix fast-forward: skip the uninjected prefix of injected runs.

A single-bit fault planned at cycle ``c`` cannot affect anything the run
computes before ``c`` — up to the first checkpoint at or after ``c``,
an injected run is a byte-for-byte replay of the golden run.  On a
uniform cycle draw that replay is half of every campaign's work.  This
module amortizes it: one instrumented golden run records a snapshot at
every frame boundary of the VS pipeline, and each injected run restores
the last snapshot strictly before its target cycle and executes only
the live suffix.

The hard requirement is the repo's standing invariant: a fast-forwarded
campaign must be **bit-identical** to a full one — outcomes, counts,
histograms, SDC payloads, cycle counts and divergence records — at any
worker count and across journal interrupt/resume.  That forces the
snapshot to cover far more than the pipeline's visible state, because
the injector's *fire-time behaviour* depends on machine state mutated
at every prefix checkpoint:

* **Register file** — ``FaultInjector.visit`` writes every binding of
  every checkpoint into the modelled register file.  What the planned
  flip hits (binding name, role, staleness) is decided by the slot
  contents at fire time, and suffix slot allocation depends on the
  prefix's round-robin assignment order.  Snapshots therefore capture
  the full :class:`~repro.faultinject.registers.RegisterFileState` as
  value descriptors and restore it into the injected run's register
  file.
* **Address space** — the injector maps every array it sees, and the
  simulated heap layout is a pure function of the *ordered sequence of
  first-use allocations* plus the per-plan seed.  Snapshots log that
  sequence; restore replays it into the injected run's fresh
  ``AddressSpace`` so corrupted pointers resolve to exactly the
  addresses a full run would produce.
* **Aliased memory content** — a corrupted read pointer copies bytes
  *from* whatever allocation it lands in, so the byte content of every
  prefix allocation matters at fire time.  Arrays that are dead at a
  boundary (kernel-local temporaries, frame copies) are frozen by
  content and rebuilt as fresh stand-ins per restore; arrays that are
  still live program state (mini-panorama canvases, the previous
  frame's feature arrays) are restored as the *same objects* the
  resumed pipeline mutates, so corruption flows downstream exactly as
  in a full run.  Views that share memory with a live base (descriptor
  batch slices) are rebuilt as views of the restored base, preserving
  real memory sharing while the simulated heap keeps treating them as
  distinct allocations — just like a full run does.

Restores are destructive (the flip may corrupt any restored object), so
every restore rebuilds its state from the immutable tape.

**Boundary fan-out** (:class:`BoundaryFanOut`) amortizes the restore a
second time: a campaign's plans are grouped by the boundary they resume
from (see :func:`repro.faultinject.parallel.group_plan_indices`), each
boundary's restore source is materialized **once per worker** — the
frozen dead-allocation bytes are decoded into a shared read-only base —
and every member injection clones its mutable state copy-on-write from
that shared base instead of re-decoding the tape.  Fan-out members
additionally carry a convergence watch: once the flip has fired, every
frame boundary of the live suffix is compared against the golden tape,
and when the member's complete loop state (cycles, cells, RNG, chain,
features, canvases) is *exactly* the golden state again, the rest of
the run is by construction an exact golden replay — so the engine
synthesizes it (golden output, golden cycle count, golden probe tail)
instead of executing it.  Most masked runs re-converge at the first
boundary after the fire, which is where the fan-out speedup comes from.

What is *not* bit-identical under fast-forward: telemetry traces (the
skipped prefix emits no spans) and wall-clock-based soft deadlines
(fast-forward strictly reduces wall time).  Campaign results never
depend on either.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry
from repro.faultinject.registers import (
    AddressBinding,
    ArrayBinding,
    FloatValueBinding,
    IntCellBinding,
    IntValueBinding,
    RegisterFileState,
)
from repro.forensics import probes
from repro.observe import events as observe_events
from repro.runtime.context import Cell, CostProfile, ExecutionContext
from repro.summarize.pipeline import (
    PipelineState,
    _ransac_seed,
    materialize_frames,
    run_vs,
    run_vs_resumed,
)
from repro.summarize.stitcher import MiniPanorama
from repro.vision.orb import FeatureSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faultinject.injector import FaultInjector
    from repro.summarize.config import VSConfig
    from repro.video.frames import FrameStream


class SnapshotUnsupported(Exception):
    """The workload uses a construct snapshots cannot represent.

    Raised during capture (e.g. an ``AddressBinding`` with a custom
    ``on_alias`` callback, whose behaviour cannot be rebuilt from a
    value descriptor).  Campaigns degrade gracefully: the workload
    simply runs full executions.
    """


# ---------------------------------------------------------------------------
# Tape data model
# ---------------------------------------------------------------------------

#: Names of the pipeline cells that are live across frame boundaries.
#: Their slot descriptors must rebind the *restored* cells, not frozen
#: stand-ins, so a fire that corrupts e.g. the frame index corrupts the
#: loop the resumed pipeline is actually running.
_LIVE_CELLS = ("index", "total", "failures")


@dataclass
class AllocRecord:
    """One array the injector would have mapped during the prefix.

    ``array`` pins the capture-run object so its ``id`` stays unique for
    the recorder's lifetime.  ``frozen`` holds the byte content at the
    first boundary where the array was no longer live program state;
    live arrays are never frozen (they are rebuilt from the pipeline
    snapshot instead).
    """

    aid: int
    array: np.ndarray
    dtype: np.dtype
    shape: tuple
    nbytes: int
    frozen: bytes | None = None


@dataclass
class MiniSnapshot:
    """Copy-on-restore state of one mini-panorama at a boundary."""

    canvas: np.ndarray
    coverage: np.ndarray
    frames_composited: int


@dataclass
class FrameSnapshot:
    """Everything needed to re-enter the run at one frame boundary."""

    cycles: int
    frame_index: int
    total: int
    failures: int
    rng_state: dict
    prev_chain: np.ndarray | None
    #: ``(coords, descriptors, angles)`` copies, or None before frame 0.
    features: tuple[np.ndarray, np.ndarray, np.ndarray] | None
    minis: list[MiniSnapshot]
    outcomes: list
    #: How many allocations existed at this boundary (prefix of the
    #: tape's alloc list, in first-use order).
    n_allocs: int
    #: aid -> (base_key, byte_offset, is_identity) for allocations that
    #: are live program state at this boundary.
    live_map: dict[int, tuple[tuple, int, bool]]
    #: Register file as value descriptors: (assigned, next_slot, slots).
    regfile: tuple
    profile_by_scope: dict[str, int]
    #: Number of probe events the golden run had emitted by here.
    probe_count: int


@dataclass
class SnapshotTape:
    """The immutable per-workload record all restores are built from."""

    boundaries: list[FrameSnapshot]
    allocs: list[AllocRecord]
    probe_events: list[tuple[str, int]]
    golden_cycles: int
    frame_shape: tuple[int, int]
    boundary_cycles: list[int] = field(default_factory=list)
    #: The golden output panorama, kept so a fan-out member whose state
    #: re-converges to the tape can synthesize its golden tail without
    #: executing it.  None only for tapes built by pre-fan-out callers.
    golden_output: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.boundary_cycles:
            self.boundary_cycles = [b.cycles for b in self.boundaries]


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


class SnapshotRecorder:
    """Pseudo-injector that snapshots machine state at frame boundaries.

    Mirrors what a real :class:`FaultInjector` does at every checkpoint
    — map each binding's backing array, write the binding into the
    register file — and additionally implements the pipeline's
    ``frame_boundary`` hook to capture a :class:`FrameSnapshot` at the
    top of every loop iteration.  Like the census probe it observes
    every checkpoint of the run (``observing`` is always True), so the
    capture run is *armed*: kernels build the same windows, take the
    same armed-only code paths, and produce the same prefix byte
    content an injected run's prefix would.
    """

    observing = True

    def __init__(self) -> None:
        self.regfile = RegisterFileState()
        self.boundaries: list[FrameSnapshot] = []
        self.allocs: list[AllocRecord] = []
        self._alloc_by_id: dict[int, AllocRecord] = {}
        self.probe: probes.StageProbe | None = None
        self.profile: CostProfile | None = None

    # -- checkpoint callback (FaultInjector.visit contract) -------------
    def visit(self, ctx: ExecutionContext, window) -> None:
        """Track register-file writes and first-use allocations."""
        cycle = ctx.cycles
        for binding in window.bindings:
            backing = getattr(binding, "array", None)
            if backing is not None:
                self._ensure(backing)
            if isinstance(binding, AddressBinding) and binding.on_alias is not None:
                raise SnapshotUnsupported(
                    f"binding {binding.name!r} at {window.site!r} uses on_alias"
                )
            self.regfile.write(binding, window.site, cycle)

    def _ensure(self, array: np.ndarray) -> None:
        if id(array) in self._alloc_by_id:
            return
        record = AllocRecord(
            aid=len(self.allocs),
            array=array,
            dtype=array.dtype,
            shape=tuple(array.shape),
            nbytes=max(int(array.nbytes), 1),
        )
        self.allocs.append(record)
        self._alloc_by_id[id(array)] = record

    # -- pipeline hook ---------------------------------------------------
    def frame_boundary(
        self, ctx: ExecutionContext, rng: np.random.Generator, state: PipelineState
    ) -> None:
        """Capture one frame-boundary snapshot."""
        live_bases = _live_bases(state)
        live_map: dict[int, tuple[tuple, int, bool]] = {}
        for record in self.allocs:
            placement = _resolve_live(record, live_bases)
            if placement is not None:
                live_map[record.aid] = placement
            elif record.frozen is None:
                # First boundary where this allocation is dead: its byte
                # content is final from the program's point of view, so
                # freeze it once for all later restores.
                record.frozen = record.array.tobytes()

        self.boundaries.append(
            FrameSnapshot(
                cycles=ctx.cycles,
                frame_index=int(state.index.value),
                total=int(state.total.value),
                failures=int(state.failures.value),
                rng_state=copy.deepcopy(rng.bit_generator.state),
                prev_chain=None if state.prev_chain is None else state.prev_chain.copy(),
                features=(
                    None
                    if state.prev_features is None
                    else (
                        state.prev_features.coords.copy(),
                        state.prev_features.descriptors.copy(),
                        state.prev_features.angles.copy(),
                    )
                ),
                minis=[
                    MiniSnapshot(
                        canvas=mini.canvas.copy(),
                        coverage=mini.coverage.copy(),
                        frames_composited=mini.frames_composited,
                    )
                    for mini in state.minis
                ],
                outcomes=list(state.outcomes),
                n_allocs=len(self.allocs),
                live_map=live_map,
                regfile=self._describe_regfile(state),
                profile_by_scope=(
                    {} if self.profile is None else self.profile.by_scope()
                ),
                probe_count=0 if self.probe is None else len(self.probe.events),
            )
        )

    # -- register-file descriptors ---------------------------------------
    def _describe_regfile(self, state: PipelineState) -> tuple:
        assigned, next_slot, slots = self.regfile.export_state()
        described = {
            kind: [
                None
                if entry is None
                else (
                    self._describe_binding(entry.binding, state),
                    entry.site,
                    entry.written_cycle,
                )
                for entry in entries
            ]
            for kind, entries in slots.items()
        }
        return (assigned, next_slot, described)

    def _describe_binding(self, binding, state: PipelineState) -> tuple:
        if isinstance(binding, IntCellBinding):
            for cell_name in _LIVE_CELLS:
                if binding.cell is getattr(state, cell_name):
                    return (
                        "cell-live",
                        binding.name,
                        binding.role,
                        binding.ttl,
                        cell_name,
                    )
            # Kernel-local cell: dead at the boundary, value final.
            return ("cell", binding.name, binding.role, binding.ttl, int(binding.cell.value))
        if isinstance(binding, AddressBinding):
            return (
                "address",
                binding.name,
                binding.ttl,
                binding.byte_offset,
                binding.writes,
                binding.window,
                self._alloc_by_id[id(binding.array)].aid,
            )
        if isinstance(binding, ArrayBinding):
            return (
                "array",
                binding.name,
                binding.kind,
                binding.role,
                binding.ttl,
                self._alloc_by_id[id(binding.array)].aid,
            )
        if isinstance(binding, IntValueBinding):
            # The apply callback targets kernel-local state that is dead
            # at a frame boundary, so a no-op stand-in is exact.
            return ("ivalue", binding.name, binding.role, binding.ttl, binding.value)
        if isinstance(binding, FloatValueBinding):
            return ("fvalue", binding.name, binding.ttl, binding.value)
        raise SnapshotUnsupported(f"unknown binding type {type(binding)!r}")


def _live_bases(state: PipelineState) -> list[tuple[tuple, np.ndarray]]:
    """The arrays that are live program state at a frame boundary.

    Everything the resumed pipeline will read *and mutate*: the mini
    panoramas' canvas/coverage buffers and the previous frame's feature
    arrays.  All other arrays the injector saw are dead temporaries.
    """
    bases: list[tuple[tuple, np.ndarray]] = []
    for k, mini in enumerate(state.minis):
        bases.append((("mini", k, "canvas"), mini.canvas))
        bases.append((("mini", k, "coverage"), mini.coverage))
    if state.prev_features is not None:
        bases.append((("prev", "coords"), state.prev_features.coords))
        bases.append((("prev", "descriptors"), state.prev_features.descriptors))
        bases.append((("prev", "angles"), state.prev_features.angles))
    return bases


def _resolve_live(
    record: AllocRecord, bases: list[tuple[tuple, np.ndarray]]
) -> tuple[tuple, int, bool] | None:
    """Place ``record`` relative to a live base array, if it is live.

    Returns ``(base_key, byte_offset, is_identity)``.  Identity matters:
    the restored pipeline re-binds its own live arrays, and those binds
    must id-hit the same address-space allocation the replay created —
    while a *view* sharing the base's memory (a descriptor batch slice)
    must restore as a distinct object, because the full run maps it as
    a separate simulated allocation.
    """
    for key, base in bases:
        if record.array is base:
            return (key, 0, True)
        if base.nbytes and np.may_share_memory(record.array, base):
            offset = record.array.ctypes.data - base.ctypes.data
            if 0 <= offset and offset + record.nbytes <= base.nbytes:
                return (key, offset, False)
    return None


def capture_tape(
    stream: "FrameStream", config: "VSConfig", golden_output: np.ndarray, golden_cycles: int
) -> SnapshotTape:
    """One instrumented golden run -> the workload's snapshot tape.

    Runs the pipeline once with a :class:`SnapshotRecorder` armed and a
    stage probe capturing, then cross-checks the run against the cached
    golden output and cycle count — a capture that does not reproduce
    the golden run exactly would silently poison every restore.
    """
    frames, frame_shape = materialize_frames(stream, config)
    recorder = SnapshotRecorder()
    probe = probes.StageProbe()
    recorder.probe = probe
    profile = CostProfile()
    recorder.profile = profile
    ctx = ExecutionContext(injector=recorder, profile=profile)
    with probes.capturing(probe):
        result = run_vs(stream, config, ctx)
    if ctx.cycles != golden_cycles or not np.array_equal(result.panorama, golden_output):
        raise RuntimeError(
            "fast-forward capture diverged from the golden run "
            f"(cycles {ctx.cycles} vs {golden_cycles})"
        )
    return SnapshotTape(
        boundaries=recorder.boundaries,
        allocs=recorder.allocs,
        probe_events=list(probe.events),
        golden_cycles=golden_cycles,
        frame_shape=frame_shape if frame_shape is not None else (0, 0),
        golden_output=golden_output.copy(),
    )


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------


class FastForward:
    """Per-workload fast-forward handle: boundary lookup + restore.

    Built once per ``(config, stream)`` per process (see
    :func:`repro.summarize.golden.golden_fast_forward`) and shared by
    every injected run of a campaign.  The tape and the materialized
    frame table are immutable; every :meth:`resume` rebuilds fresh
    mutable state from them.
    """

    def __init__(self, tape: SnapshotTape, stream: "FrameStream", config: "VSConfig") -> None:
        self.tape = tape
        self.config = config
        self.stream_name = stream.name
        self._frames, self._frame_shape = materialize_frames(stream, config)
        #: boundary index -> shared fan-out state, lazily built.  Hangs
        #: off the handle so "materialize once per worker" falls out of
        #: the per-process handle cache in ``summarize.golden``.
        self._fanouts: dict[int, BoundaryFanOut] = {}
        self._snapshot_by_frame: dict[int, FrameSnapshot] | None = None

    def boundary_index_for(self, target_cycle: int) -> int | None:
        """Index of the last frame boundary strictly before the cycle.

        Strictly: no checkpoint of the restored suffix may precede the
        boundary, so no prefix checkpoint the injector never saw could
        have fired.  Boundary 0 (cycle 0, nothing skipped) is treated as
        "run in full" — restoring it would only add overhead.
        """
        index = bisect.bisect_left(self.tape.boundary_cycles, target_cycle) - 1
        if index <= 0:
            return None
        return index

    def boundary_for(self, target_cycle: int) -> FrameSnapshot | None:
        """The last frame boundary strictly before ``target_cycle``."""
        index = self.boundary_index_for(target_cycle)
        if index is None:
            return None
        return self.tape.boundaries[index]

    def fanout(self, index: int) -> "BoundaryFanOut":
        """The shared fan-out state for boundary ``index`` (lazy)."""
        fan = self._fanouts.get(index)
        if fan is None:
            fan = BoundaryFanOut(self, index)
            self._fanouts[index] = fan
            telemetry.counter_inc("campaign.fanout.groups")
        return fan

    def resume(self, ctx: ExecutionContext, snapshot: FrameSnapshot) -> np.ndarray:
        """Restore ``snapshot`` into ``ctx`` and run the live suffix.

        ``ctx`` must be a fresh context carrying a real
        :class:`FaultInjector` whose plan targets a cycle at or after
        the snapshot.  Returns the run's output panorama, exactly as the
        full workload closure would.
        """
        return self._resume(ctx, snapshot)

    def _resume(
        self,
        ctx: ExecutionContext,
        snapshot: FrameSnapshot,
        dead_base: dict[int, np.ndarray] | None = None,
        converge: bool = False,
    ) -> np.ndarray:
        injector = ctx.injector
        state, live_bases = self._restore_app(snapshot)
        self._restore_machine(snapshot, injector, live_bases, state, dead_base)
        ctx.preload(snapshot.cycles, snapshot.profile_by_scope)
        probes.replay_prefix(self.tape.probe_events[: snapshot.probe_count])
        rng = np.random.default_rng(_ransac_seed(self.config, self.stream_name))
        rng.bit_generator.state = copy.deepcopy(snapshot.rng_state)
        if converge and self.tape.golden_output is not None:
            # Fan-out members watch every post-fire boundary for exact
            # re-convergence to the tape; the watch only observes until
            # it proves the rest of the run is a golden replay.
            injector.frame_boundary = _ConvergenceWatch(injector, self._by_frame())
        try:
            result = run_vs_resumed(
                self.config, ctx, state, rng, self._frames, self._frame_shape
            )
        except _GoldenTailReached as reached:
            return self._synthesize_tail(ctx, reached.snapshot)
        return result.panorama

    def _by_frame(self) -> dict[int, FrameSnapshot]:
        if self._snapshot_by_frame is None:
            self._snapshot_by_frame = {
                b.frame_index: b for b in self.tape.boundaries
            }
        return self._snapshot_by_frame

    def _synthesize_tail(self, ctx: ExecutionContext, snapshot: FrameSnapshot) -> np.ndarray:
        """Complete a re-converged run from the tape, without executing.

        At ``snapshot``'s boundary the member's loop state equals the
        golden run's exactly, and the loop forward of a boundary is a
        pure function of that state — so the remaining frames would
        reproduce the golden run byte-for-byte.  Emit what they would
        have emitted: the golden probe tail from this boundary on, the
        golden final cycle count, and a fresh copy of the golden output.
        """
        probes.replay_prefix(self.tape.probe_events[snapshot.probe_count :])
        ctx.preload(self.tape.golden_cycles)
        telemetry.counter_inc("campaign.fanout.golden_tail")
        # Parent-side only by construction: workers never carry a bus,
        # so fan-out never duplicates golden-tail events.
        observe_events.emit(
            "golden_tail",
            frame=snapshot.frame_index,
            skipped_probe_events=len(self.tape.probe_events) - snapshot.probe_count,
        )
        return self.tape.golden_output.copy()

    # -- application state ------------------------------------------------
    def _restore_app(
        self, snapshot: FrameSnapshot
    ) -> tuple[PipelineState, dict[tuple, np.ndarray]]:
        live_bases: dict[tuple, np.ndarray] = {}
        minis: list[MiniPanorama] = []
        for k, mini_snap in enumerate(snapshot.minis):
            mini = MiniPanorama(self._frame_shape, self.config)
            mini.canvas = mini_snap.canvas.copy()
            mini.coverage = mini_snap.coverage.copy()
            mini.frames_composited = mini_snap.frames_composited
            minis.append(mini)
            live_bases[("mini", k, "canvas")] = mini.canvas
            live_bases[("mini", k, "coverage")] = mini.coverage

        prev_features: FeatureSet | None = None
        if snapshot.features is not None:
            coords, descriptors, angles = snapshot.features
            prev_features = FeatureSet(coords.copy(), descriptors.copy(), angles.copy())
            live_bases[("prev", "coords")] = prev_features.coords
            live_bases[("prev", "descriptors")] = prev_features.descriptors
            live_bases[("prev", "angles")] = prev_features.angles

        state = PipelineState(
            minis=minis,
            outcomes=list(snapshot.outcomes),
            current=minis[-1] if minis else None,
            prev_features=prev_features,
            prev_chain=None if snapshot.prev_chain is None else snapshot.prev_chain.copy(),
            failures=Cell(snapshot.failures),
            index=Cell(snapshot.frame_index),
            total=Cell(snapshot.total),
        )
        return state, live_bases

    # -- machine state ----------------------------------------------------
    def _restore_machine(
        self,
        snapshot: FrameSnapshot,
        injector: "FaultInjector",
        live_bases: dict[tuple, np.ndarray],
        state: PipelineState,
        dead_base: dict[int, np.ndarray] | None = None,
    ) -> None:
        # Replay the prefix's first-use allocation sequence, in order,
        # into the injected run's fresh address space: the heap layout
        # (and the RNG draws behind it) become bit-identical to a full
        # run's at the point the suffix takes over.
        objects: dict[int, np.ndarray] = {}
        for record in self.tape.allocs[: snapshot.n_allocs]:
            placement = snapshot.live_map.get(record.aid)
            if placement is not None:
                key, offset, identity = placement
                base = live_bases[key]
                if identity:
                    array = base
                else:
                    flat = base.reshape(-1).view(np.uint8)
                    array = (
                        flat[offset : offset + record.nbytes]
                        .view(record.dtype)
                        .reshape(record.shape)
                    )
            elif dead_base is not None:
                # Fan-out member: clone copy-on-write from the group's
                # shared read-only base instead of re-decoding bytes.
                array = dead_base[record.aid].copy()
            else:
                # Dead allocation: fresh writable stand-in per restore
                # (the flip may corrupt it; the tape stays pristine).
                array = (
                    np.frombuffer(record.frozen, dtype=record.dtype)
                    .reshape(record.shape)
                    .copy()
                )
            injector.space.ensure(array)
            objects[record.aid] = array

        assigned, next_slot, described = snapshot.regfile
        from repro.faultinject.registers import SlotEntry

        slots = {
            kind: [
                None
                if item is None
                else SlotEntry(
                    binding=self._build_binding(item[0], objects, state),
                    site=item[1],
                    written_cycle=item[2],
                )
                for item in entries
            ]
            for kind, entries in described.items()
        }
        injector.regfile.import_state(assigned, next_slot, slots)

    def _build_binding(self, desc: tuple, objects: dict[int, np.ndarray], state: PipelineState):
        tag = desc[0]
        if tag == "cell-live":
            _, name, role, ttl, cell_name = desc
            return IntCellBinding(name, getattr(state, cell_name), role=role, ttl=ttl)
        if tag == "cell":
            _, name, role, ttl, value = desc
            return IntCellBinding(name, Cell(value), role=role, ttl=ttl)
        if tag == "address":
            _, name, ttl, byte_offset, writes, window, aid = desc
            return AddressBinding(
                name,
                objects[aid],
                byte_offset=byte_offset,
                writes=writes,
                window=window,
                ttl=ttl,
            )
        if tag == "array":
            _, name, kind, role, ttl, aid = desc
            return ArrayBinding(name, objects[aid], kind, role=role, ttl=ttl)
        if tag == "ivalue":
            _, name, role, ttl, value = desc
            return IntValueBinding(name, value, _discard_int, role=role, ttl=ttl)
        if tag == "fvalue":
            _, name, ttl, value = desc
            return FloatValueBinding(name, value, _discard_float, ttl=ttl)
        raise SnapshotUnsupported(f"unknown binding descriptor {tag!r}")


def _discard_int(value: int) -> None:
    """Stand-in apply for a dead kernel-local integer value binding."""


def _discard_float(value: float) -> None:
    """Stand-in apply for a dead kernel-local float value binding."""


# ---------------------------------------------------------------------------
# Boundary fan-out
# ---------------------------------------------------------------------------


class BoundaryFanOut:
    """Shared restore source for all injections resuming at one boundary.

    Materialized lazily on the first member: the boundary's frozen
    dead-allocation bytes are decoded **once** into read-only arrays —
    zero-copy views of the tape's immutable ``frozen`` buffers — and
    every member clones its writable stand-ins copy-on-write from that
    shared base instead of re-decoding the tape per restore.  The clones
    are mandatory, not an optimization to skip: restores are destructive
    (a fired flip may corrupt any restored object), so nothing mutable
    is ever shared between members.  The equivalence suite checks
    batched campaigns byte-for-byte against unbatched ones.
    """

    def __init__(self, fast_forward: FastForward, index: int) -> None:
        self.fast_forward = fast_forward
        self.index = index
        self.snapshot = fast_forward.tape.boundaries[index]
        self.members_run = 0
        self._dead_base: dict[int, np.ndarray] | None = None
        self._clones_per_member = 0

    def _materialize(self) -> dict[int, np.ndarray]:
        """Decode this boundary's dead allocations once, read-only."""
        snapshot = self.snapshot
        base: dict[int, np.ndarray] = {}
        for record in self.fast_forward.tape.allocs[: snapshot.n_allocs]:
            if record.aid in snapshot.live_map:
                continue
            # np.frombuffer over the frozen bytes is read-only, so the
            # shared base is immune to member corruption by construction.
            base[record.aid] = np.frombuffer(record.frozen, dtype=record.dtype).reshape(
                record.shape
            )
        self._clones_per_member = (
            len(base)
            + 2 * len(snapshot.minis)
            + (0 if snapshot.features is None else 3)
            + (0 if snapshot.prev_chain is None else 1)
        )
        return base

    def resume_member(self, ctx: ExecutionContext) -> np.ndarray:
        """Run one member injection's live suffix off the shared base."""
        if self._dead_base is None:
            self._dead_base = self._materialize()
            telemetry.counter_inc("campaign.fanout.shared_restores")
        elif telemetry.enabled():
            telemetry.counter_inc(
                f"campaign.fanout.b{self.snapshot.frame_index}.restores_saved"
            )
        self.members_run += 1
        if telemetry.enabled():
            telemetry.counter_inc("campaign.fanout.cow_clones", self._clones_per_member)
            telemetry.counter_inc(
                f"campaign.fanout.b{self.snapshot.frame_index}.members"
            )
        with telemetry.span(f"fanout.suffix.b{self.snapshot.frame_index}", ctx=ctx):
            return self.fast_forward._resume(
                ctx, self.snapshot, dead_base=self._dead_base, converge=True
            )


class _GoldenTailReached(Exception):
    """Control-flow signal: a fired member re-converged to the tape.

    Raised by :class:`_ConvergenceWatch` from the pipeline's
    ``frame_boundary`` hook and caught inside ``FastForward._resume`` —
    it never escapes to outcome classification.
    """

    def __init__(self, snapshot: FrameSnapshot) -> None:
        super().__init__(f"golden tail at frame {snapshot.frame_index}")
        self.snapshot = snapshot


class _ConvergenceWatch:
    """``frame_boundary`` hook armed on fan-out members.

    Until the injector fires it is a single attribute check per frame.
    After the fire, each boundary compares the member's complete loop
    state against the tape's snapshot for that frame index — cheapest
    fields first, so runs that stay divergent pay almost nothing — and
    raises :class:`_GoldenTailReached` on exact equality.  Equality is
    a *proof*: ``PipelineState`` plus the RANSAC RNG and the cycle
    counter is everything the loop reads forward of a boundary (the
    fired injector is spent and never consults machine state again),
    so an equal state replays the golden tail verbatim.
    """

    __slots__ = ("injector", "by_frame")

    def __init__(self, injector: "FaultInjector", by_frame: dict[int, FrameSnapshot]) -> None:
        self.injector = injector
        self.by_frame = by_frame

    def __call__(
        self, ctx: ExecutionContext, rng: np.random.Generator, state: PipelineState
    ) -> None:
        if not self.injector.record.fired:
            return
        snapshot = self.by_frame.get(int(state.index.value))
        if snapshot is None or ctx.cycles != snapshot.cycles:
            return
        if _matches_snapshot(snapshot, rng, state):
            raise _GoldenTailReached(snapshot)


def _matches_snapshot(
    snapshot: FrameSnapshot, rng: np.random.Generator, state: PipelineState
) -> bool:
    """Exact loop-state equality against a tape snapshot (cheap first)."""
    # ``state.outcomes`` is deliberately not compared: the loop only
    # appends to it forward of a boundary (never reads it), and the
    # member's own per-frame outcomes are not part of its result — so
    # it cannot influence the tail.  Everything else is load-bearing.
    if (
        int(state.total.value) != snapshot.total
        or int(state.failures.value) != snapshot.failures
        or len(state.minis) != len(snapshot.minis)
        or (state.prev_chain is None) != (snapshot.prev_chain is None)
        or (state.prev_features is None) != (snapshot.features is None)
    ):
        return False
    if rng.bit_generator.state != snapshot.rng_state:
        return False
    if state.prev_chain is not None and not np.array_equal(
        state.prev_chain, snapshot.prev_chain
    ):
        return False
    if snapshot.features is not None:
        coords, descriptors, angles = snapshot.features
        prev = state.prev_features
        if not (
            np.array_equal(prev.coords, coords)
            and np.array_equal(prev.descriptors, descriptors)
            and np.array_equal(prev.angles, angles)
        ):
            return False
    for mini, mini_snap in zip(state.minis, snapshot.minis):
        if (
            mini.frames_composited != mini_snap.frames_composited
            or not np.array_equal(mini.coverage, mini_snap.coverage)
            or not np.array_equal(mini.canvas, mini_snap.canvas)
        ):
            return False
    return True
