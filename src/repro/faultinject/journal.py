"""Durable campaign checkpoint journal: crash-safe, resumable campaigns.

Large campaigns (thousands of injections per cell) must not lose hours
of completed work to one crashed worker, an OOM kill, or a power cut.
The journal is a schema-versioned JSONL file the campaign engine
appends to as chunks complete:

* line 1 — a ``header`` record: schema version, a fingerprint of every
  config field that affects results, and the dispatch layout — contiguous
  ``chunk_bounds`` for index-chunked campaigns, the boundary ``groups``
  (lists of plan indices) for boundary-batched ones, or the
  ``stratification`` grid for adaptive stratified campaigns — so a
  resume can detect config drift and re-dispatch exactly as the
  original run did (chunking depends on the original worker count;
  groups on the tape; stratified rounds on the accumulated statistics);
* then one ``chunk`` record per completed injection chunk (or one
  ``round`` record per completed stratified sampling round), carrying
  the fully serialized :class:`InjectionResult` list plus a CRC32
  of the payload.  Every append is flushed **and fsync'd**, so a record
  that made it into the file survives the process.

``repro campaign --resume PATH`` (and ``run_campaign(...,
journal_path=..., resume=True)``) replays journaled chunks and executes
only the remainder — bit-identical to an uninterrupted run, because
results are reassembled in plan order before statistics are computed
and every per-run RNG derives from ``(seed, index)`` alone.

A torn final record (truncated line, or a line whose CRC does not match
— the write raced the crash) is detected on load and **discarded**; its
chunk simply re-runs.  Payload arrays (SDC outputs) round-trip through
base64 with dtype and shape, so restored corrupted outputs are
byte-identical to freshly computed ones.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.faultinject.injector import InjectionPlan, InjectionRecord
from repro.faultinject.monitor import InjectionResult
from repro.faultinject.outcomes import CrashKind, HangKind, Outcome
from repro.faultinject.registers import FlipEffect, RegKind, Role
from repro.forensics.divergence import DivergenceRecord
from repro.observe import events as observe_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faultinject.campaign import CampaignConfig

#: Bump when a record's shape changes incompatibly; loaders reject
#: journals from other schema versions rather than misreading them.
#: v2: header carries either ``chunk_bounds`` or boundary ``groups``
#: (group-granularity checkpointing), and the fingerprint gained
#: ``boundary_batch``.
#: v3: stratified campaigns (see :mod:`repro.faultinject.sampling`)
#: checkpoint at **round** granularity — the header carries the
#: ``stratification`` grid instead of a dispatch layout, followed by one
#: ``round`` record per completed sampling round — and the fingerprint
#: gained ``sampling`` (plus the stratified knobs when active), so a
#: journal written in one sampling mode cannot be resumed in the other.
JOURNAL_SCHEMA_VERSION = 3

#: Test/CI hook: abort the campaign after this many journal appends, to
#: exercise the interrupt->resume path deterministically.
ABORT_AFTER_ENV = "REPRO_JOURNAL_ABORT_AFTER"


class JournalError(ValueError):
    """The journal file cannot be used (bad schema, config mismatch)."""


class CampaignInterrupted(RuntimeError):
    """The campaign stopped early on purpose (the abort-after test hook).

    Everything journaled so far is durable; re-run with ``--resume`` to
    finish the remainder.
    """

    def __init__(self, journal_path: Path, chunks_done: int) -> None:
        self.journal_path = Path(journal_path)
        self.chunks_done = chunks_done
        super().__init__(
            f"campaign interrupted after {chunks_done} journaled chunk(s); "
            f"resume with --resume {journal_path}"
        )


# ---------------------------------------------------------------------------
# Result (de)serialization
# ---------------------------------------------------------------------------


def _plan_to_dict(plan: InjectionPlan) -> dict:
    return {
        "target_cycle": plan.target_cycle,
        "kind": plan.kind.value,
        "register": plan.register,
        "bit": plan.bit,
    }


def _plan_from_dict(data: dict) -> InjectionPlan:
    return InjectionPlan(
        target_cycle=data["target_cycle"],
        kind=RegKind(data["kind"]),
        register=data["register"],
        bit=data["bit"],
    )


def _array_to_dict(array: np.ndarray) -> dict:
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _array_from_dict(data: dict) -> np.ndarray:
    raw = base64.b64decode(data["data"])
    return np.frombuffer(raw, dtype=np.dtype(data["dtype"])).reshape(data["shape"]).copy()


def serialize_result(result: InjectionResult) -> dict:
    """One injection result as a JSON-serializable dict (lossless)."""
    record = result.record
    return {
        "plan": _plan_to_dict(result.plan),
        "record": {
            "fired": record.fired,
            "fired_cycle": record.fired_cycle,
            "site": record.site,
            "binding_name": record.binding_name,
            "role": record.role.value if record.role is not None else None,
            "effect": record.effect.value if record.effect is not None else None,
            "in_study": record.in_study,
        },
        "outcome": result.outcome.value,
        "crash_kind": result.crash_kind.value if result.crash_kind is not None else None,
        "hang_kind": result.hang_kind.value if result.hang_kind is not None else None,
        "cycles": result.cycles,
        "output": _array_to_dict(result.output) if result.output is not None else None,
        "divergence": result.divergence.to_dict() if result.divergence is not None else None,
    }


def deserialize_result(data: dict) -> InjectionResult:
    """Rebuild an :class:`InjectionResult` from :func:`serialize_result`."""
    plan = _plan_from_dict(data["plan"])
    rec = data["record"]
    record = InjectionRecord(
        plan=plan,
        fired=rec["fired"],
        fired_cycle=rec["fired_cycle"],
        site=rec["site"],
        binding_name=rec["binding_name"],
        role=Role(rec["role"]) if rec["role"] is not None else None,
        effect=FlipEffect(rec["effect"]) if rec["effect"] is not None else None,
        in_study=rec["in_study"],
    )
    return InjectionResult(
        plan=plan,
        record=record,
        outcome=Outcome(data["outcome"]),
        crash_kind=CrashKind(data["crash_kind"]) if data["crash_kind"] is not None else None,
        hang_kind=HangKind(data["hang_kind"]) if data["hang_kind"] is not None else None,
        output=_array_from_dict(data["output"]) if data["output"] is not None else None,
        cycles=data["cycles"],
        divergence=(
            DivergenceRecord.from_dict(data["divergence"])
            if data.get("divergence") is not None
            else None
        ),
    )


# ---------------------------------------------------------------------------
# Config fingerprinting
# ---------------------------------------------------------------------------


def config_fingerprint(config: "CampaignConfig") -> dict:
    """Every config field that affects campaign *results*.

    Execution knobs (workers, retry policy) are deliberately excluded —
    the engine guarantees they never change results — but the watchdog
    soft deadline is included because it can reclassify a stalled run.
    ``probe`` is also included: probing never changes outcomes, but it
    does determine whether results carry divergence records, and a
    resume that silently mixed probed and unprobed chunks would leave a
    campaign whose attribution tables cover an arbitrary subset.
    ``fast_forward`` is included on the same conservative grounds: the
    engine guarantees fast-forwarded results are bit-identical to full
    executions, but that guarantee is exactly what a mixed-mode resume
    would be silently betting on if the modes ever disagreed — refusing
    the mix keeps every journal attributable to one execution mode.
    A resume whose fingerprint differs from the journal's header is
    refused: mixing results from two different campaigns would be
    silently wrong.
    """
    watchdog = config.watchdog
    return {
        "n_injections": config.n_injections,
        "kind": config.kind.value,
        "seed": config.seed,
        "hang_factor": config.hang_factor,
        "site_filter": config.site_filter,
        "keep_sdc_outputs": config.keep_sdc_outputs,
        "watchdog_soft_deadline_s": watchdog.soft_deadline_s if watchdog else None,
        "probe": config.probe,
        "fast_forward": config.fast_forward,
        # Boundary batching changes the journal's checkpoint granularity
        # (groups instead of contiguous index chunks), so a mixed-mode
        # resume must be rejected as a different campaign.
        "boundary_batch": getattr(config, "boundary_batch", True),
        # Sampling mode decides what the journal even records (index
        # chunks / boundary groups vs adaptive rounds) and which plans
        # exist at all, so uniform and stratified journals are different
        # campaigns by construction.  The stratified knobs join only in
        # stratified mode: changing them must invalidate stratified
        # journals without perturbing every uniform fingerprint.
        "sampling": getattr(config, "sampling", "uniform"),
        **(
            {
                "stratified": {
                    "ci_width": config.ci_width,
                    "round_size": config.round_size,
                    "max_injections": config.max_injections,
                    "strata": list(config.strata),
                }
            }
            if getattr(config, "sampling", "uniform") == "stratified"
            else {}
        ),
    }


def require_sampling_mode(
    fingerprint: dict, config: "CampaignConfig", path: Path
) -> None:
    """Reject a resume that mixes sampling modes, with a targeted error.

    The full fingerprint comparison would also refuse the mix, but its
    generic "different configuration" message buries the one field that
    matters; mode mixing deserves a message naming both modes.
    """
    journal_mode = fingerprint.get("sampling", "uniform")
    config_mode = getattr(config, "sampling", "uniform")
    if journal_mode != config_mode:
        raise JournalError(
            f"journal {path} was written by a sampling={journal_mode!r} "
            f"campaign and cannot be resumed with sampling={config_mode!r}: "
            f"the modes draw different plans and checkpoint at different "
            f"granularities, so their results cannot be mixed"
        )


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _abort_after_from_env() -> int | None:
    raw = os.environ.get(ABORT_AFTER_ENV)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ABORT_AFTER_ENV} must be an integer chunk count, got {raw!r}"
        ) from None
    return value if value >= 1 else None


class CampaignJournal:
    """Append-only writer for one campaign's checkpoint journal.

    Create with :meth:`create` for a fresh campaign (writes the header)
    or :meth:`append_to` when resuming (the header already exists).
    Every :meth:`append_chunk` writes one complete JSON line, flushes,
    and fsyncs before returning — once it returns, that chunk survives
    any crash of this process.
    """

    def __init__(self, path: Path, handle, chunks_written: int = 0) -> None:
        self.path = Path(path)
        self._handle = handle
        self.chunks_written = chunks_written
        self._abort_after = _abort_after_from_env()

    @classmethod
    def create(
        cls,
        path: Path,
        config: "CampaignConfig",
        bounds: list[tuple[int, int]] | None = None,
        groups: list[list[int]] | None = None,
        stratification: dict | None = None,
    ) -> "CampaignJournal":
        """Start a fresh journal at ``path`` (truncating any old file).

        Exactly one of ``bounds`` (contiguous index chunking),
        ``groups`` (boundary-batched dispatch: one chunk per group of
        plan indices) or ``stratification`` (adaptive stratified
        campaigns: the cell grid, checkpointed per round) describes the
        dispatch layout recorded in the header.
        """
        given = [value for value in (bounds, groups, stratification) if value is not None]
        if len(given) != 1:
            raise ValueError(
                "CampaignJournal.create needs exactly one of "
                "bounds/groups/stratification"
            )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "w", encoding="utf-8")
        header = {
            "type": "header",
            "schema": JOURNAL_SCHEMA_VERSION,
            "fingerprint": config_fingerprint(config),
        }
        if stratification is not None:
            header["stratification"] = stratification
        elif groups is not None:
            header["groups"] = [list(group) for group in groups]
        else:
            header["chunk_bounds"] = [[start, stop] for start, stop in bounds]
        journal = cls(path, handle)
        journal._write_line(header)
        return journal

    @classmethod
    def append_to(cls, path: Path, chunks_written: int) -> "CampaignJournal":
        """Reopen ``path`` for appending after :func:`load_journal`.

        The loader already discarded any torn trailing record *from its
        view*; the file itself may still end with the torn bytes, so the
        writer first truncates to the last complete line boundary.
        """
        path = Path(path)
        _truncate_to_complete_lines(path)
        handle = open(path, "a", encoding="utf-8")
        return cls(path, handle, chunks_written=chunks_written)

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_chunk(self, chunk_index: int, results: list[InjectionResult]) -> None:
        """Durably record one completed chunk's results."""
        payload = [serialize_result(result) for result in results]
        encoded = json.dumps(payload, separators=(",", ":"))
        self._write_line(
            {
                "type": "chunk",
                "chunk_index": chunk_index,
                "n_results": len(results),
                "crc32": zlib.crc32(encoded.encode("utf-8")),
                "results": payload,
            }
        )
        self.chunks_written += 1
        observe_events.emit(
            "journal_checkpoint",
            unit="chunk",
            index=chunk_index,
            n_results=len(results),
            written=self.chunks_written,
        )
        if self._abort_after is not None and self.chunks_written >= self._abort_after:
            self.close()
            raise CampaignInterrupted(self.path, self.chunks_written)

    def append_round(self, round_index: int, results: list[InjectionResult]) -> None:
        """Durably record one completed stratified sampling round.

        Same durability contract as :meth:`append_chunk`; rounds count
        toward the abort-after test hook exactly as chunks do, so the
        interrupt/resume suite exercises stratified campaigns with the
        same environment knob.
        """
        payload = [serialize_result(result) for result in results]
        encoded = json.dumps(payload, separators=(",", ":"))
        self._write_line(
            {
                "type": "round",
                "round_index": round_index,
                "n_results": len(results),
                "crc32": zlib.crc32(encoded.encode("utf-8")),
                "results": payload,
            }
        )
        self.chunks_written += 1
        observe_events.emit(
            "journal_checkpoint",
            unit="round",
            index=round_index,
            n_results=len(results),
            written=self.chunks_written,
        )
        if self._abort_after is not None and self.chunks_written >= self._abort_after:
            self.close()
            raise CampaignInterrupted(self.path, self.chunks_written)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _truncate_to_complete_lines(path: Path) -> None:
    """Drop any trailing bytes after the last newline (a torn record)."""
    data = path.read_bytes()
    if data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1  # 0 when no newline at all
    with open(path, "r+b") as handle:
        handle.truncate(keep)


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


@dataclass
class JournalState:
    """Everything recovered from an existing journal file."""

    path: Path
    fingerprint: dict
    #: Contiguous index chunking; empty for boundary-batched and
    #: stratified journals.
    chunk_bounds: list[tuple[int, int]]
    #: Boundary groups (plan indices per chunk) for boundary-batched
    #: journals; None for index-chunked ones.
    groups: list[list[int]] | None = None
    #: The stratification grid (see ``Stratification.to_dict``) for
    #: stratified journals; None otherwise.
    stratification: dict | None = None
    #: Completed chunks, keyed by chunk index.
    chunks: dict[int, list[InjectionResult]] = field(default_factory=dict)
    #: Completed sampling rounds (stratified journals), keyed by round
    #: index.
    rounds: dict[int, list[InjectionResult]] = field(default_factory=dict)
    #: True when a torn/corrupt trailing record was found and dropped.
    discarded_partial: bool = False

    @property
    def injections_done(self) -> int:
        chunked = sum(len(results) for results in self.chunks.values())
        return chunked + sum(len(results) for results in self.rounds.values())


def load_journal(path: Path) -> JournalState:
    """Read a journal, validating schema and integrity.

    Raises :class:`JournalError` for a missing/empty file, an unreadable
    or wrong-schema header, or structurally impossible chunk records
    (bad index, length mismatch with the header's bounds).  A torn or
    CRC-failing record at the *end* of the file — the expected shape of
    a crash — is silently discarded and flagged via
    ``discarded_partial``; corruption anywhere earlier also discards
    that record (its chunk just re-runs) since chunks are independent.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"journal {path} does not exist")
    raw_lines = path.read_bytes().split(b"\n")
    # A well-formed file ends with "\n": the final split element is "".
    # Anything non-empty there is a torn trailing record.
    torn_tail = raw_lines[-1] != b""
    lines = [line for line in raw_lines if line]
    if not lines:
        raise JournalError(f"journal {path} is empty")

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalError(f"journal {path}: unreadable header: {exc}") from None
    if header.get("type") != "header":
        raise JournalError(f"journal {path}: first record is not a header")
    if header.get("schema") != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"journal {path}: schema {header.get('schema')!r} is not "
            f"supported (expected {JOURNAL_SCHEMA_VERSION})"
        )
    groups: list[list[int]] | None = None
    stratification: dict | None = None
    if "stratification" in header:
        stratification = header["stratification"]
        bounds = []
        expected_lengths = []
    elif "groups" in header:
        groups = [[int(index) for index in group] for group in header["groups"]]
        bounds = []
        expected_lengths = [len(group) for group in groups]
    else:
        bounds = [(int(start), int(stop)) for start, stop in header["chunk_bounds"]]
        expected_lengths = [stop - start for start, stop in bounds]

    state = JournalState(
        path=path,
        fingerprint=header["fingerprint"],
        chunk_bounds=bounds,
        groups=groups,
        stratification=stratification,
        discarded_partial=torn_tail,
    )
    for line_number, line in enumerate(lines[1:], start=2):
        if stratification is not None:
            round_record = _parse_round_record(line)
            if round_record is None:
                state.discarded_partial = True
                continue
            round_index, results = round_record
            state.rounds[round_index] = results
            continue
        record = _parse_chunk_record(line, expected_lengths)
        if record is None:
            # Torn or corrupt record: drop it (and keep scanning — later
            # records are independent and may be intact).
            state.discarded_partial = True
            continue
        chunk_index, results = record
        state.chunks[chunk_index] = results
    return state


def _parse_chunk_record(
    line: bytes, expected_lengths: list[int]
) -> tuple[int, list[InjectionResult]] | None:
    """Parse one chunk line; None for anything torn or inconsistent.

    ``expected_lengths[i]`` is how many results chunk ``i`` must carry —
    derived from the header's chunk bounds or boundary groups.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or record.get("type") != "chunk":
        return None
    chunk_index = record.get("chunk_index")
    if not isinstance(chunk_index, int) or not 0 <= chunk_index < len(expected_lengths):
        return None
    payload = record.get("results")
    if not isinstance(payload, list) or len(payload) != expected_lengths[chunk_index]:
        return None
    encoded = json.dumps(payload, separators=(",", ":"))
    if zlib.crc32(encoded.encode("utf-8")) != record.get("crc32"):
        return None
    try:
        return chunk_index, [deserialize_result(item) for item in payload]
    except (KeyError, ValueError, TypeError):
        return None


def _parse_round_record(line: bytes) -> tuple[int, list[InjectionResult]] | None:
    """Parse one stratified round line; None for anything torn or corrupt.

    Unlike chunks, a round's length is not fixed by the header — each
    round samples however many cells were still unresolved — so the
    integrity check is the declared length plus the CRC.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or record.get("type") != "round":
        return None
    round_index = record.get("round_index")
    if not isinstance(round_index, int) or round_index < 0:
        return None
    payload = record.get("results")
    if not isinstance(payload, list) or len(payload) != record.get("n_results"):
        return None
    encoded = json.dumps(payload, separators=(",", ":"))
    if zlib.crc32(encoded.encode("utf-8")) != record.get("crc32"):
        return None
    try:
        return round_index, [deserialize_result(item) for item in payload]
    except (KeyError, ValueError, TypeError):
        return None
