"""Simulated process address space for pointer-corruption semantics.

The paper's GPR injections frequently corrupt pointers held in registers;
whether the corrupted access segfaults or silently reads/writes the wrong
data depends on the process memory map.  This module models that map:
arrays used by the kernels are *allocated* at sparse, page-aligned virtual
addresses, and a corrupted pointer is resolved against the map —
landing outside any allocation raises
:class:`~repro.runtime.errors.SegmentationFault`, landing inside a mapped
allocation yields an aliased view of that allocation's bytes.

The layout is deliberately sparse (allocations scattered across a ~2^46
byte heap), so the vast majority of single-bit pointer flips leave the
mapped region — which is what produces the paper's segfault-dominated
GPR crash profile.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.runtime.errors import SegmentationFault

#: Page size used for alignment of simulated allocations.
PAGE_SIZE = 4096

#: Bottom of the simulated heap.
HEAP_BASE = 1 << 40

#: Size of the region allocations are scattered across.
HEAP_SPAN = (1 << 46) - (1 << 40)


@dataclass
class Allocation:
    """One mapped region backed by a live numpy array."""

    base: int
    nbytes: int
    array: np.ndarray

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.base + self.nbytes

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this allocation."""
        return self.base <= address < self.end


class AddressSpace:
    """Registry of simulated allocations with pointer resolution."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._bases: list[int] = []  # sorted allocation bases
        self._allocs: list[Allocation] = []  # parallel to _bases
        self._by_id: dict[int, Allocation] = {}

    def __len__(self) -> int:
        return len(self._allocs)

    @property
    def mapped_bytes(self) -> int:
        """Total number of mapped bytes."""
        return sum(alloc.nbytes for alloc in self._allocs)

    def ensure(self, array: np.ndarray) -> int:
        """Return the base address of ``array``, allocating on first use.

        The allocation keeps a reference to the array, both to serve
        aliased reads and to pin its ``id`` for the lifetime of this
        address space.
        """
        alloc = self._by_id.get(id(array))
        if alloc is not None:
            return alloc.base
        if not isinstance(array, np.ndarray):
            raise TypeError(f"only numpy arrays can be mapped, got {type(array)!r}")
        if not array.flags.c_contiguous:
            raise ValueError("only C-contiguous arrays can be mapped")
        nbytes = max(int(array.nbytes), 1)
        base = self._place(nbytes)
        alloc = Allocation(base=base, nbytes=nbytes, array=array)
        index = bisect.bisect_left(self._bases, base)
        self._bases.insert(index, base)
        self._allocs.insert(index, alloc)
        self._by_id[id(array)] = alloc
        return base

    def _place(self, nbytes: int) -> int:
        """Pick a random page-aligned, non-overlapping base address."""
        pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        span_pages = HEAP_SPAN // PAGE_SIZE - pages
        for _ in range(64):
            page = int(self._rng.integers(0, span_pages))
            base = HEAP_BASE + page * PAGE_SIZE
            if not self._overlaps(base, pages * PAGE_SIZE):
                return base
        raise RuntimeError("address space too crowded to place a new allocation")

    def _overlaps(self, base: int, length: int) -> bool:
        index = bisect.bisect_right(self._bases, base + length - 1)
        if index > 0:
            prev = self._allocs[index - 1]
            if prev.end > base:
                return True
        if index < len(self._allocs) and self._allocs[index].base < base + length:
            return True
        return False

    def resolve(self, address: int) -> tuple[Allocation, int]:
        """Map ``address`` to ``(allocation, byte_offset)`` or segfault."""
        index = bisect.bisect_right(self._bases, address) - 1
        if index >= 0:
            alloc = self._allocs[index]
            if alloc.contains(address):
                return alloc, address - alloc.base
        raise SegmentationFault(address)

    def byte_window(self, address: int, length: int) -> tuple[np.ndarray, int]:
        """Resolve a read/write of ``length`` bytes at ``address``.

        Returns ``(flat_uint8_view, offset)`` into the owning allocation.
        The whole window must be mapped, matching the first-fault
        behaviour of a streaming access.
        """
        alloc, offset = self.resolve(address)
        if offset + length > alloc.nbytes:
            raise SegmentationFault(address + alloc.nbytes - offset, "access crosses allocation end")
        view = alloc.array.reshape(-1).view(np.uint8)
        return view, offset
