"""The fault injector: one single-bit flip per run, AFI style.

An :class:`InjectionPlan` names the error site exactly as the paper does
(Section V-B): the register kind (GPR or FPR), the register number
(0..31), the bit (0..63) and the execution cycle at which the flip
happens.  The :class:`FaultInjector` watches kernel checkpoints, keeps the
architectural register file up to date, and fires the flip at the first
checkpoint at or after the target cycle.

For the hot-function study (paper Section V-C) a ``site_filter`` restricts
firing to checkpoints whose site name starts with a given prefix, which is
AFI's "only consider injections that hit the functions of interest".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faultinject.addrspace import AddressSpace
from repro.faultinject.registers import (
    NUM_REGISTERS,
    REGISTER_BITS,
    FlipEffect,
    LivenessModel,
    RegisterFileState,
    RegKind,
    Role,
    SlotCensus,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faultinject.registers import RegisterWindow
    from repro.runtime.context import ExecutionContext


@dataclass(frozen=True)
class InjectionPlan:
    """One planned single-bit register flip."""

    target_cycle: int
    kind: RegKind
    register: int
    bit: int

    def __post_init__(self) -> None:
        if not 0 <= self.register < NUM_REGISTERS:
            raise ValueError(f"register must be in [0, {NUM_REGISTERS}), got {self.register}")
        if not 0 <= self.bit < REGISTER_BITS:
            raise ValueError(f"bit must be in [0, {REGISTER_BITS}), got {self.bit}")
        if self.target_cycle < 0:
            raise ValueError(f"target_cycle must be >= 0, got {self.target_cycle}")


def random_plan(
    rng: np.random.Generator,
    total_cycles: int,
    kind: RegKind,
) -> InjectionPlan:
    """Draw a uniformly random error site, as the paper's AFI does."""
    if total_cycles <= 0:
        raise ValueError(f"total_cycles must be positive, got {total_cycles}")
    return InjectionPlan(
        target_cycle=int(rng.integers(0, total_cycles)),
        kind=kind,
        register=int(rng.integers(0, NUM_REGISTERS)),
        bit=int(rng.integers(0, REGISTER_BITS)),
    )


@dataclass
class InjectionRecord:
    """What actually happened when (and if) the planned flip fired."""

    plan: InjectionPlan
    fired: bool = False
    fired_cycle: int | None = None
    site: str | None = None
    binding_name: str | None = None
    role: Role | None = None
    effect: FlipEffect | None = None
    #: For site-filtered studies: True when the flip hit a register that
    #: actually belongs to the functions of interest.  Runs outside the
    #: study are still executed but excluded from its statistics.
    in_study: bool = True

    @property
    def hit_live_value(self) -> bool:
        """True when the flip corrupted live program state."""
        return self.effect is FlipEffect.APPLIED


class FaultInjector:
    """Fires one planned bit flip into the modelled register file."""

    def __init__(
        self,
        plan: InjectionPlan,
        space: Optional[AddressSpace] = None,
        rng: Optional[np.random.Generator] = None,
        liveness: Optional[LivenessModel] = None,
        site_filter: Optional[str] = None,
    ) -> None:
        self.plan = plan
        self.space = space if space is not None else AddressSpace(seed=plan.target_cycle)
        self.rng = rng if rng is not None else np.random.default_rng(plan.target_cycle)
        self.liveness = liveness if liveness is not None else LivenessModel()
        self.site_filter = site_filter
        self.regfile = RegisterFileState()
        self.record = InjectionRecord(plan)

    @property
    def observing(self) -> bool:
        """True while the injector still needs to see checkpoints."""
        return not self.record.fired

    def visit(self, ctx: "ExecutionContext", window: "RegisterWindow") -> None:
        """Checkpoint callback: update the register file, maybe fire."""
        if self.record.fired:
            return
        cycle = ctx.cycles
        for binding in window.bindings:
            backing = getattr(binding, "array", None)
            if backing is not None:
                # Map the backing memory so corrupted pointers can alias it.
                self.space.ensure(backing)
            self.regfile.write(binding, window.site, cycle)
        if cycle < self.plan.target_cycle:
            return
        if self.site_filter is not None and not window.site.startswith(self.site_filter):
            return
        self._fire(cycle, window.site)

    def _fire(self, cycle: int, site: str) -> None:
        record = self.record
        record.fired = True
        record.fired_cycle = cycle
        record.site = site
        entry = self.regfile.entry(self.plan.kind, self.plan.register)
        if self.site_filter is not None:
            # Attribute the hit to the functions of interest only when
            # the register actually holds one of their values.
            record.in_study = entry is not None and entry.site.startswith(self.site_filter)
        if entry is None:
            record.effect = FlipEffect.DEAD_EMPTY
            return
        record.binding_name = entry.binding.name
        record.role = entry.binding.role
        age = cycle - entry.written_cycle
        if age > entry.binding.effective_ttl(self.liveness):
            record.effect = FlipEffect.DEAD_STALE
            return
        # The flip itself may raise a simulated machine error
        # (SegmentationFault); record the effect before it propagates.
        record.effect = FlipEffect.APPLIED
        try:
            record.effect = entry.binding.flip(self.plan.bit, self.rng, self.space)
        except Exception:
            record.effect = FlipEffect.APPLIED
            raise


class CensusProbe:
    """A pseudo-injector that samples register-file occupancy.

    Used for calibrating the liveness model: run a clean workload with a
    ``CensusProbe`` as the context's injector and inspect the resulting
    :class:`SlotCensus`.
    """

    def __init__(self, liveness: Optional[LivenessModel] = None) -> None:
        self.liveness = liveness if liveness is not None else LivenessModel()
        self.regfile = RegisterFileState()
        self.census = SlotCensus()

    @property
    def observing(self) -> bool:
        """Census probes observe every checkpoint of the run."""
        return True

    def visit(self, ctx: "ExecutionContext", window: "RegisterWindow") -> None:
        """Record the window's bindings and sample slot occupancy."""
        cycle = ctx.cycles
        for binding in window.bindings:
            self.regfile.write(binding, window.site, cycle)
        self.regfile.sample_census(self.census, cycle, self.liveness)
