"""Architectural fault-injection framework (the paper's AFI analog)."""

from repro.faultinject.addrspace import AddressSpace, Allocation, PAGE_SIZE
from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.injector import CensusProbe, FaultInjector, InjectionPlan, InjectionRecord, random_plan
from repro.faultinject.monitor import FaultMonitor, InjectionResult, Workload
from repro.faultinject.outcomes import (
    CrashKind,
    Outcome,
    OutcomeCounts,
    RunningRates,
    classify_exception,
    wilson_interval,
)
from repro.faultinject.registers import (
    NUM_REGISTERS,
    REGISTER_BITS,
    FlipEffect,
    LivenessModel,
    RegisterFileState,
    RegisterWindow,
    RegKind,
    Role,
    SlotCensus,
    flip_bit64,
    flip_float64_bit,
    slot_for,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "FaultMonitor",
    "InjectionResult",
    "Workload",
    "CrashKind",
    "Outcome",
    "OutcomeCounts",
    "RunningRates",
    "classify_exception",
    "wilson_interval",
    "AddressSpace",
    "Allocation",
    "PAGE_SIZE",
    "FaultInjector",
    "InjectionPlan",
    "InjectionRecord",
    "CensusProbe",
    "random_plan",
    "NUM_REGISTERS",
    "REGISTER_BITS",
    "FlipEffect",
    "LivenessModel",
    "RegisterFileState",
    "RegisterWindow",
    "RegKind",
    "Role",
    "SlotCensus",
    "flip_bit64",
    "flip_float64_bit",
    "slot_for",
]
