"""Wall-clock watchdog: detect *real* stalls, not just simulated ones.

The simulated machine already models the paper's Hang outcome with a
cycle budget (:class:`~repro.runtime.errors.HangDetected`), but that
only fires when the workload keeps calling ``tick``.  A genuinely hung
injection — corrupted state that parks the program in a blocking call,
an I/O wait, or a pathological numpy path — never ticks again, so the
cycle watchdog can never see it.  This module adds the missing layer:

* a **per-injection soft deadline**: the monitor runs the workload on a
  watched thread and joins it with a wall-clock timeout.  If the thread
  is still alive at the deadline the run is classified
  ``Outcome.HANG`` / ``HangKind.WATCHDOG`` and the campaign moves on
  (the abandoned daemon thread is left to drain; its result, if it ever
  arrives, is discarded).
* a **per-chunk hard deadline**: the parent bounds how long it waits
  for a worker chunk before treating the worker as lost and entering
  the retry/degrade path (see :mod:`repro.faultinject.parallel`).

Deadlines are derived from a golden-run calibration multiplier
(:meth:`WatchdogPolicy.from_golden`): a clean run takes ``wall_s``
seconds, so any injected run still going after ``soft_factor *
wall_s`` seconds is declared hung — the wall-clock analog of the cycle
watchdog's ``hang_factor``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


class WatchdogExpired(Exception):
    """A watched call exceeded its wall-clock deadline.

    Raised by :func:`call_with_deadline` in place of the workload's
    return value; the fault monitor classifies it as a Hang with
    ``HangKind.WATCHDOG`` (a real stall), distinct from the simulated
    cycle-budget :class:`~repro.runtime.errors.HangDetected` path.
    """

    def __init__(self, elapsed_s: float, deadline_s: float) -> None:
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        super().__init__(
            f"wall-clock watchdog expired: {elapsed_s:.3f}s > deadline {deadline_s:.3f}s"
        )


#: Sentinel distinguishing "thread produced nothing yet" from None results.
_PENDING = object()


def call_with_deadline(fn, deadline_s: float | None):
    """Run ``fn()`` and return its result, bounded by ``deadline_s`` seconds.

    With ``deadline_s`` None the call is direct — zero overhead, no
    thread.  Otherwise ``fn`` runs on a daemon thread that the caller
    joins with the deadline as timeout; on expiry a
    :class:`WatchdogExpired` is raised and the thread is abandoned
    (daemonized, so it cannot block interpreter exit).  Exceptions from
    ``fn`` propagate unchanged, so classification of crashes and
    simulated hangs is identical with or without the watchdog.
    """
    if deadline_s is None:
        return fn()
    box: list = [_PENDING, None]  # [result, exception]

    def target() -> None:
        try:
            box[0] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            box[1] = exc

    start = time.monotonic()
    thread = threading.Thread(target=target, name="repro-watchdog-run", daemon=True)
    thread.start()
    thread.join(deadline_s)
    if thread.is_alive():
        raise WatchdogExpired(time.monotonic() - start, deadline_s)
    if box[1] is not None:
        raise box[1]
    return box[0]


@dataclass(frozen=True)
class WatchdogPolicy:
    """Wall-clock deadlines for one campaign.

    ``soft_deadline_s`` bounds a single injected run (enforced inside
    the fault monitor); ``hard_deadline_s`` is the *per-injection*
    budget the parent multiplies by a chunk's length to bound how long
    it waits for that chunk before declaring the worker lost.  Either
    may be None to disable that layer.  The policy is a frozen
    dataclass of floats, so it pickles to workers with the campaign
    config.
    """

    soft_deadline_s: float | None = None
    hard_deadline_s: float | None = None

    #: Default calibration multiplier: an injected run allowed this many
    #: times the golden run's wall clock before being declared hung.
    #: Generous on purpose — injected runs legitimately run longer than
    #: golden (the simulated cycle watchdog allows hang_factor ~6x), and
    #: a false HANG corrupts campaign statistics while a late one only
    #: wastes wall clock.
    DEFAULT_SOFT_FACTOR = 25.0

    #: Hard deadlines get extra slack on top of soft: the chunk budget
    #: must absorb worker startup, golden-run rebuild and queueing.
    DEFAULT_HARD_FACTOR = 4.0

    #: Never calibrate below this floor — tiny golden runs (milliseconds)
    #: would otherwise produce deadlines inside scheduler jitter.
    MIN_DEADLINE_S = 0.25

    @classmethod
    def from_golden(
        cls,
        golden_wall_s: float,
        soft_factor: float = DEFAULT_SOFT_FACTOR,
        hard_factor: float = DEFAULT_HARD_FACTOR,
        floor_s: float = MIN_DEADLINE_S,
    ) -> "WatchdogPolicy":
        """Derive deadlines from a measured clean-run wall time."""
        if golden_wall_s < 0:
            raise ValueError(f"golden_wall_s must be >= 0, got {golden_wall_s}")
        soft = max(floor_s, golden_wall_s * soft_factor)
        return cls(soft_deadline_s=soft, hard_deadline_s=soft * hard_factor)

    def chunk_deadline(self, n_items: int) -> float | None:
        """The parent's wait budget for a chunk of ``n_items`` injections."""
        if self.hard_deadline_s is None:
            return None
        return self.hard_deadline_s * max(1, n_items)
