"""Adaptive campaign planning: stratified, convergence-stopped sampling.

The paper's resiliency figures come from brute-force uniform injection:
every error site is drawn uniformly at random and every cell runs a
fixed injection count.  Rare outcome classes (SDC, HANG) therefore need
disproportionately many draws to resolve.  This module multiplies every
per-injection speedup by reducing the *number* of injections instead:

* the uniform error-site space is **stratified** over
  (register-class x bit-octet x resume-boundary) cells, each a product
  of index ranges with an exactly known population weight;
* sampling proceeds in **rounds**: every still-unresolved cell draws a
  fixed number of plans per round from a deterministic per-(round,
  cell) seed, and a cell stops as soon as the widest Wilson confidence
  interval across its outcome rates drops below ``--ci-width``;
* campaign-level rates are reported both **raw** (what was observed,
  biased toward oversampled strata) and **Horvitz-Thompson reweighted**
  (each cell's rate scaled by its population weight), so stratified
  campaigns stay comparable to the paper's uniform figures.

Uniform mode is untouched: ``CampaignConfig(sampling="uniform")`` —
the default — draws plans byte-identically to every previous release,
and that invariant is pinned by a test.  See ``docs/sampling.md`` for
the estimator math and a worked example.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import telemetry
from repro.analysis.convergence import wilson_width
from repro.faultinject.injector import InjectionPlan
from repro.faultinject.journal import (
    CampaignJournal,
    JournalError,
    config_fingerprint,
    load_journal,
    require_sampling_mode,
)
from repro.faultinject.outcomes import Outcome, OutcomeCounts
from repro.faultinject.parallel import (
    execute_plans_parallel,
    fast_forward_for,
    group_plan_indices,
    resolve_workers,
)
from repro.faultinject.registers import NUM_REGISTERS, REGISTER_BITS, RegKind
from repro.observe import events as observe_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faultinject.campaign import CampaignConfig, CampaignResult
    from repro.faultinject.monitor import InjectionResult, Workload
    from repro.faultinject.parallel import WorkloadSpec

#: Recognized ``CampaignConfig.sampling`` values.
SAMPLING_MODES = ("uniform", "stratified")

#: Default stratification grid: (register classes, bit octets, max
#: cycle strata).  Register classes and bit octets must divide the
#: register/bit counts; cycle strata are either the golden run's frame
#: boundaries (capped at the grid value) or equal-width cycle buckets
#: when no snapshot tape is available.
DEFAULT_STRATA = (4, 8, 8)


# ---------------------------------------------------------------------------
# Strata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StratumCell:
    """One stratum: a product of half-open index ranges.

    ``weight`` is the cell's exact share of the uniform plan space —
    the probability that one uniformly drawn plan lands in this cell —
    so the weights of a full stratification sum to 1.
    """

    index: int
    registers: tuple[int, int]  # [lo, hi)
    bits: tuple[int, int]  # [lo, hi)
    cycles: tuple[int, int]  # [lo, hi)
    weight: float

    def describe(self) -> str:
        """Compact human-readable cell label."""
        return (
            f"r{self.registers[0]}-{self.registers[1] - 1}/"
            f"b{self.bits[0]}-{self.bits[1] - 1}/"
            f"c{self.cycles[0]}-{self.cycles[1] - 1}"
        )


def uniform_cycle_edges(total_cycles: int, n_strata: int) -> list[int]:
    """Equal-width cycle stratum edges (the no-tape fallback)."""
    if total_cycles <= 0:
        raise ValueError(f"total_cycles must be positive, got {total_cycles}")
    n_strata = max(1, min(n_strata, total_cycles))
    edges = np.linspace(0, total_cycles, n_strata + 1).astype(int)
    return sorted(set(int(edge) for edge in edges))


def boundary_cycle_edges(
    boundary_cycles: Sequence[int], total_cycles: int, max_strata: int
) -> list[int]:
    """Cycle stratum edges derived from golden frame boundaries.

    Plans within one stratum share (or are near) the same fast-forward
    resume boundary, which is exactly the grouping the boundary fan-out
    scheduler amortizes over.  When the tape has more boundaries than
    ``max_strata``, an evenly spaced subset of edges is kept so the
    stratification stays coarse enough to resolve.
    """
    interior = sorted({int(c) for c in boundary_cycles if 0 < int(c) < total_cycles})
    edges = [0, *interior, total_cycles]
    if len(edges) - 1 <= max_strata:
        return edges
    keep = np.linspace(0, len(edges) - 1, max_strata + 1).astype(int)
    return [edges[int(i)] for i in sorted(set(keep.tolist()))]


@dataclass(frozen=True)
class Stratification:
    """A full partition of the uniform plan space into strata cells."""

    kind: RegKind
    total_cycles: int
    register_classes: int
    bit_octets: int
    cycle_edges: tuple[int, ...]
    cells: tuple[StratumCell, ...] = field(default=())

    @classmethod
    def build(
        cls,
        kind: RegKind,
        total_cycles: int,
        cycle_edges: Sequence[int] | None = None,
        register_classes: int = DEFAULT_STRATA[0],
        bit_octets: int = DEFAULT_STRATA[1],
    ) -> "Stratification":
        """Build the cell grid; cells partition the plan space exactly."""
        if total_cycles <= 0:
            raise ValueError(f"total_cycles must be positive, got {total_cycles}")
        if register_classes < 1 or NUM_REGISTERS % register_classes:
            raise ValueError(
                f"register_classes must divide {NUM_REGISTERS}, got {register_classes}"
            )
        if bit_octets < 1 or REGISTER_BITS % bit_octets:
            raise ValueError(f"bit_octets must divide {REGISTER_BITS}, got {bit_octets}")
        if cycle_edges is None:
            cycle_edges = uniform_cycle_edges(total_cycles, DEFAULT_STRATA[2])
        edges = tuple(int(edge) for edge in cycle_edges)
        if len(edges) < 2 or edges[0] != 0 or edges[-1] != total_cycles:
            raise ValueError(
                f"cycle_edges must run from 0 to total_cycles={total_cycles}, got {edges!r}"
            )
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"cycle_edges must be strictly increasing, got {edges!r}")
        reg_span = NUM_REGISTERS // register_classes
        bit_span = REGISTER_BITS // bit_octets
        cells: list[StratumCell] = []
        for reg_class in range(register_classes):
            for octet in range(bit_octets):
                for lo, hi in zip(edges, edges[1:]):
                    cells.append(
                        StratumCell(
                            index=len(cells),
                            registers=(reg_class * reg_span, (reg_class + 1) * reg_span),
                            bits=(octet * bit_span, (octet + 1) * bit_span),
                            cycles=(lo, hi),
                            weight=(reg_span / NUM_REGISTERS)
                            * (bit_span / REGISTER_BITS)
                            * ((hi - lo) / total_cycles),
                        )
                    )
        return cls(
            kind=kind,
            total_cycles=total_cycles,
            register_classes=register_classes,
            bit_octets=bit_octets,
            cycle_edges=edges,
            cells=tuple(cells),
        )

    def cell_index_for(self, plan: InjectionPlan) -> int:
        """The cell containing one plan (cells partition the space)."""
        reg_span = NUM_REGISTERS // self.register_classes
        bit_span = REGISTER_BITS // self.bit_octets
        cycle_stratum = bisect.bisect_right(self.cycle_edges, plan.target_cycle) - 1
        cycle_stratum = min(max(cycle_stratum, 0), len(self.cycle_edges) - 2)
        n_cycle = len(self.cycle_edges) - 1
        return (
            (plan.register // reg_span) * self.bit_octets + plan.bit // bit_span
        ) * n_cycle + cycle_stratum

    def to_dict(self) -> dict:
        """JSON-stable description (journal header, store records)."""
        return {
            "kind": self.kind.value,
            "total_cycles": self.total_cycles,
            "register_classes": self.register_classes,
            "bit_octets": self.bit_octets,
            "cycle_edges": list(self.cycle_edges),
        }


def draw_cell_plans(
    cell: StratumCell, kind: RegKind, n: int, seed: int, round_index: int
) -> list[InjectionPlan]:
    """Draw ``n`` uniform plans *within* one cell, deterministically.

    The RNG derives from ``(seed, round, cell)`` alone, so any round of
    any cell can be re-drawn independently — the property resume relies
    on — and no draw ever consumes another cell's stream.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(round_index, cell.index))
    )
    return [
        InjectionPlan(
            target_cycle=int(rng.integers(cell.cycles[0], cell.cycles[1])),
            kind=kind,
            register=int(rng.integers(cell.registers[0], cell.registers[1])),
            bit=int(rng.integers(cell.bits[0], cell.bits[1])),
        )
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Estimators
# ---------------------------------------------------------------------------


def reweighted_rates(
    weights: Sequence[float], counts: Sequence[OutcomeCounts]
) -> dict[str, float]:
    """Horvitz-Thompson (stratified) estimate of campaign outcome rates.

    Each sampled cell contributes its within-cell rate scaled by its
    population weight: ``p_hat = sum_c W_c * p_hat_c``.  Cells without
    draws carry no information and are excluded, with the remaining
    weights renormalized (when every cell was sampled the weights sum
    to 1 and the renormalization is a float-hygiene no-op).  With equal
    weights and equal per-cell draws this reduces exactly to the plain
    pooled rate — a property the test suite pins.
    """
    if len(weights) != len(counts):
        raise ValueError(
            f"got {len(weights)} weights for {len(counts)} cell counts"
        )
    sampled = [(w, c) for w, c in zip(weights, counts) if c.total > 0]
    if not sampled:
        return {outcome.value: 0.0 for outcome in Outcome}
    total_weight = sum(w for w, _ in sampled)
    return {
        outcome.value: sum(w * c.rate(outcome) for w, c in sampled) / total_weight
        for outcome in Outcome
    }


def reweighted_variance(
    weights: Sequence[float], counts: Sequence[OutcomeCounts]
) -> dict[str, float]:
    """Variance of the Horvitz-Thompson estimate per outcome class.

    The standard stratified-sampling variance ``sum_c W_c^2 *
    p_c(1-p_c)/n_c`` with the plug-in within-cell rates; cells without
    draws are excluded exactly as in :func:`reweighted_rates`.
    """
    sampled = [(w, c) for w, c in zip(weights, counts) if c.total > 0]
    if not sampled:
        return {outcome.value: 0.0 for outcome in Outcome}
    total_weight = sum(w for w, _ in sampled)
    out = {}
    for outcome in Outcome:
        variance = 0.0
        for w, c in sampled:
            p = c.rate(outcome)
            variance = variance + (w / total_weight) ** 2 * p * (1.0 - p) / c.total
        out[outcome.value] = variance
    return out


def cell_max_ci_width(counts: OutcomeCounts, z: float = 1.96) -> float:
    """Widest Wilson CI across a cell's outcome classes (1.0 at n=0).

    A cell has *converged* when every outcome rate is resolved, so the
    convergence check uses the worst (widest) interval.
    """
    if counts.total == 0:
        return 1.0
    per_outcome = {
        Outcome.MASKED: counts.masked,
        Outcome.SDC: counts.sdc,
        Outcome.CRASH: counts.crash,
        Outcome.HANG: counts.hang,
    }
    return max(
        wilson_width(successes, counts.total, z) for successes in per_outcome.values()
    )


# ---------------------------------------------------------------------------
# Campaign summary
# ---------------------------------------------------------------------------


@dataclass
class CellStats:
    """What one stratum accumulated over the campaign."""

    counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    draws: int = 0
    #: Round index after which the cell's widest Wilson CI dropped below
    #: the target width; ``None`` while (or if never) unresolved.
    converged_round: int | None = None


@dataclass
class StratifiedSummary:
    """Everything the stratified planner decided and measured.

    Attached to :class:`~repro.faultinject.campaign.CampaignResult` as
    ``result.sampling`` so reports can show raw next to reweighted
    rates and the per-cell CI table.
    """

    stratification: Stratification
    cells: list[CellStats]
    ci_width: float
    rounds: int
    total_draws: int
    budget_exhausted: bool

    @property
    def cells_converged(self) -> int:
        return sum(1 for stats in self.cells if stats.converged_round is not None)

    def raw_rates(self) -> dict[str, float]:
        """Pooled observed rates (biased toward oversampled strata)."""
        pooled = OutcomeCounts()
        for stats in self.cells:
            pooled.masked += stats.counts.masked
            pooled.sdc += stats.counts.sdc
            pooled.crash_segv += stats.counts.crash_segv
            pooled.crash_abort += stats.counts.crash_abort
            pooled.hang += stats.counts.hang
        return pooled.rates()

    def ht_rates(self) -> dict[str, float]:
        """Horvitz-Thompson reweighted campaign rates."""
        return reweighted_rates(
            [cell.weight for cell in self.stratification.cells],
            [stats.counts for stats in self.cells],
        )

    def ht_variance(self) -> dict[str, float]:
        return reweighted_variance(
            [cell.weight for cell in self.stratification.cells],
            [stats.counts for stats in self.cells],
        )

    def uniform_equivalent_draws(self) -> int:
        """Draws a *uniform* campaign needs to match this precision.

        Uniform sampling hits cell ``c`` with probability ``W_c``, so
        giving it the ``n_c`` draws it took to converge requires
        ``n_c / W_c`` total draws in expectation; the binding (most
        undersampled-by-uniform) cell sets the campaign total.
        """
        needed = 0
        for cell, stats in zip(self.stratification.cells, self.cells):
            if stats.draws > 0:
                needed = max(needed, math.ceil(stats.draws / cell.weight))
        return needed

    def draws_saved(self) -> int:
        """Injections saved vs the uniform campaign of equal precision."""
        return max(0, self.uniform_equivalent_draws() - self.total_draws)

    def to_dict(self) -> dict:
        """JSON-stable summary for stored records and ``--out`` files."""
        cell_rows = []
        for cell, stats in zip(self.stratification.cells, self.cells):
            cell_rows.append(
                {
                    "cell": cell.index,
                    "registers": list(cell.registers),
                    "bits": list(cell.bits),
                    "cycles": list(cell.cycles),
                    "weight": round(cell.weight, 9),
                    "draws": stats.draws,
                    "counts": {
                        "masked": stats.counts.masked,
                        "sdc": stats.counts.sdc,
                        "crash_segv": stats.counts.crash_segv,
                        "crash_abort": stats.counts.crash_abort,
                        "hang": stats.counts.hang,
                    },
                    "max_ci_width": round(cell_max_ci_width(stats.counts), 6),
                    "converged_round": stats.converged_round,
                }
            )
        return {
            "mode": "stratified",
            "stratification": self.stratification.to_dict(),
            "ci_width": self.ci_width,
            "rounds": self.rounds,
            "draws": self.total_draws,
            "uniform_equivalent_draws": self.uniform_equivalent_draws(),
            "draws_saved": self.draws_saved(),
            "budget_exhausted": self.budget_exhausted,
            "cells_converged": self.cells_converged,
            "raw_rates": {k: round(v, 6) for k, v in self.raw_rates().items()},
            "ht_rates": {k: round(v, 6) for k, v in self.ht_rates().items()},
            "cells": cell_rows,
        }


# ---------------------------------------------------------------------------
# The adaptive planner / driver
# ---------------------------------------------------------------------------


class _StratifiedState:
    """Mutable round-by-round campaign state (shared by replay and live).

    Keeping one update path for journal-replayed and freshly executed
    rounds is what makes an interrupted-then-resumed stratified campaign
    bit-identical to an uninterrupted one.
    """

    def __init__(self, stratification: Stratification, config: "CampaignConfig") -> None:
        self.stratification = stratification
        self.config = config
        self.cells = [CellStats() for _ in stratification.cells]
        self.results: list["InjectionResult"] = []
        self.rounds_done = 0
        self.budget_exhausted = False

    @property
    def total_draws(self) -> int:
        return len(self.results)

    def unconverged(self) -> list[int]:
        return [
            index
            for index, stats in enumerate(self.cells)
            if stats.converged_round is None
        ]

    def budget_left(self) -> int | None:
        if self.config.max_injections is None:
            return None
        return max(0, self.config.max_injections - self.total_draws)

    def absorb_round(self, results: list["InjectionResult"]) -> None:
        """Fold one round's ordered results into the cell statistics."""
        for result in results:
            stats = self.cells[self.stratification.cell_index_for(result.plan)]
            stats.counts.add(result.outcome, result.crash_kind)
            stats.draws += 1
        self.results.extend(results)
        newly_converged: list[int] = []
        for index, stats in enumerate(self.cells):
            if (
                stats.converged_round is None
                and stats.draws > 0
                and cell_max_ci_width(stats.counts) <= self.config.ci_width
            ):
                stats.converged_round = self.rounds_done
                newly_converged.append(index)
        self.rounds_done += 1
        if observe_events.enabled():
            # Emitted from the one shared update path, so a journal
            # replay reconstructs exactly the live run's round events.
            self._emit_round(newly_converged)

    def _emit_round(self, newly_converged: list[int]) -> None:
        for cell_index in newly_converged:
            stats = self.cells[cell_index]
            observe_events.emit(
                "stratum_converged",
                cell=cell_index,
                round=stats.converged_round,
                draws=stats.draws,
                ci_width=round(cell_max_ci_width(stats.counts), 6),
            )
        totals = {"mask": 0, "sdc": 0, "crash": 0, "hang": 0}
        widths: list[float] = []
        open_widths: list[float] = []
        for stats in self.cells:
            totals["mask"] += stats.counts.masked
            totals["sdc"] += stats.counts.sdc
            totals["crash"] += stats.counts.crash
            totals["hang"] += stats.counts.hang
            if stats.draws == 0:
                continue
            width = round(cell_max_ci_width(stats.counts), 6)
            widths.append(width)
            if stats.converged_round is None:
                open_widths.append(width)
        converged = sum(
            1 for stats in self.cells if stats.converged_round is not None
        )
        observe_events.emit(
            "round_done",
            round=self.rounds_done - 1,
            done=self.total_draws,
            outcomes_total=totals,
            cells_total=len(self.cells),
            cells_converged=converged,
            max_ci_width=max(open_widths) if open_widths else 0.0,
            cell_ci_widths=widths,
        )

    def plan_round(self) -> list[InjectionPlan]:
        """Draw the next round's plans for every unresolved cell.

        A pure function of ``(seed, rounds_done, unconverged cells,
        remaining budget)`` — all of which replay identically from the
        journal — drawn in ascending cell order so the budget truncates
        deterministically.
        """
        budget = self.budget_left()
        plans: list[InjectionPlan] = []
        for cell_index in self.unconverged():
            k = self.config.round_size
            if budget is not None:
                k = min(k, budget - len(plans))
            if k <= 0:
                self.budget_exhausted = True
                break
            plans.extend(
                draw_cell_plans(
                    self.stratification.cells[cell_index],
                    self.config.kind,
                    k,
                    self.config.seed,
                    self.rounds_done,
                )
            )
        return plans

    def summary(self) -> StratifiedSummary:
        return StratifiedSummary(
            stratification=self.stratification,
            cells=self.cells,
            ci_width=self.config.ci_width,
            rounds=self.rounds_done,
            total_draws=self.total_draws,
            budget_exhausted=self.budget_exhausted,
        )


def build_stratification(
    config: "CampaignConfig", golden_cycles: int, fast_forward=None
) -> Stratification:
    """The campaign's cell grid from its config and golden run.

    Cycle strata follow the snapshot tape's frame boundaries when a
    fast-forward handle exists (so strata align with the boundary
    fan-out scheduler's groups), else equal-width cycle buckets.
    """
    register_classes, bit_octets, max_cycle = config.strata
    if max_cycle < 1:
        raise ValueError(f"strata cycle count must be >= 1, got {max_cycle}")
    tape = getattr(fast_forward, "tape", None)
    boundary_cycles = getattr(tape, "boundary_cycles", None)
    if boundary_cycles:
        edges = boundary_cycle_edges(boundary_cycles, golden_cycles, max_cycle)
    else:
        edges = uniform_cycle_edges(golden_cycles, max_cycle)
    return Stratification.build(
        config.kind,
        golden_cycles,
        cycle_edges=edges,
        register_classes=register_classes,
        bit_octets=bit_octets,
    )


def _validate_stratified_config(config: "CampaignConfig") -> None:
    # A zero width would never converge; the campaign would only stop at
    # the max_injections budget, so require a real target instead.
    if not 0.0 < config.ci_width <= 1.0:
        raise ValueError(f"ci_width must be in (0, 1], got {config.ci_width}")
    if config.round_size < 1:
        raise ValueError(f"round_size must be >= 1, got {config.round_size}")
    if config.max_injections is not None and config.max_injections < 1:
        raise ValueError(
            f"max_injections must be >= 1 (or None), got {config.max_injections}"
        )


def _prepare_stratified_journal(
    config: "CampaignConfig",
    stratification: Stratification,
    journal_path: Path,
    resume: bool,
) -> tuple[CampaignJournal, list[list["InjectionResult"]], bool]:
    """Open (or reopen) a round-granularity (schema v3) journal.

    Returns ``(journal, replayable_rounds, discarded_partial)``.  Only
    the contiguous prefix of journaled rounds replays: round ``k``'s
    draws depend on the statistics of rounds ``< k``, so a gap (one
    corrupt mid-file record) invalidates everything after it — those
    rounds simply re-run and are re-appended.
    """
    journal_path = Path(journal_path)
    if not resume:
        journal = CampaignJournal.create(
            journal_path, config, stratification=stratification.to_dict()
        )
        return journal, [], False
    state = load_journal(journal_path)
    require_sampling_mode(state.fingerprint, config, journal_path)
    fingerprint = config_fingerprint(config)
    if state.fingerprint != fingerprint:
        raise JournalError(
            f"journal {journal_path} was written by a different campaign "
            f"configuration (journal {state.fingerprint} vs requested "
            f"{fingerprint}); refusing to mix results"
        )
    if state.stratification != stratification.to_dict():
        raise JournalError(
            f"journal {journal_path} records a different stratification "
            f"({state.stratification!r} vs {stratification.to_dict()!r}); "
            f"the golden run or strata grid drifted since it was written"
        )
    replayable: list[list["InjectionResult"]] = []
    while len(replayable) in state.rounds:
        replayable.append(state.rounds[len(replayable)])
    journal = CampaignJournal.append_to(journal_path, chunks_written=len(replayable))
    return journal, replayable, state.discarded_partial


def run_stratified_campaign(
    workload: "Workload",
    golden_output: np.ndarray,
    golden_cycles: int,
    config: "CampaignConfig",
    spec: "WorkloadSpec | None" = None,
    journal_path: Path | None = None,
    resume: bool = False,
) -> "CampaignResult":
    """Run one adaptive, stratified, convergence-stopped campaign.

    Fully deterministic given ``config.seed``: every round's draws
    derive from ``(seed, round, cell)``, every run's injector RNG from
    ``(seed, global draw index)``, and the set of cells sampled each
    round is a pure function of the accumulated statistics — so a
    journaled campaign interrupted at any round boundary (or killed
    mid-round) resumes bit-identically, and worker count never changes
    results.  Rounds reuse the boundary fan-out scheduler: each round's
    plans are grouped by their fast-forward resume boundary exactly as
    a uniform batched campaign's would be.
    """
    # Lazy import: campaign.run_campaign dispatches into this module, so
    # a module-level import either way would be circular.
    from repro.faultinject.campaign import assemble_campaign

    _validate_stratified_config(config)
    ff = fast_forward_for(spec, config)
    stratification = build_stratification(config, golden_cycles, fast_forward=ff)
    state = _StratifiedState(stratification, config)

    batching = (
        ff is not None
        and config.boundary_batch
        and spec is not None
        and hasattr(spec, "build_fast_forward")
    )

    observe_events.emit(
        "campaign_start",
        mode="stratified",
        kind=config.kind.value,
        total=None,
        workers=config.workers,
        seed=config.seed,
        journaled=journal_path is not None,
        resume=resume,
        cells=len(stratification.cells),
        ci_width=config.ci_width,
    )
    heartbeat = (
        telemetry.Heartbeat(
            0,
            label=f"campaign {config.kind.value} (stratified)",
            interval_s=telemetry.resolve_heartbeat_interval(config.heartbeat_interval),
            quiet=config.quiet or not telemetry.enabled(),
        )
        if telemetry.enabled() or observe_events.enabled()
        else None
    )
    annotate = heartbeat.annotate if heartbeat is not None else None
    if annotate is not None:
        annotate(
            f"stratified sampling on: {len(stratification.cells)} cells, "
            f"ci-width target {config.ci_width:g}"
        )

    journal: CampaignJournal | None = None
    replayed: list[list["InjectionResult"]] = []
    if journal_path is not None:
        journal, replayed, partial = _prepare_stratified_journal(
            config, stratification, journal_path, resume
        )
        for round_results in replayed:
            state.absorb_round(round_results)
        if resume:
            observe_events.emit(
                "journal_resume",
                replayed=len(replayed),
                units=None,
                injections=state.total_draws,
                discarded_partial=partial,
            )
            if annotate is not None:
                note = f"resumed {len(replayed)} journaled round(s)"
                if partial:
                    note += " (discarded one torn record)"
                annotate(note)

    try:
        with telemetry.span("campaign.execute"):
            while True:
                unconverged = state.unconverged()
                if not unconverged:
                    break
                budget = state.budget_left()
                if budget is not None and budget <= 0:
                    state.budget_exhausted = True
                    break
                with telemetry.span("campaign.sampling.draw_round"):
                    plans = state.plan_round()
                if not plans:
                    break
                groups = (
                    group_plan_indices(ff.boundary_index_for, plans)
                    if batching
                    else None
                )
                workers = resolve_workers(
                    config.workers,
                    max_useful=min(len(plans), len(groups)) if groups else len(plans),
                )
                results = execute_plans_parallel(
                    spec,
                    config,
                    plans,
                    workers,
                    local_state=(workload, golden_output, golden_cycles),
                    groups=groups,
                    annotate=annotate,
                    index_base=state.total_draws,
                )
                if journal is not None:
                    # Durability first: a round only counts once fsync'd.
                    # May raise CampaignInterrupted (abort-after hook).
                    journal.append_round(state.rounds_done, results)
                state.absorb_round(results)
                telemetry.counter_inc("campaign.sampling.rounds")
                if annotate is not None:
                    converged = sum(
                        1 for s in state.cells if s.converged_round is not None
                    )
                    annotate(
                        f"round {state.rounds_done}: {state.total_draws} draws, "
                        f"{converged}/{len(state.cells)} cells converged"
                    )
    finally:
        if journal is not None:
            journal.close()

    summary = state.summary()
    telemetry.counter_inc("campaign.sampling.cells_converged", summary.cells_converged)
    telemetry.counter_inc("campaign.sampling.draws_saved", summary.draws_saved())
    with telemetry.span("campaign.assemble"):
        campaign = assemble_campaign(config, state.results)
    campaign.sampling = summary
    observe_events.emit(
        "campaign_finish",
        total=campaign.counts.total,
        outcomes={
            "mask": campaign.counts.masked,
            "sdc": campaign.counts.sdc,
            "crash": campaign.counts.crash,
            "hang": campaign.counts.hang,
        },
        rounds=summary.rounds,
        cells_converged=summary.cells_converged,
    )
    return campaign
