"""Campaign progress heartbeats: injections/sec, ETA, cache hit rate.

A :class:`Heartbeat` prints at most one line per ``interval_s`` to
``stream`` (stderr by default, so machine-readable stdout output stays
clean), plus a final line when the campaign completes::

    [campaign gpr] 120/400 injections | 5.3 inj/s | ETA 53s | golden-cache 7/8 hits

Heartbeats are created by the campaign engine only while telemetry is
enabled, and only observe — they never touch campaign state.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class Heartbeat:
    """Rate-limited progress reporting for a fixed-size unit of work."""

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        interval_s: float = 2.0,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.total = total
        self.label = label
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.start = clock()
        self._last_emit = float("-inf")
        self.lines_emitted = 0
        self.note = ""

    def annotate(self, note: str) -> None:
        """Attach a status note (resume/retry/degradation events).

        The note prints immediately on its own line — these events are
        rare and operators should see them when they happen — and is
        appended to subsequent progress lines until replaced.
        """
        self.note = note
        print(f"[{self.label}] {note}", file=self.stream)
        self.lines_emitted += 1

    def _cache_suffix(self) -> str:
        from repro.summarize.golden import golden_cache_stats

        stats = golden_cache_stats()
        lookups = stats.hits + stats.computes
        if lookups == 0:
            return ""
        return f" | golden-cache {stats.hits}/{lookups} hits"

    def update(self, done: int) -> None:
        """Report ``done`` completed units; prints when due."""
        now = self.clock()
        final = done >= self.total
        if not final and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        elapsed = max(now - self.start, 1e-9)
        rate = done / elapsed
        if final or rate <= 0:
            eta = "0s"
        else:
            eta = _format_eta((self.total - done) / rate)
        note_suffix = f" | {self.note}" if self.note else ""
        print(
            f"[{self.label}] {done}/{self.total} injections | "
            f"{rate:.1f} inj/s | ETA {eta}{self._cache_suffix()}{note_suffix}",
            file=self.stream,
        )
        self.lines_emitted += 1
