"""Campaign progress heartbeats: injections/sec, ETA, cache hit rate.

A :class:`Heartbeat` prints at most one line per ``interval_s`` to
``stream`` (stderr by default, so machine-readable stdout output stays
clean), plus a final line when the campaign completes::

    [campaign gpr] 120/400 injections | 5.3 inj/s | ETA 53s | golden-cache 7/8 hits

The cadence is configurable: ``--heartbeat-interval`` on the CLI or the
``REPRO_HEARTBEAT_INTERVAL`` environment variable (validated the same
way as ``REPRO_WORKERS`` — a bad value raises a ValueError naming its
source).  ``quiet=True`` suppresses the stderr lines entirely while
still publishing ``heartbeat``/``note`` events on the observe event bus
(see :mod:`repro.observe.events`), so ``--quiet`` campaigns remain
fully watchable through ``--status``.

Heartbeats are created by the campaign engine only while telemetry or
an observe bus is enabled, and only observe — they never touch campaign
state.
"""

from __future__ import annotations

import math
import os
import sys
import time
from typing import Callable, TextIO

from repro.observe import events as observe_events

#: Environment override for the heartbeat cadence (seconds).
HEARTBEAT_INTERVAL_ENV = "REPRO_HEARTBEAT_INTERVAL"

#: Cadence used when neither the CLI flag nor the env var is set.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


def _parse_interval(raw: object, source: str) -> float:
    """Validate one cadence value, naming ``source`` in errors."""
    try:
        value = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a number of seconds, got {raw!r}"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise ValueError(
            f"{source} must be a positive finite number of seconds, got {raw!r}"
        )
    return value


def resolve_heartbeat_interval(requested: float | None = None) -> float:
    """The heartbeat cadence: explicit value, else env var, else 2.0 s."""
    if requested is not None:
        return _parse_interval(requested, "heartbeat interval")
    raw = os.environ.get(HEARTBEAT_INTERVAL_ENV)
    if raw is None or raw == "":
        return DEFAULT_HEARTBEAT_INTERVAL
    return _parse_interval(raw, HEARTBEAT_INTERVAL_ENV)


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class Heartbeat:
    """Rate-limited progress reporting for a fixed-size unit of work."""

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        interval_s: float = DEFAULT_HEARTBEAT_INTERVAL,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.perf_counter,
        quiet: bool = False,
    ) -> None:
        self.total = total
        self.label = label
        self.interval_s = _parse_interval(interval_s, "heartbeat interval")
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.quiet = quiet
        self.start = clock()
        self._last_emit = float("-inf")
        self.lines_emitted = 0
        self.note = ""

    def annotate(self, note: str) -> None:
        """Attach a status note (resume/retry/degradation events).

        The note prints immediately on its own line — these events are
        rare and operators should see them when they happen — and is
        appended to subsequent progress lines until replaced.  It is
        also published as a ``note`` event for bus subscribers.
        """
        self.note = note
        observe_events.emit("note", label=self.label, note=note)
        if not self.quiet:
            print(f"[{self.label}] {note}", file=self.stream)
            self.lines_emitted += 1

    def _cache_suffix(self) -> str:
        from repro.summarize.golden import golden_cache_stats

        stats = golden_cache_stats()
        lookups = stats.hits + stats.computes
        if lookups == 0:
            return ""
        return f" | golden-cache {stats.hits}/{lookups} hits"

    def update(self, done: int) -> None:
        """Report ``done`` completed units; prints/publishes when due."""
        now = self.clock()
        final = done >= self.total
        if not final and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        elapsed = max(now - self.start, 1e-9)
        rate = done / elapsed
        if final or rate <= 0:
            eta = "0s"
            eta_s = 0.0
        else:
            eta_s = (self.total - done) / rate
            eta = _format_eta(eta_s)
        observe_events.emit(
            "heartbeat",
            label=self.label,
            done=done,
            total=self.total,
            rate=round(rate, 3),
            eta_s=round(eta_s, 3),
        )
        if self.quiet:
            return
        note_suffix = f" | {self.note}" if self.note else ""
        print(
            f"[{self.label}] {done}/{self.total} injections | "
            f"{rate:.1f} inj/s | ETA {eta}{self._cache_suffix()}{note_suffix}",
            file=self.stream,
        )
        self.lines_emitted += 1
