"""Process-local metrics: counters, gauges and monotonic timers.

The registry is the aggregation half of the telemetry layer: spans fold
their wall-clock into timers, kernels and caches bump counters, and the
campaign engine merges per-worker snapshots back into the parent in
injection-chunk order, so the merged registry is deterministic for a
fixed chunking (see :mod:`repro.faultinject.parallel`).

Everything here is plain Python over ``dict`` — no locks (CPython dict
operations are atomic enough for the single-threaded simulator) and no
third-party dependencies, so an enabled registry costs one dict update
per observation and a disabled one costs nothing at all (callers guard
on :func:`repro.telemetry.enabled`).
"""

from __future__ import annotations


class MetricsRegistry:
    """Named counters (ints), gauges (floats) and timers (wall seconds).

    Timers accumulate ``[count, total_seconds, max_seconds]`` per name.
    Snapshots are plain JSON-serializable dicts with sorted keys, and
    :meth:`merge_snapshot` folds one snapshot into this registry —
    counters and timer totals add, gauges take the snapshot's value
    (last-write-wins, which is deterministic because the campaign engine
    merges worker snapshots in chunk order).
    """

    __slots__ = ("_counters", "_gauges", "_timers")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration observation into timer ``name``."""
        stat = self._timers.get(name)
        if stat is None:
            self._timers[name] = [1, seconds, seconds]
        else:
            stat[0] += 1
            stat[1] += seconds
            if seconds > stat[2]:
                stat[2] = seconds

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never bumped)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Current value of gauge ``name`` (None when never set)."""
        return self._gauges.get(name)

    def timer(self, name: str) -> tuple[int, float, float] | None:
        """``(count, total_s, max_s)`` for timer ``name``, or None."""
        stat = self._timers.get(name)
        return None if stat is None else (int(stat[0]), stat[1], stat[2])

    def snapshot(self) -> dict:
        """A JSON-serializable copy of the whole registry."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "timers": {
                k: {
                    "count": int(self._timers[k][0]),
                    "total_s": self._timers[k][1],
                    "max_s": self._timers[k][2],
                }
                for k in sorted(self._timers)
            },
        }

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge_snapshot(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` payload into this registry.

        Counters and timer counts/totals add; timer maxima take the
        maximum; gauges take the snapshot's value.  Callers that need a
        deterministic result must merge snapshots in a fixed order (the
        campaign engine merges in chunk order).
        """
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, stat in snap.get("timers", {}).items():
            mine = self._timers.get(name)
            if mine is None:
                self._timers[name] = [stat["count"], stat["total_s"], stat["max_s"]]
            else:
                mine[0] += stat["count"]
                mine[1] += stat["total_s"]
                if stat["max_s"] > mine[2]:
                    mine[2] = stat["max_s"]

    def clear(self) -> None:
        """Drop every metric (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
