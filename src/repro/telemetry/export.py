"""Trace export (JSONL) and stage-time summarization.

A trace file is newline-delimited JSON:

* one ``{"type": "meta", ...}`` header (schema version, pid, platform),
* one ``{"type": "span", ...}`` record per recorded span — name, parent,
  depth, wall/cpu seconds, peak-RSS delta (kB), simulated cycles,
* one final ``{"type": "metrics", ...}`` record holding the full
  registry snapshot (counters, gauges, timers), which carries aggregated
  worker-side stage timers even when per-span events were recorded in
  another process.

``repro trace summarize <trace.jsonl>`` renders the per-stage table via
:func:`summarize_trace` / :func:`render_summary`.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.tracing import Tracer

#: Bumped whenever the record layout changes incompatibly.
SCHEMA_VERSION = 1


def write_trace(path: str | os.PathLike, tracer: Tracer, meta: dict | None = None) -> Path:
    """Write ``tracer``'s events and metrics to ``path`` as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "pid": os.getpid(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    if meta:
        header.update(meta)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for event in tracer.events:
            fh.write(json.dumps(event) + "\n")
        fh.write(
            json.dumps({"type": "metrics", **tracer.registry.snapshot()}) + "\n"
        )
    return path


def read_trace(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL trace file into its records (blank lines skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


@dataclass
class StageStat:
    """Aggregated timing of one span name across a trace."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    cycles: int = 0
    rss_peak_delta_kb: int = 0


@dataclass
class TraceSummary:
    """Per-stage aggregation of one trace file."""

    stages: dict[str, StageStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    total_events: int = 0
    dropped_events: int = 0
    #: The Tracer's ``max_events`` cap when truncation happened (the
    #: ``trace.event_cap`` gauge, set on the first dropped event).
    event_cap: int | None = None

    def ordered(self) -> list[StageStat]:
        """Stages sorted by descending total wall time."""
        return sorted(self.stages.values(), key=lambda s: (-s.wall_s, s.name))


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Aggregate a trace file's spans (and metrics record) per stage.

    Span events contribute wall/cpu/cycles/RSS; when the final metrics
    record carries ``span.*`` timers for stages that have no events in
    this file (parallel campaigns meter stages worker-side), those
    timers fill in count and wall time so the table stays complete.
    """
    summary = TraceSummary()
    metrics: dict = {}
    for record in read_trace(path):
        kind = record.get("type")
        if kind == "span":
            summary.total_events += 1
            stat = summary.stages.setdefault(record["name"], StageStat(record["name"]))
            stat.count += 1
            stat.wall_s += record.get("wall_s", 0.0)
            stat.cpu_s += record.get("cpu_s", 0.0)
            stat.cycles += record.get("cycles", 0)
            stat.rss_peak_delta_kb += record.get("rss_peak_delta_kb", 0)
        elif kind == "metrics":
            metrics = record
    summary.counters = dict(metrics.get("counters", {}))
    summary.dropped_events = summary.counters.get("trace.dropped_events", 0)
    cap = metrics.get("gauges", {}).get("trace.event_cap")
    if cap is not None:
        summary.event_cap = int(cap)
    for name, stat in metrics.get("timers", {}).items():
        if not name.startswith("span."):
            continue
        stage = name[len("span.") :]
        existing = summary.stages.get(stage)
        if existing is None:
            summary.stages[stage] = StageStat(
                stage, count=stat["count"], wall_s=stat["total_s"]
            )
        elif stat["count"] > existing.count:
            # The registry timer merges worker-side observations on top
            # of this file's span events (a superset), so it wins when
            # it has seen more calls — e.g. a traced parallel campaign
            # whose stage spans ran inside worker processes.
            existing.count = stat["count"]
            existing.wall_s = stat["total_s"]
    for name, value in summary.counters.items():
        if name.startswith("cycles."):
            stage = name[len("cycles.") :]
            if stage in summary.stages and summary.stages[stage].cycles < value:
                summary.stages[stage].cycles = value
    return summary


def render_summary(summary: TraceSummary) -> str:
    """Render the stage-time table ``repro trace summarize`` prints."""
    from repro.perfmodel.energy import cycles_to_seconds

    headers = ["stage", "calls", "wall s", "cpu s", "modelled s", "cycles"]
    rows = []
    for stat in summary.ordered():
        rows.append(
            [
                stat.name,
                str(stat.count),
                f"{stat.wall_s:.4f}",
                f"{stat.cpu_s:.4f}",
                f"{cycles_to_seconds(stat.cycles):.4f}" if stat.cycles else "-",
                str(stat.cycles) if stat.cycles else "-",
            ]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append("")
    lines.append(
        f"{summary.total_events} span event(s)"
        + (f", {summary.dropped_events} dropped" if summary.dropped_events else "")
    )
    if summary.dropped_events:
        cap = (
            f"its {summary.event_cap}-event cap"
            if summary.event_cap is not None
            else "its event cap"
        )
        lines.append(
            f"WARNING: trace buffer truncated — {summary.dropped_events} span "
            f"event(s) dropped after the tracer hit {cap}; stage totals above "
            f"remain exact (registry timers), but the span list is incomplete. "
            f"Raise Tracer(max_events=...) to capture everything."
        )
    fanout_lines = _render_fanout(summary)
    if fanout_lines:
        lines.append("")
        lines.extend(fanout_lines)
    interesting = {
        name: value
        for name, value in summary.counters.items()
        # Per-boundary fan-out counters feed the amortization table
        # above; repeating them per-counter would drown the section.
        if not name.startswith(("cycles.", "trace.", "campaign.fanout.b"))
    }
    if interesting:
        lines.append("counters:")
        for name in sorted(interesting):
            lines.append(f"  {name} = {interesting[name]}")
    return "\n".join(lines)


def _render_fanout(summary: TraceSummary) -> list[str]:
    """The boundary fan-out amortization table, when a trace has one.

    Built entirely from the existing schema: ``fanout.suffix.b<frame>``
    stage timers (one span per member suffix, worker-side timers merge
    through the metrics record like every other stage) and the
    ``campaign.fanout.b<frame>.*`` counters.
    """
    prefix = "fanout.suffix.b"
    rows = []
    for name, stat in summary.stages.items():
        if not name.startswith(prefix):
            continue
        try:
            frame = int(name[len(prefix) :])
        except ValueError:
            continue
        members = summary.counters.get(
            f"campaign.fanout.b{frame}.members", stat.count
        )
        saved = summary.counters.get(f"campaign.fanout.b{frame}.restores_saved", 0)
        rows.append((frame, members, saved, stat.wall_s))
    if not rows:
        return []
    lines = ["boundary fan-out (restore amortization per group):"]
    for frame, members, saved, wall_s in sorted(rows):
        lines.append(
            f"  b{frame}: {members} member(s), {saved} restore(s) saved, "
            f"suffix {wall_s:.4f}s"
        )
    return lines
