"""Lightweight, zero-dependency observability for the reproduction.

Three pieces, all process-local and off by default:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges
  and monotonic timers, with deterministic ordered snapshot merging
  (how parallel campaign workers report back).
* :func:`span` / :func:`traced` — nested stage-level tracing that
  captures wall/CPU time, peak-RSS deltas and the simulated cycles an
  :class:`~repro.runtime.context.ExecutionContext` charged inside the
  span.  Disabled tracing costs a single ``None`` check per stage.
* :mod:`~repro.telemetry.export` — JSONL trace files and the
  ``repro trace summarize`` stage-time table.

Enable programmatically with :func:`enable` (pair with
:func:`~repro.telemetry.export.write_trace`), from the CLI with
``--trace PATH``, or for a whole process with ``REPRO_TRACE=1`` /
``REPRO_TRACE=/path/trace.jsonl`` in the environment.

Tracing never changes results: campaigns run with telemetry enabled are
bit-identical to untraced runs at any worker count (see
``tests/telemetry/test_campaign_equivalence.py``).
"""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import (
    HEARTBEAT_INTERVAL_ENV,
    Heartbeat,
    resolve_heartbeat_interval,
)
from repro.telemetry.tracing import (
    DEFAULT_MAX_EVENTS,
    TRACE_ENV,
    Tracer,
    activate_from_env,
    counter_inc,
    disable,
    enable,
    enabled,
    gauge_set,
    get_tracer,
    restore_tracer,
    span,
    swap_in_fresh_tracer,
    traced,
)

__all__ = [
    "MetricsRegistry",
    "Heartbeat",
    "HEARTBEAT_INTERVAL_ENV",
    "resolve_heartbeat_interval",
    "Tracer",
    "TRACE_ENV",
    "DEFAULT_MAX_EVENTS",
    "activate_from_env",
    "counter_inc",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get_tracer",
    "restore_tracer",
    "span",
    "swap_in_fresh_tracer",
    "traced",
]

# One-time environment activation (REPRO_TRACE=1 or a trace path).
activate_from_env()
