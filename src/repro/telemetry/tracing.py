"""Stage-level tracing: nested spans over the pipeline and campaigns.

A :class:`Tracer` is a process-local recorder.  When tracing is enabled
(:func:`enable`), :func:`span` returns a context manager that measures
one named region — wall time, CPU time, peak-RSS delta and, when an
:class:`~repro.runtime.context.ExecutionContext` is attached, the
simulated cycles the region charged — and appends one event to the
tracer.  When tracing is disabled (the default), :func:`span` returns a
shared no-op guard after a single global ``None`` check, so the
instrumentation in the hot pipeline stages costs one function call and
one comparison per stage invocation.

Determinism contract: tracing only *observes*.  It never touches an RNG,
a register window or a cycle counter, so enabling it cannot change any
campaign outcome, running rate or SDC payload (asserted end to end by
``tests/telemetry/test_campaign_equivalence.py``).
"""

from __future__ import annotations

import functools
import os
import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.context import ExecutionContext

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: Environment variable that enables tracing at import time.  ``0`` and
#: the empty string leave tracing off; any other value enables it, and a
#: value containing a path separator or ending in ``.jsonl`` is treated
#: as a trace-export path written at interpreter exit.
TRACE_ENV = "REPRO_TRACE"

#: Span events kept per tracer before new ones are counted, not stored
#: (the ``trace.dropped_events`` counter records the overflow — no
#: silent truncation).
DEFAULT_MAX_EVENTS = 250_000


def _peak_rss_kb() -> int:
    """Peak RSS of this process in kilobytes (0 where unsupported)."""
    if _resource is None:  # pragma: no cover - non-POSIX fallback
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class Tracer:
    """Collects span events and aggregates them into a metrics registry."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.registry = MetricsRegistry()
        self.events: list[dict] = []
        self.max_events = max_events
        self._depth = 0
        self._seq = 0
        self._stack: list[str] = []

    def span(self, name: str, ctx: Optional["ExecutionContext"] = None) -> "_SpanGuard":
        """A context manager measuring one named region."""
        return _SpanGuard(self, name, ctx)

    def record(self, event: dict) -> None:
        """Append one span event, honouring the event cap."""
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            if self.registry.counter("trace.dropped_events") == 0:
                # First drop: record the cap so trace consumers can say
                # exactly which limit truncated the buffer.
                self.registry.set_gauge("trace.event_cap", float(self.max_events))
            self.registry.inc("trace.dropped_events")

    @property
    def current_span(self) -> str | None:
        """Name of the innermost open span, or None."""
        return self._stack[-1] if self._stack else None


class _SpanGuard:
    """Measures one region; every open/close keeps the tracer's stack."""

    __slots__ = ("_tracer", "_name", "_ctx", "_wall0", "_cpu0", "_rss0", "_cycles0", "_parent")

    def __init__(self, tracer: Tracer, name: str, ctx: Optional["ExecutionContext"]) -> None:
        self._tracer = tracer
        self._name = name
        self._ctx = ctx

    def __enter__(self) -> "_SpanGuard":
        tracer = self._tracer
        self._parent = tracer.current_span
        tracer._stack.append(self._name)
        self._rss0 = _peak_rss_kb()
        self._cycles0 = self._ctx.cycles if self._ctx is not None else 0
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self._wall0
        cpu_s = time.process_time() - self._cpu0
        tracer = self._tracer
        tracer._stack.pop()
        tracer._seq += 1
        cycles = (self._ctx.cycles - self._cycles0) if self._ctx is not None else 0
        event = {
            "type": "span",
            "seq": tracer._seq,
            "name": self._name,
            "parent": self._parent,
            "depth": len(tracer._stack),
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "rss_peak_delta_kb": _peak_rss_kb() - self._rss0,
            "cycles": cycles,
            "error": exc_type.__name__ if exc_type is not None else None,
        }
        tracer.record(event)
        registry = tracer.registry
        registry.observe(f"span.{self._name}", wall_s)
        if cycles:
            registry.inc(f"cycles.{self._name}", cycles)
        return False


class _NullSpan:
    """The shared do-nothing guard returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The process-local tracer; ``None`` means tracing is off.
_TRACER: Tracer | None = None

#: Export path requested via ``REPRO_TRACE=<path>`` (written at exit).
_ENV_EXPORT_PATH: str | None = None


def enabled() -> bool:
    """True when tracing is on for this process."""
    return _TRACER is not None


def get_tracer() -> Tracer | None:
    """The active tracer, or None while tracing is disabled."""
    return _TRACER


def enable(max_events: int = DEFAULT_MAX_EVENTS) -> Tracer:
    """Turn tracing on (idempotent); returns the active tracer."""
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer(max_events=max_events)
    return _TRACER


def disable() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active, if any."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def span(name: str, ctx: Optional["ExecutionContext"] = None):
    """A span guard for ``name`` — the single-check fast path.

    Usage::

        with telemetry.span("vision.orb", ctx=ctx):
            ...
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, ctx)


def traced(name: str | None = None) -> Callable:
    """Decorator wrapping a function in a span named after it."""

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def counter_inc(name: str, by: int = 1) -> None:
    """Bump a registry counter (no-op while tracing is disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.registry.inc(name, by)


def gauge_set(name: str, value: float) -> None:
    """Set a registry gauge (no-op while tracing is disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.registry.set_gauge(name, value)


# ---------------------------------------------------------------------------
# Worker-side metering (see repro.faultinject.parallel)
# ---------------------------------------------------------------------------


def swap_in_fresh_tracer(max_events: int = DEFAULT_MAX_EVENTS) -> tuple[Tracer, Tracer | None]:
    """Install a fresh tracer, returning ``(fresh, previous)``.

    Worker processes meter one injection chunk at a time: a fresh tracer
    isolates the chunk's counters/timers from anything inherited from a
    forked parent, and the chunk runner ships ``fresh.registry.snapshot()``
    back for the parent's ordered merge.
    """
    global _TRACER
    previous = _TRACER
    fresh = Tracer(max_events=max_events)
    _TRACER = fresh
    return fresh, previous


def restore_tracer(previous: Tracer | None) -> None:
    """Re-install ``previous`` after :func:`swap_in_fresh_tracer`."""
    global _TRACER
    _TRACER = previous


# ---------------------------------------------------------------------------
# Environment activation
# ---------------------------------------------------------------------------


def _looks_like_path(raw: str) -> bool:
    return os.sep in raw or raw.endswith(".jsonl")


def activate_from_env() -> Tracer | None:
    """Enable tracing when ``REPRO_TRACE`` asks for it (import hook).

    ``REPRO_TRACE=1`` (or any other non-path truthy value) turns tracing
    on; ``REPRO_TRACE=/path/to/trace.jsonl`` additionally registers an
    atexit export of the trace to that path.
    """
    global _ENV_EXPORT_PATH
    raw = os.environ.get(TRACE_ENV, "")
    if raw in ("", "0", "false", "no", "off"):
        return None
    tracer = enable()
    if _looks_like_path(raw) and _ENV_EXPORT_PATH is None:
        import atexit

        _ENV_EXPORT_PATH = raw

        def _export() -> None:
            from repro.telemetry.export import write_trace

            if _TRACER is not None:
                write_trace(_ENV_EXPORT_PATH, _TRACER)

        atexit.register(_export)
    return tracer
