"""One entry point per figure of the paper's evaluation.

Every experiment is a function of a :class:`Scale` and a seed, returning
a structured result that the benchmark harness formats into the same
rows/series the paper reports.  The paper ran 1000-frame inputs and
1000-5000 injections per cell on a POWER8 server; this reproduction runs
on one core, so the default scale is reduced.  Set the environment
variable ``REPRO_SCALE`` to ``quick`` (default), ``medium`` or ``paper``
to choose; the scale actually used is recorded in every result.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.analysis.convergence import coverage_uniformity, knee_point
from repro.analysis.hot import HotFunctionStudy, run_hot_function_study
from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.outcomes import OutcomeCounts
from repro.faultinject.parallel import VSWorkloadSpec
from repro.faultinject.registers import RegKind
from repro.perfmodel.energy import PerfEstimate, estimate_from_profile
from repro.perfmodel.profile import ProfileLine, execution_profile, hot_function_fraction
from repro.quality import EDCurve, SDCQuality, build_curve, compare_outputs
from repro.runtime.context import ExecutionContext
from repro.summarize.approximations import ALGORITHM_FACTORIES, config_for
from repro.summarize.config import VSConfig
from repro.summarize.golden import GoldenRun, golden_run
from repro.summarize.pipeline import run_vs
from repro.video.frames import FrameStream
from repro.video.synthetic import cached_input

#: The paper's algorithm order.
ALGORITHMS = list(ALGORITHM_FACTORIES)

#: The paper's two inputs.
INPUTS = ["input1", "input2"]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing (frames per input, injections per campaign)."""

    name: str
    n_frames: int
    frame_size: tuple[int, int]
    injections: int  # per resiliency campaign cell (Figs. 10, 11a)
    sdc_injections: int  # per SDC-quality campaign cell (Fig. 12)
    convergence_injections: int  # for the Fig. 9 trend study
    hot_injections: int  # per half of the Fig. 11b study


TINY = Scale("tiny", 24, (96, 72), 12, 16, 24, 16)
QUICK = Scale("quick", 48, (96, 72), 100, 150, 300, 150)
MEDIUM = Scale("medium", 48, (96, 72), 400, 700, 1200, 500)
PAPER = Scale("paper", 1000, (96, 72), 1000, 5000, 2500, 1000)

_SCALES = {scale.name: scale for scale in (TINY, QUICK, MEDIUM, PAPER)}


def scale_from_env(default: str = "quick") -> Scale:
    """Pick the experiment scale from ``REPRO_SCALE``."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in _SCALES:
        raise ValueError(f"unknown REPRO_SCALE {name!r}; expected one of {sorted(_SCALES)}")
    return _SCALES[name]


def input_stream(which: str, scale: Scale) -> FrameStream:
    """The (cached) synthetic stand-in for one of the paper's inputs."""
    return cached_input(which, n_frames=scale.n_frames, frame_size=scale.frame_size)


def vs_workload(stream: FrameStream, config: VSConfig):
    """The campaign workload: run VS, return the output image."""

    def workload(ctx: ExecutionContext) -> np.ndarray:
        return run_vs(stream, config, ctx).panorama

    return workload


# ---------------------------------------------------------------------------
# Fig. 5 — IPC / execution time / energy, normalized to baseline VS
# ---------------------------------------------------------------------------


@dataclass
class PerfRow:
    """One bar triple of Fig. 5."""

    input_name: str
    algorithm: str
    estimate: PerfEstimate
    normalized_ipc: float
    normalized_time: float
    normalized_energy: float


@telemetry.traced("experiment.fig05")
def fig05_perf_energy(scale: Scale) -> list[PerfRow]:
    """Reproduce Fig. 5: normalized IPC, time and energy per algorithm."""
    rows: list[PerfRow] = []
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        baseline_estimate: PerfEstimate | None = None
        for algorithm in ALGORITHMS:
            config = config_for(algorithm)
            golden = golden_run(stream, config)
            estimate = estimate_from_profile(golden.profile)
            if algorithm == "VS":
                baseline_estimate = estimate
            assert baseline_estimate is not None
            normalized = estimate.normalized_to(baseline_estimate)
            rows.append(
                PerfRow(
                    input_name=input_name,
                    algorithm=algorithm,
                    estimate=estimate,
                    normalized_ipc=normalized["ipc"],
                    normalized_time=normalized["time"],
                    normalized_energy=normalized["energy"],
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 6 — output panoramas of the baseline and approximations
# ---------------------------------------------------------------------------


@dataclass
class OutputQualityRow:
    """Quality of one approximate algorithm's golden output vs. VS_golden."""

    input_name: str
    algorithm: str
    relative_l2_norm: float
    egregious_degree: int | None
    frames_stitched: int
    frames_discarded: int
    num_minis: int
    golden: GoldenRun


@telemetry.traced("experiment.fig06")
def fig06_output_quality(scale: Scale) -> list[OutputQualityRow]:
    """Reproduce Fig. 6: approximate outputs compared against VS_golden."""
    rows: list[OutputQualityRow] = []
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        vs_golden = golden_run(stream, config_for("VS"))
        for algorithm in ALGORITHMS:
            golden = golden_run(stream, config_for(algorithm))
            quality: SDCQuality = compare_outputs(vs_golden.output, golden.output)
            rows.append(
                OutputQualityRow(
                    input_name=input_name,
                    algorithm=algorithm,
                    relative_l2_norm=quality.relative_l2_norm,
                    egregious_degree=quality.egregious_degree,
                    frames_stitched=golden.result.frames_stitched,
                    frames_discarded=golden.result.frames_discarded,
                    num_minis=golden.result.num_minis,
                    golden=golden,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 8 — execution profile of the VS application
# ---------------------------------------------------------------------------


@dataclass
class ProfileReport:
    """The Fig. 8 execution profile for one input."""

    input_name: str
    lines: list[ProfileLine]
    hot_fraction: float  # warp share of total (54.4% in the paper)
    library_fraction: float  # all library buckets (~68% in the paper)


@telemetry.traced("experiment.fig08")
def fig08_profile(scale: Scale) -> list[ProfileReport]:
    """Reproduce Fig. 8: per-function execution-time distribution."""
    from repro.perfmodel.profile import library_fraction

    reports = []
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        golden = golden_run(stream, config_for("VS"))
        reports.append(
            ProfileReport(
                input_name=input_name,
                lines=execution_profile(golden.profile),
                hot_fraction=hot_function_fraction(golden.profile),
                library_fraction=library_fraction(golden.profile),
            )
        )
    return reports


# ---------------------------------------------------------------------------
# Fig. 9 — error-site coverage (convergence + register histogram)
# ---------------------------------------------------------------------------


@dataclass
class CoverageStudy:
    """Fig. 9: rate convergence and register/bit coverage."""

    campaign: CampaignResult
    knee: int | None
    register_cv: float  # coefficient of variation across registers
    bit_cv: float


@telemetry.traced("experiment.fig09")
def fig09_coverage(scale: Scale, seed: int = 9, workers: int | None = None) -> CoverageStudy:
    """Reproduce Fig. 9 on the baseline VS algorithm, Input 1, GPRs."""
    stream = input_stream("input1", scale)
    config = config_for("VS")
    golden = golden_run(stream, config)
    campaign = run_campaign(
        vs_workload(stream, config),
        golden.output,
        golden.total_cycles,
        CampaignConfig(
            n_injections=scale.convergence_injections,
            kind=RegKind.GPR,
            seed=seed,
            keep_sdc_outputs=False,
            workers=workers,
        ),
        spec=VSWorkloadSpec.for_stream(stream, config),
    )
    return CoverageStudy(
        campaign=campaign,
        knee=knee_point(campaign.running),
        register_cv=coverage_uniformity(campaign.register_histogram),
        bit_cv=coverage_uniformity(campaign.bit_histogram),
    )


# ---------------------------------------------------------------------------
# Fig. 10 — resiliency profile of baseline VS (GPR vs FPR, both inputs)
# ---------------------------------------------------------------------------


@dataclass
class ResiliencyCell:
    """One bar group of Fig. 10 / Fig. 11a."""

    input_name: str
    algorithm: str
    kind: RegKind
    counts: OutcomeCounts
    campaign: CampaignResult = field(repr=False)

    def rates(self) -> dict[str, float]:
        """Outcome rates for this cell."""
        return self.counts.rates()


@telemetry.traced("experiment.fig10")
def fig10_resiliency(
    scale: Scale, seed: int = 10, workers: int | None = None
) -> list[ResiliencyCell]:
    """Reproduce Fig. 10: VS outcome rates for GPR and FPR injections."""
    cells = []
    config = config_for("VS")
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        golden = golden_run(stream, config)
        for kind in (RegKind.GPR, RegKind.FPR):
            campaign = run_campaign(
                vs_workload(stream, config),
                golden.output,
                golden.total_cycles,
                CampaignConfig(
                    n_injections=scale.injections,
                    kind=kind,
                    seed=seed + (0 if kind is RegKind.GPR else 1),
                    keep_sdc_outputs=False,
                    workers=workers,
                ),
                spec=VSWorkloadSpec.for_stream(stream, config),
            )
            cells.append(
                ResiliencyCell(
                    input_name=input_name,
                    algorithm="VS",
                    kind=kind,
                    counts=campaign.counts,
                    campaign=campaign,
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Fig. 11a — resiliency of the approximate algorithms (GPR)
# ---------------------------------------------------------------------------


@telemetry.traced("experiment.fig11a")
def fig11a_approx_resiliency(
    scale: Scale, seed: int = 11, workers: int | None = None
) -> list[ResiliencyCell]:
    """Reproduce Fig. 11a: GPR outcome rates for all four algorithms."""
    cells = []
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        for offset, algorithm in enumerate(ALGORITHMS):
            config = config_for(algorithm)
            golden = golden_run(stream, config)
            campaign = run_campaign(
                vs_workload(stream, config),
                golden.output,
                golden.total_cycles,
                CampaignConfig(
                    n_injections=scale.injections,
                    kind=RegKind.GPR,
                    seed=seed + offset,
                    keep_sdc_outputs=False,
                    workers=workers,
                ),
                spec=VSWorkloadSpec.for_stream(stream, config),
            )
            cells.append(
                ResiliencyCell(
                    input_name=input_name,
                    algorithm=algorithm,
                    kind=RegKind.GPR,
                    counts=campaign.counts,
                    campaign=campaign,
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Fig. 11b — hot function vs end-to-end workflow
# ---------------------------------------------------------------------------


@telemetry.traced("experiment.fig11b")
def fig11b_hot_function(
    scale: Scale, seed: int = 100, workers: int | None = None
) -> HotFunctionStudy:
    """Reproduce Fig. 11b with the baseline VS config.

    Runs on Input 2: its high inter-frame redundancy maximizes the
    compositional masking the study is designed to expose (later frames
    are stitched over the area the hot function corrupted).
    """
    stream = input_stream("input2", scale)
    return run_hot_function_study(
        stream,
        config_for("VS"),
        n_injections=scale.hot_injections,
        seed=seed,
        workers=workers,
    )


# ---------------------------------------------------------------------------
# Fig. 12 — SDC quality distributions
# ---------------------------------------------------------------------------


@dataclass
class SDCQualityStudy:
    """Fig. 12: ED curves per algorithm for one input."""

    input_name: str
    vs_golden_curves: dict[str, EDCurve]  # compared against VS_golden
    approx_golden_curves: dict[str, EDCurve]  # compared against Approx_golden
    sdc_counts: dict[str, int]


@telemetry.traced("experiment.fig12")
def fig12_sdc_quality(
    scale: Scale, seed: int = 12, workers: int | None = None
) -> list[SDCQualityStudy]:
    """Reproduce Fig. 12: ED distribution of SDCs per algorithm and input."""
    studies = []
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        vs_golden = golden_run(stream, config_for("VS"))
        vs_curves: dict[str, EDCurve] = {}
        approx_curves: dict[str, EDCurve] = {}
        sdc_counts: dict[str, int] = {}
        for offset, algorithm in enumerate(ALGORITHMS):
            config = config_for(algorithm)
            golden = golden_run(stream, config)
            campaign = run_campaign(
                vs_workload(stream, config),
                golden.output,
                golden.total_cycles,
                CampaignConfig(
                    n_injections=scale.sdc_injections,
                    kind=RegKind.GPR,
                    seed=seed + offset,
                    keep_sdc_outputs=True,
                    workers=workers,
                ),
                spec=VSWorkloadSpec.for_stream(stream, config),
            )
            vs_qualities: list[SDCQuality] = []
            approx_qualities: list[SDCQuality] = []
            for result in campaign.sdc_results:
                if result.output is None:
                    continue
                vs_qualities.append(compare_outputs(vs_golden.output, result.output))
                approx_qualities.append(compare_outputs(golden.output, result.output))
            vs_curves[algorithm] = build_curve(algorithm, vs_qualities)
            approx_curves[algorithm] = build_curve(algorithm, approx_qualities)
            sdc_counts[algorithm] = len(campaign.sdc_results)
        studies.append(
            SDCQualityStudy(
                input_name=input_name,
                vs_golden_curves=vs_curves,
                approx_golden_curves=approx_curves,
                sdc_counts=sdc_counts,
            )
        )
    return studies


# ---------------------------------------------------------------------------
# Fig. 13 — difference visualization (default vs approximate output)
# ---------------------------------------------------------------------------


@dataclass
class DiffVisualization:
    """Fig. 13: the four panels for one input."""

    input_name: str
    default_output: np.ndarray
    approx_output: np.ndarray
    absolute_diff: np.ndarray
    thresholded_diff: np.ndarray
    relative_l2_norm: float


@telemetry.traced("experiment.fig13")
def fig13_diff_visualization(scale: Scale, algorithm: str = "VS_SM") -> list[DiffVisualization]:
    """Reproduce Fig. 13: |VS - approx| raw and 128-thresholded diffs."""
    from repro.quality.align import align_for_comparison
    from repro.quality.metrics import pixel_128_diff, pixel_diff, relative_l2_norm

    panels = []
    for input_name in INPUTS:
        stream = input_stream(input_name, scale)
        vs_golden = golden_run(stream, config_for("VS"))
        approx_golden = golden_run(stream, config_for(algorithm))
        golden_aligned, approx_aligned = align_for_comparison(
            vs_golden.output, approx_golden.output
        )
        panels.append(
            DiffVisualization(
                input_name=input_name,
                default_output=golden_aligned,
                approx_output=approx_aligned,
                absolute_diff=pixel_diff(golden_aligned, approx_aligned),
                thresholded_diff=pixel_128_diff(golden_aligned, approx_aligned),
                relative_l2_norm=relative_l2_norm(golden_aligned, approx_aligned),
            )
        )
    return panels
