"""The hot-function case study (paper Sections V-C and VI-C).

The paper asks: can the resiliency of the full VS application be
estimated from a standalone benchmark of its hottest function?  It
builds **WP**, a toy application that feeds an image and a transform
matrix into ``WarpPerspective`` and returns the transformed image, then
compares:

* error injections into the warp functions *inside* the running VS
  application, observed at the VS output, against
* error injections into standalone WP, observed at WP's output.

The answer is no: the compositional effect of the downstream pipeline
masks many corruptions that are SDCs for standalone WP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faultinject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faultinject.monitor import Workload
from repro.faultinject.outcomes import OutcomeCounts
from repro.faultinject.parallel import VSWorkloadSpec
from repro.faultinject.registers import RegKind
from repro.imaging.geometry import rotation, translation
from repro.imaging.warp import warp_perspective
from repro.runtime.context import ExecutionContext
from repro.summarize.config import VSConfig
from repro.summarize.golden import golden_run
from repro.summarize.pipeline import run_vs
from repro.video.frames import FrameStream

#: Site prefix identifying the hot warp functions for injection filtering.
WARP_SITE_PREFIX = "imaging.warp"


def wp_transform(frame_shape: tuple[int, int]) -> np.ndarray:
    """A representative perspective transform for the WP toy benchmark."""
    frame_h, frame_w = frame_shape
    mat = translation(frame_w * 0.3, frame_h * 0.2) @ rotation(
        0.12, center=(frame_w / 2.0, frame_h / 2.0)
    )
    # A mild projective component, as chained UAV homographies have.
    mat[2, 0] = 4e-4
    mat[2, 1] = -3e-4
    return mat


def make_wp_workload(image: np.ndarray, transform: np.ndarray, out_shape: tuple[int, int]):
    """Build the WP workload: image + matrix in, warped image out."""

    def workload(ctx: ExecutionContext) -> np.ndarray:
        return warp_perspective(image, transform, out_shape, ctx)

    return workload


@dataclass(frozen=True)
class WPWorkloadSpec:
    """Picklable spec rebuilding the standalone WP toy benchmark.

    Mirrors :class:`repro.faultinject.parallel.VSWorkloadSpec` for the
    hot-function study's second half: workers regenerate the input
    stream, take its first frame and the representative transform, and
    recompute the (cheap) WP golden run locally instead of having it
    shipped with every task.
    """

    input_name: str
    n_frames: int
    frame_size: tuple[int, int]  # (w, h), as make_input expects

    @staticmethod
    def for_stream(stream) -> "WPWorkloadSpec | None":
        """Build a spec for ``stream`` if it is a reconstructible input."""
        if stream.name not in ("input1", "input2") or len(stream) == 0:
            return None
        frame_h, frame_w = stream.frame_shape
        return WPWorkloadSpec(stream.name, len(stream), (frame_w, frame_h))

    def build(self) -> tuple[Workload, np.ndarray, int]:
        """Rebuild the WP workload and its golden run."""
        from repro.video.synthetic import cached_input

        stream = cached_input(self.input_name, n_frames=self.n_frames, frame_size=self.frame_size)
        frame = stream[0].copy()
        transform = wp_transform(stream.frame_shape)
        frame_h, frame_w = stream.frame_shape
        workload = make_wp_workload(frame, transform, (frame_h * 2, frame_w * 2))
        ctx = ExecutionContext()
        golden = workload(ctx)
        return workload, golden, ctx.cycles


@dataclass
class HotFunctionStudy:
    """Fig. 11b: outcome rates for warp-targeted injections, VS vs WP."""

    vs_counts: OutcomeCounts  # VS application, injections filtered to warp sites
    wp_counts: OutcomeCounts  # standalone WP application
    vs_campaign: CampaignResult
    wp_campaign: CampaignResult

    def masking_gain(self) -> float:
        """How much more the full workflow masks than standalone WP."""
        from repro.faultinject.outcomes import Outcome

        return self.vs_counts.rate(Outcome.MASKED) - self.wp_counts.rate(Outcome.MASKED)


def run_hot_function_study(
    stream: FrameStream,
    config: VSConfig,
    n_injections: int,
    seed: int = 100,
    workers: int | None = None,
) -> HotFunctionStudy:
    """Run both halves of the Fig. 11b comparison (GPR injections)."""
    golden = golden_run(stream, config)

    def vs_workload(ctx: ExecutionContext) -> np.ndarray:
        return run_vs(stream, config, ctx).panorama

    vs_campaign = run_campaign(
        vs_workload,
        golden.output,
        golden.total_cycles,
        CampaignConfig(
            n_injections=n_injections,
            kind=RegKind.GPR,
            seed=seed,
            site_filter=WARP_SITE_PREFIX,
            keep_sdc_outputs=False,
            workers=workers,
        ),
        spec=VSWorkloadSpec.for_stream(stream, config),
    )

    frame = stream[0].copy()
    transform = wp_transform(stream.frame_shape)
    frame_h, frame_w = stream.frame_shape
    out_shape = (frame_h * 2, frame_w * 2)
    wp_workload = make_wp_workload(frame, transform, out_shape)

    wp_ctx = ExecutionContext()
    wp_golden = wp_workload(wp_ctx)
    wp_campaign = run_campaign(
        wp_workload,
        wp_golden,
        wp_ctx.cycles,
        CampaignConfig(
            n_injections=n_injections,
            kind=RegKind.GPR,
            seed=seed + 1,
            site_filter=WARP_SITE_PREFIX,
            keep_sdc_outputs=False,
            workers=workers,
        ),
        spec=WPWorkloadSpec.for_stream(stream),
    )

    return HotFunctionStudy(
        vs_counts=vs_campaign.fired_counts(),
        wp_counts=wp_campaign.fired_counts(),
        vs_campaign=vs_campaign,
        wp_campaign=wp_campaign,
    )
