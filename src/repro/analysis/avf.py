"""Architectural Vulnerability Factor (AVF) analysis of campaign data.

The paper's related work (Section VIII-B) grounds its methodology in the
AVF literature (Mukherjee et al., MICRO 2003): the AVF of a structure is
the probability that a fault in it affects the program outcome.  This
module derives empirical AVFs from injection campaigns:

* per architectural register (which registers matter most),
* per bit position (high pointer bits vs low data bits),
* per binding role (ADDRESS vs CONTROL vs DATA),

with Wilson confidence intervals, since campaign cells can be small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faultinject.campaign import CampaignResult
from repro.faultinject.outcomes import Outcome, wilson_interval
from repro.faultinject.registers import NUM_REGISTERS, REGISTER_BITS, Role


def _affects_outcome(outcome: Outcome) -> bool:
    """AVF counts any visible deviation: SDC, crash or hang."""
    return outcome is not Outcome.MASKED


@dataclass(frozen=True)
class AVFEstimate:
    """One empirical AVF with its confidence interval."""

    label: str
    affected: int
    total: int

    @property
    def avf(self) -> float:
        """Point estimate of the vulnerability factor."""
        if self.total == 0:
            return 0.0
        return self.affected / self.total

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """95% Wilson interval."""
        return wilson_interval(self.affected, self.total)


def register_avf(campaign: CampaignResult) -> list[AVFEstimate]:
    """Empirical AVF of each architectural register."""
    affected = np.zeros(NUM_REGISTERS, dtype=np.int64)
    totals = np.zeros(NUM_REGISTERS, dtype=np.int64)
    for result in campaign.results:
        register = result.plan.register
        totals[register] += 1
        if _affects_outcome(result.outcome):
            affected[register] += 1
    return [
        AVFEstimate(label=f"r{index}", affected=int(affected[index]), total=int(totals[index]))
        for index in range(NUM_REGISTERS)
    ]


def bit_avf(campaign: CampaignResult, bucket_size: int = 8) -> list[AVFEstimate]:
    """Empirical AVF per bit bucket (e.g. bits 0-7, 8-15, ...).

    Bit position matters physically: flips in high pointer bits nearly
    always leave the address space, flips in low data bits ride through
    truncating stores.
    """
    if REGISTER_BITS % bucket_size != 0:
        raise ValueError(f"bucket_size must divide {REGISTER_BITS}")
    n_buckets = REGISTER_BITS // bucket_size
    affected = np.zeros(n_buckets, dtype=np.int64)
    totals = np.zeros(n_buckets, dtype=np.int64)
    for result in campaign.results:
        bucket = result.plan.bit // bucket_size
        totals[bucket] += 1
        if _affects_outcome(result.outcome):
            affected[bucket] += 1
    return [
        AVFEstimate(
            label=f"bits {index * bucket_size}-{(index + 1) * bucket_size - 1}",
            affected=int(affected[index]),
            total=int(totals[index]),
        )
        for index in range(n_buckets)
    ]


def role_avf(campaign: CampaignResult) -> list[AVFEstimate]:
    """Empirical AVF per binding role of the value the flip hit.

    Injections that landed in empty or stale registers have no role and
    are reported under ``dead``.
    """
    buckets: dict[str, list[int]] = {
        role.value: [0, 0] for role in Role
    }
    buckets["dead"] = [0, 0]
    for result in campaign.results:
        role = result.record.role
        key = role.value if (role is not None and result.record.hit_live_value) else "dead"
        buckets[key][1] += 1
        if _affects_outcome(result.outcome):
            buckets[key][0] += 1
    return [
        AVFEstimate(label=key, affected=affected, total=total)
        for key, (affected, total) in buckets.items()
    ]


def workload_avf(campaign: CampaignResult) -> AVFEstimate:
    """Overall AVF of the workload for this register kind."""
    affected = sum(1 for r in campaign.results if _affects_outcome(r.outcome))
    return AVFEstimate(
        label=campaign.config.kind.value, affected=affected, total=len(campaign.results)
    )
