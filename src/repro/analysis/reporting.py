"""Serialization and report formatting for experiment results.

Campaign and experiment outputs are written as JSON so long runs can be
archived, diffed across code versions, and compared against the paper's
numbers without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.faultinject.campaign import CampaignResult
from repro.faultinject.outcomes import OutcomeCounts


def counts_to_dict(counts: OutcomeCounts) -> dict[str, Any]:
    """Serializable view of outcome counts and rates."""
    return {
        "total": counts.total,
        "masked": counts.masked,
        "sdc": counts.sdc,
        "crash_segv": counts.crash_segv,
        "crash_abort": counts.crash_abort,
        "hang": counts.hang,
        "rates": counts.rates(),
    }


def campaign_to_dict(campaign: CampaignResult) -> dict[str, Any]:
    """Serializable summary of a campaign (without SDC images).

    Stratified campaigns additionally carry a ``sampling`` block (cell
    grid, per-cell statistics, raw vs reweighted rates); uniform
    campaigns keep exactly their previous shape.
    """
    payload = {
        "n_injections": campaign.config.n_injections,
        "kind": campaign.config.kind.value,
        "seed": campaign.config.seed,
        "site_filter": campaign.config.site_filter,
        "counts": counts_to_dict(campaign.counts),
        "register_histogram": campaign.register_histogram.tolist(),
        "bit_histogram": campaign.bit_histogram.tolist(),
        "records": [
            {
                "target_cycle": result.plan.target_cycle,
                "register": result.plan.register,
                "bit": result.plan.bit,
                "fired": result.record.fired,
                "site": result.record.site,
                "binding": result.record.binding_name,
                "role": result.record.role.value if result.record.role else None,
                "effect": result.record.effect.value if result.record.effect else None,
                "outcome": result.outcome.value,
                "crash_kind": result.crash_kind.value if result.crash_kind else None,
            }
            for result in campaign.results
        ],
    }
    if campaign.sampling is not None:
        payload["sampling"] = campaign.sampling.to_dict()
    return payload


def save_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a result payload as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Load a previously saved result payload."""
    return json.loads(Path(path).read_text())


def markdown_table(headers: list[str], rows: list[list[Any]]) -> str:
    """Render a GitHub-flavoured markdown table.

    Cell text is escaped so values containing ``|`` or newlines (e.g.
    register binding names, stage labels) cannot break the table: pipes
    become ``\\|`` and newlines become ``<br>``.
    """
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            text = f"{value:.3f}"
        else:
            text = str(value)
        return (
            text.replace("|", "\\|")
            .replace("\r\n", "<br>")
            .replace("\n", "<br>")
            .replace("\r", "<br>")
        )

    lines = ["| " + " | ".join(fmt(header) for header in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)
