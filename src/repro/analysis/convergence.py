"""Injection-count sufficiency analysis (paper Fig. 9a).

The paper estimates the minimum number of error injections by watching
the outcome-rate trend curves and finding the *knee* — the point after
which the rates change only trivially (they conclude 1000 injections).
The adaptive stratified planner (:mod:`repro.faultinject.sampling`)
replaces eyeballing the knee with a per-cell Wilson-CI width test; the
width helper lives here with the rest of the sufficiency machinery.
"""

from __future__ import annotations

import numpy as np

from repro.faultinject.outcomes import Outcome, RunningRates, wilson_interval


def knee_point(running: RunningRates, tolerance: float = 0.02) -> int | None:
    """Smallest injection count after which every rate stays settled.

    A campaign is *settled* at n when, for every outcome class, the
    running rate never deviates from its final value by more than
    ``tolerance`` (absolute) for any m >= n.  Returns the injection
    count at the knee, or ``None`` if the campaign never settles.
    """
    if not running.checkpoints:
        return None
    counts = np.array(running.checkpoints)
    settled_from = 0
    for outcome in Outcome:
        series = np.array(running.rates[outcome.value])
        final = series[-1]
        deviating = np.abs(series - final) > tolerance
        if np.any(deviating):
            last_bad = int(np.nonzero(deviating)[0][-1])
            settled_from = max(settled_from, last_bad + 1)
    if settled_from >= len(counts):
        return None
    return int(counts[settled_from])


def coverage_uniformity(histogram: np.ndarray) -> float:
    """Coefficient of variation of an injection histogram (Fig. 9b).

    Near-zero means the random error sites are spread uniformly across
    registers (or bits).
    """
    hist = np.asarray(histogram, dtype=np.float64)
    mean = hist.mean()
    if mean == 0:
        return 0.0
    return float(hist.std() / mean)


def wilson_width(successes: int, total: int, z: float = 1.96) -> float:
    """Width of the Wilson score CI for a binomial rate.

    The convergence-stopping criterion of the stratified planner: a
    rate is *resolved* once this width drops below the target.  With no
    samples nothing is resolved, so ``total == 0`` returns the maximal
    width 1.0 (note :func:`~repro.faultinject.outcomes.wilson_interval`
    itself degenerates to ``(0, 0)`` there — correct for a point
    estimate, wrong for an uncertainty measure).
    """
    if total == 0:
        return 1.0
    low, high = wilson_interval(successes, total, z)
    return high - low
