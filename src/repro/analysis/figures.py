"""Plain-text figure rendering for terminals and logs.

The benchmark harness and examples print their results as text; these
helpers render the paper's curve figures (convergence trends, ED CDFs,
histograms) as compact ASCII panels so a log file carries the shape of
the figure, not just point samples.
"""

from __future__ import annotations

import numpy as np

#: Glyphs for one-line sparklines, lowest to highest.
_SPARKS = " .:-=+*#%@"


def sparkline(values, width: int = 60, lo: float | None = None, hi: float | None = None) -> str:
    """Render a series as a one-line sparkline."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    if data.size > width:
        # Downsample by block means to the target width.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].mean() for a, b in zip(edges, edges[1:]) if b > a])
    lo = float(data.min()) if lo is None else lo
    hi = float(data.max()) if hi is None else hi
    if hi - lo < 1e-12:
        return _SPARKS[0] * data.size
    scaled = (data - lo) / (hi - lo)
    indices = np.clip((scaled * (len(_SPARKS) - 1)).round().astype(int), 0, len(_SPARKS) - 1)
    return "".join(_SPARKS[i] for i in indices)


def render_series(
    label: str,
    xs,
    ys,
    width: int = 60,
    as_percent: bool = True,
) -> str:
    """One labelled sparkline row with its end-point values."""
    ys = np.asarray(list(ys), dtype=np.float64)
    if ys.size == 0:
        return f"{label:12s} (empty)"
    scale = 100.0 if as_percent else 1.0
    unit = "%" if as_percent else ""
    return (
        f"{label:12s} [{sparkline(ys, width, lo=0.0, hi=max(1e-9, float(ys.max())))}] "
        f"{ys[0] * scale:5.1f}{unit} -> {ys[-1] * scale:5.1f}{unit}"
    )


def render_histogram(values, n_bins: int | None = None, width: int = 60) -> str:
    """Render a bar histogram (e.g. injections per register) as one line."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return "(empty)"
    return sparkline(data, width=min(width, data.size), lo=0.0)


def render_cdf_panel(curves: dict[str, tuple[np.ndarray, np.ndarray]], width: int = 60) -> str:
    """Render several CDF curves (label -> (xs, ys)) as stacked sparkrows."""
    lines = []
    for label, (xs, ys) in curves.items():
        ys = np.asarray(ys, dtype=np.float64)
        lines.append(
            f"  {label:10s} [{sparkline(ys, width, lo=0.0, hi=100.0)}] "
            f"top {ys[-1]:5.1f}%"
        )
    return "\n".join(lines)
