"""Reproduction of "Impact of Software Approximations on the Resiliency of
a Video Summarization System" (DSN 2018).

Subpackages:

* ``repro.runtime`` — simulated machine (cycles, watchdog, checkpoints).
* ``repro.imaging`` — image substrate (filters, geometry, warping, I/O).
* ``repro.vision`` — FAST/ORB features, matching, RANSAC, homography.
* ``repro.video`` — synthetic aerial-video inputs (VIRAT stand-ins).
* ``repro.summarize`` — the VS application and its approximations.
* ``repro.faultinject`` — architectural fault-injection framework (AFI analog).
* ``repro.quality`` — SDC quality metric (relative L2 norm, ED).
* ``repro.perfmodel`` — cycle/IPC/energy model.
* ``repro.analysis`` — experiment harness regenerating the paper's figures.
"""

__version__ = "1.0.0"
