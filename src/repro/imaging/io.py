"""Minimal image file I/O: binary PGM/PPM plus numpy archives.

No external codecs are available offline, so panoramas and diagnostic
images are written as netpbm files (viewable almost anywhere) and
experiment artifacts as ``.npz`` archives.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.imaging.image import as_color, as_gray


def save_pgm(path: str | Path, image: np.ndarray) -> None:
    """Write a grayscale image as binary PGM (P5)."""
    arr = as_gray(image)
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode("ascii")
    Path(path).write_bytes(header + arr.tobytes())


def save_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write a color image as binary PPM (P6)."""
    arr = as_color(image)
    header = f"P6\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode("ascii")
    Path(path).write_bytes(header + arr.tobytes())


def _parse_netpbm(data: bytes, magic: bytes, channels: int) -> np.ndarray:
    if not data.startswith(magic):
        raise ValueError(f"not a {magic.decode()} netpbm file")
    # Header tokens: magic, width, height, maxval — comments allowed.
    tokens: list[bytes] = []
    pos = 2
    while len(tokens) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        tokens.append(data[start:pos])
    pos += 1  # single whitespace after maxval
    width, height, maxval = (int(token) for token in tokens)
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    count = width * height * channels
    pixels = np.frombuffer(data[pos : pos + count], dtype=np.uint8)
    if pixels.size != count:
        raise ValueError("truncated netpbm payload")
    if channels == 1:
        return pixels.reshape(height, width).copy()
    return pixels.reshape(height, width, channels).copy()


def load_pgm(path: str | Path) -> np.ndarray:
    """Read a binary PGM (P5) grayscale image."""
    return _parse_netpbm(Path(path).read_bytes(), b"P5", 1)


def load_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM (P6) color image."""
    return _parse_netpbm(Path(path).read_bytes(), b"P6", 3)


def save_frames_npz(path: str | Path, frames: list[np.ndarray]) -> None:
    """Save a list of frames into a compressed ``.npz`` archive."""
    arrays = {f"frame_{index:05d}": frame for index, frame in enumerate(frames)}
    np.savez_compressed(Path(path), **arrays)


def load_frames_npz(path: str | Path) -> list[np.ndarray]:
    """Load frames saved by :func:`save_frames_npz`, in order."""
    with np.load(Path(path)) as archive:
        return [archive[name] for name in sorted(archive.files)]
