"""Primitive rasterizers used by the synthetic-world renderer."""

from __future__ import annotations

import numpy as np


def fill_rect(field: np.ndarray, x: int, y: int, width: int, height: int, value: float) -> None:
    """Fill an axis-aligned rectangle, clipped to the field."""
    h, w = field.shape
    x0, y0 = max(0, x), max(0, y)
    x1, y1 = min(w, x + width), min(h, y + height)
    if x0 < x1 and y0 < y1:
        field[y0:y1, x0:x1] = value


def fill_disk(field: np.ndarray, cx: float, cy: float, radius: float, value: float) -> None:
    """Fill a disk, clipped to the field."""
    h, w = field.shape
    x0 = max(0, int(np.floor(cx - radius)))
    x1 = min(w, int(np.ceil(cx + radius)) + 1)
    y0 = max(0, int(np.floor(cy - radius)))
    y1 = min(h, int(np.ceil(cy + radius)) + 1)
    if x0 >= x1 or y0 >= y1:
        return
    ys, xs = np.mgrid[y0:y1, x0:x1]
    mask = (xs - cx) ** 2 + (ys - cy) ** 2 <= radius**2
    field[y0:y1, x0:x1][mask] = value


def draw_line(
    field: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    value: float,
    thickness: int = 1,
) -> None:
    """Draw a straight line by dense sampling (adequate for world textures)."""
    length = float(np.hypot(x1 - x0, y1 - y0))
    steps = max(2, int(length * 2))
    ts = np.linspace(0.0, 1.0, steps)
    xs = x0 + ts * (x1 - x0)
    ys = y0 + ts * (y1 - y0)
    half = max(0, thickness // 2)
    h, w = field.shape
    for px, py in zip(xs, ys):
        cx0 = max(0, int(px) - half)
        cx1 = min(w, int(px) + half + 1)
        cy0 = max(0, int(py) - half)
        cy1 = min(h, int(py) + half + 1)
        if cx0 < cx1 and cy0 < cy1:
            field[cy0:cy1, cx0:cx1] = value
