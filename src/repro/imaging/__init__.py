"""Image substrate: containers, color, filtering, geometry and warping."""

from repro.imaging.color import gray_to_rgb, rgb_to_gray
from repro.imaging.filters import box_blur, gaussian_blur, gaussian_kernel_1d, harris_response
from repro.imaging.geometry import (
    apply_transform,
    identity,
    invert_transform,
    is_affine,
    normalize_homography,
    project_corners,
    projected_bounds,
    rotation,
    scaling,
    translation,
    validate_homography,
)
from repro.imaging.image import (
    as_color,
    as_gray,
    blank,
    image_shape,
    images_equal,
    saturate_cast_u8,
)
from repro.imaging.io import load_pgm, load_ppm, save_frames_npz, load_frames_npz, save_pgm, save_ppm
from repro.imaging.warp import warp_into, warp_perspective

__all__ = [
    "rgb_to_gray",
    "gray_to_rgb",
    "gaussian_blur",
    "box_blur",
    "gaussian_kernel_1d",
    "harris_response",
    "identity",
    "translation",
    "scaling",
    "rotation",
    "normalize_homography",
    "validate_homography",
    "apply_transform",
    "invert_transform",
    "project_corners",
    "projected_bounds",
    "is_affine",
    "as_gray",
    "as_color",
    "blank",
    "image_shape",
    "images_equal",
    "saturate_cast_u8",
    "save_pgm",
    "save_ppm",
    "load_pgm",
    "load_ppm",
    "save_frames_npz",
    "load_frames_npz",
    "warp_into",
    "warp_perspective",
]
