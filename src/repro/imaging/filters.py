"""Spatial filters: separable Gaussian blur, box blur and gradients.

The FAST/ORB front end blurs frames before descriptor extraction (as the
OpenCV ORB implementation does), and the Harris response used for keypoint
ranking needs image gradients.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import as_gray, saturate_cast_u8
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext


def gaussian_kernel_1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Return a normalized 1-D Gaussian kernel."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = max(1, int(round(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    return kernel / kernel.sum()


def _convolve_rows(data: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolve each row with ``kernel`` using edge replication."""
    radius = len(kernel) // 2
    padded = np.pad(data, ((0, 0), (radius, radius)), mode="edge")
    out = np.zeros_like(data)
    for offset, weight in enumerate(kernel):
        out += weight * padded[:, offset : offset + data.shape[1]]
    return out


def gaussian_blur(
    image: np.ndarray,
    sigma: float = 1.2,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Separable Gaussian blur of a grayscale image."""
    arr = as_gray(image).astype(np.float64)
    kernel = gaussian_kernel_1d(sigma)
    if ctx is not None:
        with ctx.scope("imaging.filters.gaussian_blur"):
            ctx.tick(2 * kernel_cost("filter.blur_px") * arr.shape[0] * arr.shape[1])
    blurred = _convolve_rows(arr, kernel)
    blurred = _convolve_rows(blurred.T, kernel).T
    return saturate_cast_u8(blurred)


def box_blur(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Simple box blur (used by the synthetic world renderer)."""
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    arr = as_gray(image).astype(np.float64)
    size = 2 * radius + 1
    kernel = np.full(size, 1.0 / size)
    blurred = _convolve_rows(arr, kernel)
    blurred = _convolve_rows(blurred.T, kernel).T
    return saturate_cast_u8(blurred)


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return float64 ``(gx, gy)`` Sobel gradients of a grayscale image."""
    arr = as_gray(image).astype(np.float64)
    padded = np.pad(arr, 1, mode="edge")

    def shifted(dy: int, dx: int) -> np.ndarray:
        return padded[1 + dy : 1 + dy + arr.shape[0], 1 + dx : 1 + dx + arr.shape[1]]

    gx = (
        (shifted(-1, 1) + 2.0 * shifted(0, 1) + shifted(1, 1))
        - (shifted(-1, -1) + 2.0 * shifted(0, -1) + shifted(1, -1))
    )
    gy = (
        (shifted(1, -1) + 2.0 * shifted(1, 0) + shifted(1, 1))
        - (shifted(-1, -1) + 2.0 * shifted(-1, 0) + shifted(-1, 1))
    )
    return gx, gy


def harris_response(image: np.ndarray, k: float = 0.04, window_radius: int = 2) -> np.ndarray:
    """Harris corner response map, used to rank FAST keypoints (as ORB does)."""
    gx, gy = sobel_gradients(image)
    gxx, gyy, gxy = gx * gx, gy * gy, gx * gy
    size = 2 * window_radius + 1
    kernel = np.full(size, 1.0 / size)

    def smooth(data: np.ndarray) -> np.ndarray:
        out = _convolve_rows(data, kernel)
        return _convolve_rows(out.T, kernel).T

    sxx, syy, sxy = smooth(gxx), smooth(gyy), smooth(gxy)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - k * trace * trace
