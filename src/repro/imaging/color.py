"""Color-space conversions."""

from __future__ import annotations

import numpy as np

from repro.imaging.image import as_color, as_gray, saturate_cast_u8
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext

#: ITU-R BT.601 luma weights, the same weighting OpenCV's cvtColor uses.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_gray(image: np.ndarray, ctx: ExecutionContext | None = None) -> np.ndarray:
    """Convert an RGB image to grayscale using BT.601 luma weights."""
    arr = as_color(image)
    if ctx is not None:
        with ctx.scope("imaging.color.rgb_to_gray"):
            ctx.tick(kernel_cost("color.gray_px") * arr.shape[0] * arr.shape[1])
    luma = arr.astype(np.float64) @ _LUMA_WEIGHTS
    return saturate_cast_u8(luma)


def gray_to_rgb(image: np.ndarray) -> np.ndarray:
    """Replicate a grayscale image into three channels."""
    arr = as_gray(image)
    return np.repeat(arr[:, :, np.newaxis], 3, axis=2)
