"""Perspective/affine warping — the pipeline's hot function.

This is the analog of OpenCV's ``WarpPerspective`` ->
``warpPerspectiveInvoker`` -> ``remapBilinear`` chain, which the paper
identifies as 54.4% of the VS application's execution time (Fig. 8) and
uses for its hot-function case study (Section V-C).

The kernel processes the destination region in row blocks.  Each block:

1. exposes its live register state at a checkpoint (pointers to the
   source, destination and coverage buffers; the loop counter and bound;
   the inverse transform held in floating-point registers),
2. inversely maps destination coordinates into the source frame
   (*warpPerspectiveInvoker*),
3. gathers source pixels with bilinear interpolation (*remapBilinear*),
4. exposes the floating-point pixel accumulator at a second checkpoint,
5. saturates to uint8 and stores into the destination.

Out-of-range stores caused by corrupted loop state raise
:class:`~repro.runtime.errors.SegmentationFault`, modelling a run off the
end of the destination buffer.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.imaging.geometry import invert_transform, projected_bounds, validate_homography
from repro.imaging.image import as_gray, blank, saturate_cast_u8
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import SegmentationFault

#: Rows processed per block (one checkpoint pair per block).
BLOCK_ROWS = 16

#: |w| below this is treated as a point at infinity and masked out.
_MIN_HOMOGENEOUS_W = 1e-9


def warp_into(
    canvas: np.ndarray,
    coverage: np.ndarray,
    src: np.ndarray,
    transform: np.ndarray,
    ctx: ExecutionContext,
    block_rows: int = BLOCK_ROWS,
) -> int:
    """Warp grayscale ``src`` through ``transform`` into ``canvas``.

    ``transform`` maps source pixel coordinates to canvas coordinates.
    ``coverage`` is a uint8 mask of the same shape as ``canvas``; pixels
    written by this call are set to 255.  Returns the number of pixels
    written.
    """
    with telemetry.span("imaging.warp", ctx=ctx):
        return _warp_into(canvas, coverage, src, transform, ctx, block_rows)


def _warp_into(
    canvas: np.ndarray,
    coverage: np.ndarray,
    src: np.ndarray,
    transform: np.ndarray,
    ctx: ExecutionContext,
    block_rows: int,
) -> int:
    canvas = as_gray(canvas)
    coverage = as_gray(coverage)
    if canvas.shape != coverage.shape:
        raise ValueError(f"canvas {canvas.shape} and coverage {coverage.shape} differ")
    src = as_gray(src)
    src_h, src_w = src.shape
    canvas_h, canvas_w = canvas.shape

    mat = validate_homography(transform)
    inv = invert_transform(mat)

    min_x, min_y, max_x, max_y = projected_bounds(mat, src_w, src_h)
    x_lo = max(0, int(np.floor(min_x)))
    y_lo = max(0, int(np.floor(min_y)))
    x_hi = min(canvas_w, int(np.ceil(max_x)) + 1)
    y_hi = min(canvas_h, int(np.ceil(max_y)) + 1)
    if x_lo >= x_hi or y_lo >= y_hi:
        return 0

    src_f = src.astype(np.float64)
    inv_live = inv.copy()  # the FP registers the transform lives in
    row = Cell(y_lo)
    row_end = Cell(y_hi)
    col_lo = Cell(x_lo)
    col_hi = Cell(x_hi)

    written = 0
    while row.value < row_end.value:
        block_written, next_row = _warp_block(
            canvas,
            coverage,
            src_f,
            inv_live,
            row,
            row_end,
            col_lo,
            col_hi,
            block_rows,
            ctx,
        )
        written += block_written
        row.value = next_row

    return written


def _warp_block(
    canvas: np.ndarray,
    coverage: np.ndarray,
    src_f: np.ndarray,
    inv_live: np.ndarray,
    row: Cell,
    row_end: Cell,
    col_lo: Cell,
    col_hi: Cell,
    block_rows: int,
    ctx: ExecutionContext,
) -> tuple[int, int]:
    """Process one row block; returns ``(pixels_written, next_row)``."""
    canvas_h, canvas_w = canvas.shape
    src_h, src_w = src_f.shape

    row_hint = int(row.value)  # pointer value before the checkpoint
    window = ctx.window("imaging.warp.row_block")
    if window is not None:
        from repro.faultinject.registers import Role

        window.gpr_address("src_ptr", src_f, byte_offset=0, window=min(4096, src_f.nbytes))
        window.gpr_address(
            "dst_ptr",
            canvas,
            byte_offset=row_hint * canvas_w,
            writes=True,
            window=min(256, canvas.nbytes),
        )
        window.gpr_address(
            "cov_ptr",
            coverage,
            byte_offset=row_hint * canvas_w,
            writes=True,
            window=min(256, coverage.nbytes),
        )
        window.gpr_cell("row_ctr", row, role=Role.CONTROL)
        window.gpr_cell("row_end", row_end, role=Role.CONTROL)
        window.gpr_cell("col_lo", col_lo, role=Role.DATA)
        window.gpr_cell("col_hi", col_hi, role=Role.DATA)
        window.fpr_array("inv_mat", inv_live, ttl=20_000)
        ctx.checkpoint(window)

    # Loop state is re-read *after* the checkpoint so that a register
    # flip on it steers this block (and the loop) like a real machine.
    r0 = int(row.value)
    r1 = min(r0 + block_rows, int(row_end.value))
    x_lo = int(col_lo.value)
    x_hi = int(col_hi.value)
    # A corrupted range that escapes the canvas is a wild store.
    if x_lo < 0 or x_hi > canvas_w or r0 < 0 or r1 > canvas_h:
        raise SegmentationFault(r0 * canvas_w + x_lo, "warp store outside destination")
    if x_lo >= x_hi or r0 >= r1:
        return 0, max(r1, r0 + block_rows)

    block_h = r1 - r0
    block_w = x_hi - x_lo
    n_px = block_h * block_w

    with ctx.scope("imaging.warp.warp_perspective_invoker"):
        ctx.tick(kernel_cost("warp.px") * n_px)
        xs = np.arange(x_lo, x_hi, dtype=np.float64)
        ys = np.arange(r0, r1, dtype=np.float64)
        grid_x, grid_y = np.meshgrid(xs, ys)
        denom = inv_live[2, 0] * grid_x + inv_live[2, 1] * grid_y + inv_live[2, 2]
        safe = np.abs(denom) > _MIN_HOMOGENEOUS_W
        denom = np.where(safe, denom, 1.0)
        sx = (inv_live[0, 0] * grid_x + inv_live[0, 1] * grid_y + inv_live[0, 2]) / denom
        sy = (inv_live[1, 0] * grid_x + inv_live[1, 1] * grid_y + inv_live[1, 2]) / denom
        valid = (
            safe
            & np.isfinite(sx)
            & np.isfinite(sy)
            & (sx >= 0.0)
            & (sx <= src_w - 1.0)
            & (sy >= 0.0)
            & (sy <= src_h - 1.0)
        )

    if not np.any(valid):
        return 0, r1

    with ctx.scope("imaging.warp.remap_bilinear"):
        ctx.tick(kernel_cost("warp.remap_px") * n_px)
        values = _remap_bilinear(src_f, sx, sy, valid, ctx)

    window = ctx.window("imaging.warp.pixels")
    if window is not None:
        window.fpr_array("pix_acc", values)
        window.fpr_array("coef_x", sx)
        ctx.checkpoint(window)

    with ctx.scope("imaging.warp.warp_perspective_invoker"):
        ctx.tick(kernel_cost("warp.saturate_px") * n_px)
        stored = saturate_cast_u8(values[valid])

    # The store stream moves eight packed pixels per 64-bit register on
    # its way to memory; a flip corrupts one output pixel (which a
    # downstream stitch may later overwrite — the paper's compositional
    # masking).  Binding the packed view makes every one of the 64
    # register bits land in a real pixel.
    window = ctx.window("imaging.warp.store")
    if window is not None and stored.size >= 8:
        lanes = stored[: (stored.size // 8) * 8].view(np.uint64)
        window.gpr_array("store_px", lanes, ttl=60_000)
        ctx.checkpoint(window)

    with ctx.scope("imaging.warp.warp_perspective_invoker"):
        block = canvas[r0:r1, x_lo:x_hi]
        block[valid] = stored
        coverage[r0:r1, x_lo:x_hi][valid] = 255
    return int(np.count_nonzero(valid)), r1


def _remap_bilinear(
    src_f: np.ndarray,
    sx: np.ndarray,
    sy: np.ndarray,
    valid: np.ndarray,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Bilinear gather from ``src_f`` at float coordinates (masked)."""
    src_h, src_w = src_f.shape
    cx = np.where(valid, sx, 0.0)
    cy = np.where(valid, sy, 0.0)
    x0 = np.floor(cx).astype(np.intp)
    y0 = np.floor(cy).astype(np.intp)

    # The gather-index registers: a flip makes one output pixel sample
    # the wrong source location.  Corrupted indices are clamped into the
    # image below, so the failure is wrong data, not a wild read (the
    # source pointer binding at the block checkpoint models that case).
    window = ctx.window("imaging.warp.gather") if ctx is not None else None
    if window is not None:
        window.gpr_array("gather_x", x0, ttl=60_000)
        window.gpr_array("gather_y", y0, ttl=60_000)
        ctx.checkpoint(window)
        np.clip(x0, 0, src_w - 1, out=x0)
        np.clip(y0, 0, src_h - 1, out=y0)

    x1 = np.minimum(x0 + 1, src_w - 1)
    y1 = np.minimum(y0 + 1, src_h - 1)
    fx = cx - x0
    fy = cy - y0
    top = src_f[y0, x0] * (1.0 - fx) + src_f[y0, x1] * fx
    bottom = src_f[y1, x0] * (1.0 - fx) + src_f[y1, x1] * fx
    return top * (1.0 - fy) + bottom * fy


def warp_perspective(
    src: np.ndarray,
    transform: np.ndarray,
    out_shape: tuple[int, int],
    ctx: ExecutionContext,
) -> np.ndarray:
    """Warp ``src`` into a fresh ``out_shape = (h, w)`` canvas.

    This is the standalone entry point used by the WP toy benchmark
    (paper Section V-C): image in, transform in, warped image out.
    """
    out_h, out_w = out_shape
    canvas = blank(out_h, out_w)
    coverage = blank(out_h, out_w)
    warp_into(canvas, coverage, src, transform, ctx)
    return canvas
