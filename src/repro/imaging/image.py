"""Core image representation and the saturating uint8 cast.

Images are plain numpy arrays: grayscale images are ``(h, w) uint8`` and
color images are ``(h, w, 3) uint8``.  The saturating cast is the single
most important masking mechanism for floating-point faults in the paper
(Section VI-A): pixel math is done in float and converted back to uint8
through saturation, which absorbs most single-bit FP corruptions.
"""

from __future__ import annotations

import numpy as np


def saturate_cast_u8(values: np.ndarray | float) -> np.ndarray:
    """Convert float values to uint8 with clamping to [0, 255].

    Mirrors OpenCV's ``saturate_cast<uchar>``: NaNs become 0, values are
    rounded half-away-from-zero and clamped.  This cast is applied at the
    end of every pixel-producing kernel and masks the majority of
    floating-point register corruptions.
    """
    arr = np.asarray(values, dtype=np.float64)
    arr = np.nan_to_num(arr, nan=0.0, posinf=255.0, neginf=0.0)
    rounded = np.floor(arr + 0.5)
    return np.clip(rounded, 0.0, 255.0).astype(np.uint8)


def as_gray(image: np.ndarray) -> np.ndarray:
    """Validate and return a grayscale ``(h, w) uint8`` image."""
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ValueError(f"expected a (h, w) grayscale image, got shape {arr.shape}")
    if arr.dtype != np.uint8:
        raise ValueError(f"expected uint8 pixels, got {arr.dtype}")
    return arr


def as_color(image: np.ndarray) -> np.ndarray:
    """Validate and return a color ``(h, w, 3) uint8`` image."""
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected a (h, w, 3) color image, got shape {arr.shape}")
    if arr.dtype != np.uint8:
        raise ValueError(f"expected uint8 pixels, got {arr.dtype}")
    return arr


def blank(height: int, width: int, channels: int = 1, fill: int = 0) -> np.ndarray:
    """Allocate a blank uint8 image."""
    if height <= 0 or width <= 0:
        raise ValueError(f"image dimensions must be positive, got {height}x{width}")
    if channels == 1:
        shape: tuple[int, ...] = (height, width)
    else:
        shape = (height, width, channels)
    return np.full(shape, fill, dtype=np.uint8)


def image_shape(image: np.ndarray) -> tuple[int, int]:
    """Return ``(height, width)`` for a gray or color image."""
    arr = np.asarray(image)
    if arr.ndim not in (2, 3):
        raise ValueError(f"not an image: shape {arr.shape}")
    return int(arr.shape[0]), int(arr.shape[1])


def images_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact pixel equality, the paper's SDC check (any difference = SDC)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a, b))
