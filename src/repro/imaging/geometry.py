"""Homogeneous 2-D geometry: transforms, point mapping, bounds projection.

Transforms are 3x3 float64 matrices acting on homogeneous pixel
coordinates ``(x, y, 1)``.  Affine transforms are represented as 3x3
matrices whose last row is ``(0, 0, 1)`` so that the whole pipeline
composes transforms uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.errors import DegenerateModelError

#: Treat a homography as unusable if |det| of the upper-left 2x2 falls
#: below this bound (collapses the image onto a line).
_MIN_UPPER_DET = 1e-8


def identity() -> np.ndarray:
    """Return the 3x3 identity transform."""
    return np.eye(3, dtype=np.float64)


def translation(tx: float, ty: float) -> np.ndarray:
    """Return a translation transform."""
    mat = np.eye(3, dtype=np.float64)
    mat[0, 2] = tx
    mat[1, 2] = ty
    return mat


def scaling(sx: float, sy: float | None = None) -> np.ndarray:
    """Return a scaling transform (isotropic when ``sy`` is omitted)."""
    if sy is None:
        sy = sx
    mat = np.eye(3, dtype=np.float64)
    mat[0, 0] = sx
    mat[1, 1] = sy
    return mat


def rotation(angle_rad: float, center: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """Return a rotation transform about ``center``."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    cx, cy = center
    rot = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    return translation(cx, cy) @ rot @ translation(-cx, -cy)


def normalize_homography(mat: np.ndarray) -> np.ndarray:
    """Scale a homography so that its (2, 2) entry is 1."""
    mat = np.asarray(mat, dtype=np.float64)
    if mat.shape != (3, 3):
        raise ValueError(f"expected a 3x3 matrix, got shape {mat.shape}")
    pivot = mat[2, 2]
    if abs(pivot) < 1e-12:
        raise DegenerateModelError("homography has a vanishing (2,2) entry")
    return mat / pivot


def validate_homography(mat: np.ndarray) -> np.ndarray:
    """Check a homography for NaNs and degeneracy; return it normalized.

    Raises :class:`DegenerateModelError` for numerically unusable models.
    Corrupted register state flowing into a transform matrix is caught
    here (and surfaces as an *Abort* crash in injection campaigns when
    the caller treats it as a precondition violation).
    """
    mat = np.asarray(mat, dtype=np.float64)
    if mat.shape != (3, 3):
        raise ValueError(f"expected a 3x3 matrix, got shape {mat.shape}")
    if not np.all(np.isfinite(mat)):
        raise DegenerateModelError("homography contains non-finite entries")
    mat = normalize_homography(mat)
    upper_det = mat[0, 0] * mat[1, 1] - mat[0, 1] * mat[1, 0]
    if abs(upper_det) < _MIN_UPPER_DET:
        raise DegenerateModelError(f"homography is rank deficient (det={upper_det:.3e})")
    return mat


def apply_transform(mat: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Map ``(n, 2)`` points through a 3x3 transform.

    Raises :class:`DegenerateModelError` when any mapped point lands at
    infinity (vanishing homogeneous coordinate).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {pts.shape}")
    homo = np.hstack([pts, np.ones((pts.shape[0], 1))])
    mapped = homo @ np.asarray(mat, dtype=np.float64).T
    w = mapped[:, 2]
    if np.any(np.abs(w) < 1e-12):
        raise DegenerateModelError("transformed point at infinity")
    return mapped[:, :2] / w[:, np.newaxis]


def invert_transform(mat: np.ndarray) -> np.ndarray:
    """Invert a 3x3 transform, normalizing the result."""
    mat = np.asarray(mat, dtype=np.float64)
    try:
        inv = np.linalg.inv(mat)
    except np.linalg.LinAlgError as exc:
        raise DegenerateModelError(f"transform is singular: {exc}") from exc
    if not np.all(np.isfinite(inv)):
        raise DegenerateModelError("transform inverse is non-finite")
    return normalize_homography(inv)


def project_corners(mat: np.ndarray, width: int, height: int) -> np.ndarray:
    """Map the four corners of a ``width x height`` image; returns (4, 2)."""
    corners = np.array(
        [[0.0, 0.0], [width - 1.0, 0.0], [width - 1.0, height - 1.0], [0.0, height - 1.0]]
    )
    return apply_transform(mat, corners)


def projected_bounds(mat: np.ndarray, width: int, height: int) -> tuple[float, float, float, float]:
    """Return ``(min_x, min_y, max_x, max_y)`` of the projected image corners."""
    corners = project_corners(mat, width, height)
    mins = corners.min(axis=0)
    maxs = corners.max(axis=0)
    return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])


def is_affine(mat: np.ndarray, tol: float = 1e-9) -> bool:
    """True when the transform's last row is (0, 0, 1) within ``tol``."""
    mat = np.asarray(mat, dtype=np.float64)
    return bool(
        abs(mat[2, 0]) <= tol and abs(mat[2, 1]) <= tol and abs(mat[2, 2] - 1.0) <= tol
    )
