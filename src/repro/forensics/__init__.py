"""Fault-propagation forensics: divergence tracing, result store, reports.

Three layers, all opt-in and result-neutral:

* :mod:`~repro.forensics.probes` — stage-boundary checksum probes
  (enable per campaign with ``CampaignConfig(probe=True)`` or the CLI's
  ``--probe``); off by default with a single ``None`` check per stage.
* :mod:`~repro.forensics.store` — an append-only, CRC-checked JSONL
  store of campaign records under content-addressed ids
  (``repro campaign --store DIR``).
* :mod:`~repro.forensics.report` — deterministic terminal / markdown /
  HTML reports and cross-campaign regression diffs (``repro report``).

This ``__init__`` deliberately imports only the probe layer: the store
and report modules import campaign machinery, which itself imports the
probes — importing them here would create a cycle.  Reach them as
``repro.forensics.store`` / ``repro.forensics.report``.
"""

from repro.forensics.divergence import (
    DivergenceRecord,
    diff_against_golden,
    summarize_divergence,
)
from repro.forensics.probes import (
    STAGE_INDEX,
    STAGES,
    StageProbe,
    active,
    capturing,
    checksum_parts,
    clear_golden_signatures,
    golden_signature_for,
    record,
)

__all__ = [
    "DivergenceRecord",
    "diff_against_golden",
    "summarize_divergence",
    "STAGES",
    "STAGE_INDEX",
    "StageProbe",
    "active",
    "capturing",
    "checksum_parts",
    "clear_golden_signatures",
    "golden_signature_for",
    "record",
]
