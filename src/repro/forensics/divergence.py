"""Per-injection divergence records and campaign-level attribution.

A :class:`DivergenceRecord` condenses one injected run's probe stream
(see :mod:`repro.forensics.probes`) against the golden run's per-stage
checksum sequences into four fields:

* ``first_divergence`` — the stage whose output deviated from golden
  earliest in execution order (``None`` when every recorded checksum
  matched: the fault never produced observably different stage data);
* ``last_stage`` — the last stage boundary the run reached (``None``
  when the run died before the first probe);
* ``diverged_bits`` / ``observed_bits`` — compact per-stage bitmaps
  (bit *i* is :data:`~repro.forensics.probes.STAGES` ``[i]``) of which
  stages diverged and which recorded at least one invocation.

The comparison is **prefix-aware**: an injected run that crashed after
three frames has shorter checksum sequences than golden, but as long as
the checksums it did record match golden's prefix, no stage counts as
diverged — truncation is visible through ``last_stage``, not conflated
with data corruption.  A masked run whose ``first_divergence`` names an
early stage while the final stages converged is exactly the paper's
"absorbed" case made measurable: the corruption existed and a later
stage (ratio test, RANSAC consensus, compositing) swallowed it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.forensics.probes import STAGE_INDEX, STAGES, StageProbe


@dataclass(frozen=True)
class DivergenceRecord:
    """Where one injected run's dataflow deviated from the golden run."""

    first_divergence: str | None
    last_stage: str | None
    diverged_bits: int
    observed_bits: int

    def diverged(self, stage: str) -> bool:
        """True when ``stage`` produced output different from golden."""
        return bool(self.diverged_bits >> STAGE_INDEX[stage] & 1)

    def observed(self, stage: str) -> bool:
        """True when ``stage`` recorded at least one invocation."""
        return bool(self.observed_bits >> STAGE_INDEX[stage] & 1)

    @property
    def stages_diverged(self) -> tuple[str, ...]:
        """Diverged stages in pipeline order."""
        return tuple(stage for stage in STAGES if self.diverged(stage))

    @property
    def absorbed(self) -> bool:
        """True when an upstream divergence converged back by the stitch.

        The measured version of "masked by the ratio test" / "absorbed
        by RANSAC": some stage diverged, but the final composited output
        stage did not.
        """
        return self.first_divergence is not None and not self.diverged("stitch")

    def to_dict(self) -> dict:
        """JSON-serializable form (journal and store payloads)."""
        return {
            "first": self.first_divergence,
            "last": self.last_stage,
            "diverged": self.diverged_bits,
            "observed": self.observed_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DivergenceRecord":
        """Rebuild a record written by :meth:`to_dict`."""
        return cls(
            first_divergence=data["first"],
            last_stage=data["last"],
            diverged_bits=int(data["diverged"]),
            observed_bits=int(data["observed"]),
        )


def diff_against_golden(
    golden_signature: dict[str, tuple[int, ...]], probe: StageProbe
) -> DivergenceRecord:
    """Fold one run's probe stream into a :class:`DivergenceRecord`.

    For each stage, invocation *i* of the injected run is compared with
    invocation *i* of the golden run; the first mismatching (or extra)
    invocation marks the stage diverged, stamped with its global
    execution sequence so ``first_divergence`` reflects where corrupted
    data *first appeared*, not merely the earliest pipeline stage.
    """
    # Snapshot first: after a wall-clock watchdog expiry the abandoned
    # workload thread may still be appending events.
    events = list(probe.events)
    per_stage: dict[str, list[tuple[int, int]]] = {stage: [] for stage in STAGES}
    for seq, (stage, crc) in enumerate(events):
        per_stage[stage].append((seq, crc))

    diverged_bits = 0
    observed_bits = 0
    first_stage: str | None = None
    first_seq: int | None = None
    for stage in STAGES:
        stage_events = per_stage[stage]
        if stage_events:
            observed_bits |= 1 << STAGE_INDEX[stage]
        golden = golden_signature.get(stage, ())
        mismatch_seq: int | None = None
        for index, (seq, crc) in enumerate(stage_events):
            if index >= len(golden) or crc != golden[index]:
                mismatch_seq = seq
                break
        if mismatch_seq is None:
            continue
        diverged_bits |= 1 << STAGE_INDEX[stage]
        if first_seq is None or mismatch_seq < first_seq:
            first_seq = mismatch_seq
            first_stage = stage

    return DivergenceRecord(
        first_divergence=first_stage,
        last_stage=events[-1][0] if events else None,
        diverged_bits=diverged_bits,
        observed_bits=observed_bits,
    )


#: Key used in attribution tables for runs without a given stage value.
NONE_KEY = "none"


def summarize_divergence(results) -> dict:
    """Campaign-level divergence attribution (the store payload shape).

    ``results`` is an ordered iterable of
    :class:`~repro.faultinject.monitor.InjectionResult`; entries without
    a divergence record (unprobed runs) are counted under ``unprobed``.
    Tables are keyed by stage name (plus :data:`NONE_KEY`) and built in
    deterministic :data:`~repro.forensics.probes.STAGES` order.
    """
    probed = 0
    unprobed = 0
    first_by_outcome: dict[str, dict[str, int]] = {}
    last_stage_counts: dict[str, int] = {}
    stage_diverged: dict[str, int] = {stage: 0 for stage in STAGES}
    absorbed = 0
    for result in results:
        record = result.divergence
        if record is None:
            unprobed += 1
            continue
        probed += 1
        first = record.first_divergence or NONE_KEY
        outcome = result.outcome.value
        first_by_outcome.setdefault(first, {})
        first_by_outcome[first][outcome] = first_by_outcome[first].get(outcome, 0) + 1
        last = record.last_stage or NONE_KEY
        last_stage_counts[last] = last_stage_counts.get(last, 0) + 1
        for stage in record.stages_diverged:
            stage_diverged[stage] += 1
        if record.absorbed:
            absorbed += 1

    def stage_order(table: dict) -> dict:
        ordered = {}
        for key in (*STAGES, NONE_KEY):
            if key in table:
                ordered[key] = table[key]
        return ordered

    return {
        "probed": probed,
        "unprobed": unprobed,
        "absorbed": absorbed,
        "first_divergence": stage_order(
            {key: dict(sorted(value.items())) for key, value in first_by_outcome.items()}
        ),
        "last_stage": stage_order(last_stage_counts),
        "stage_diverged": stage_diverged,
    }
