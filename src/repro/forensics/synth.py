"""Deterministic synthetic campaign records for benches and fixtures.

Store-scale work (the ``BENCH_store.json`` harness, the query-engine
property suite, the committed v1 fixture store CI migrates) needs
thousands of schema-valid injection rows without paying for thousands
of real pipeline executions.  :func:`synthesize_record` fabricates a
record that is *shape-identical* to :func:`repro.forensics.store.
build_record` output — internally consistent counts, histograms,
divergence attribution, and SDC quality — from a seeded
``numpy.random.default_rng`` stream, so the same seed always yields the
same bytes (and therefore the same content-addressed id) on every
platform.

Synthetic records are clearly labelled (``synthetic`` default label
prefix) and carry outcome rates in the neighbourhood of the paper's
Fig. 10 so reports over them render plausibly.
"""

from __future__ import annotations

import numpy as np

from repro.forensics.divergence import NONE_KEY
from repro.forensics.probes import STAGES
from repro.forensics.store import STORE_SCHEMA_VERSION

#: Outcome draw weights: mask-heavy, like the paper's GPR campaigns.
_OUTCOMES = ("mask", "sdc", "crash", "hang")
_OUTCOME_WEIGHTS = (0.62, 0.20, 0.12, 0.06)

#: Crash split (Section VI-A: ~92% segv).
_SEGV_SHARE = 0.9


def _counts_dict(outcomes: list[str], crash_kinds: list[str]) -> dict:
    masked = outcomes.count("mask")
    sdc = outcomes.count("sdc")
    hang = outcomes.count("hang")
    segv = crash_kinds.count("segv")
    abort = crash_kinds.count("abort")
    total = len(outcomes)
    crash = segv + abort
    return {
        "total": total,
        "masked": masked,
        "sdc": sdc,
        "crash_segv": segv,
        "crash_abort": abort,
        "hang": hang,
        "rates": {
            "mask": masked / total if total else 0.0,
            "sdc": sdc / total if total else 0.0,
            "crash": crash / total if total else 0.0,
            "hang": hang / total if total else 0.0,
        },
    }


def synthesize_record(
    seed: int,
    n_injections: int = 120,
    label: str | None = None,
    kind: str = "gpr",
    probe: bool = True,
    stratified: bool = False,
) -> dict:
    """One deterministic, schema-valid synthetic campaign record."""
    rng = np.random.default_rng(seed)
    label = label if label is not None else f"synthetic-{seed}"

    injections = []
    outcomes: list[str] = []
    crash_kinds: list[str] = []
    register_histogram = [0] * 32
    bit_histogram = [0] * 64
    probed = 0
    absorbed = 0
    first_by_outcome: dict[str, dict[str, int]] = {}
    last_counts: dict[str, int] = {}
    stage_diverged = {stage: 0 for stage in STAGES}
    sdc_quality = []

    for index in range(n_injections):
        register = int(rng.integers(0, 32))
        bit = int(rng.integers(0, 64))
        outcome = _OUTCOMES[int(rng.choice(len(_OUTCOMES), p=_OUTCOME_WEIGHTS))]
        crash_kind = ""
        if outcome == "crash":
            crash_kind = "segv" if rng.random() < _SEGV_SHARE else "abort"
            crash_kinds.append(crash_kind)
        fired = 1 if rng.random() < 0.92 else 0
        first = ""
        last = ""
        diverged_bits = -1
        if probe:
            probed += 1
            diverged_bits = 0
            if outcome == "mask":
                # Most masked faults never visibly diverge; a few are
                # absorbed after a transient wiggle.
                if rng.random() < 0.2:
                    stage_index = int(rng.integers(0, len(STAGES) - 1))
                    first = STAGES[stage_index]
                    last = STAGES[int(rng.integers(stage_index, len(STAGES)))]
                    diverged_bits = int(rng.integers(1, 40))
                    absorbed += 1
            else:
                stage_index = int(rng.integers(0, len(STAGES)))
                first = STAGES[stage_index]
                last = STAGES[int(rng.integers(stage_index, len(STAGES)))]
                diverged_bits = int(rng.integers(1, 4000))
            first_key = first or NONE_KEY
            last_key = last or NONE_KEY
            first_by_outcome.setdefault(first_key, {})
            first_by_outcome[first_key][outcome] = (
                first_by_outcome[first_key].get(outcome, 0) + 1
            )
            last_counts[last_key] = last_counts.get(last_key, 0) + 1
            if first:
                for stage in STAGES[STAGES.index(first) : STAGES.index(last) + 1]:
                    stage_diverged[stage] += 1
        if outcome == "sdc":
            sdc_quality.append(
                {
                    "index": index,
                    "relative_l2": round(float(rng.uniform(0.001, 0.6)), 6),
                    "ed": int(rng.integers(0, 40)),
                }
            )
        outcomes.append(outcome)
        register_histogram[register] += 1
        bit_histogram[bit] += 1
        injections.append(
            [register, bit, outcome, crash_kind, fired, first, last, diverged_bits]
        )

    def _stage_order(table: dict) -> dict:
        ordered = {}
        for key in (*STAGES, NONE_KEY):
            if key in table:
                ordered[key] = table[key]
        return ordered

    fired_rows = [row for row in injections if row[4]]
    fired_outcomes = [row[2] for row in fired_rows]
    fired_crash_kinds = [row[3] for row in fired_rows if row[3]]

    record = {
        "schema": STORE_SCHEMA_VERSION,
        "label": label,
        "fingerprint": {
            "n_injections": n_injections,
            "kind": kind,
            "seed": seed,
            "hang_factor": 10.0,
            "site_filter": None,
            "keep_sdc_outputs": True,
            "watchdog_soft_deadline_s": None,
            "probe": probe,
            "fast_forward": True,
            "boundary_batch": True,
            "sampling": "stratified" if stratified else "uniform",
        },
        "counts": _counts_dict(outcomes, crash_kinds),
        "fired_counts": _counts_dict(fired_outcomes, fired_crash_kinds),
        "register_histogram": register_histogram,
        "bit_histogram": bit_histogram,
        "injections": injections,
        "divergence": {
            "probed": probed,
            "unprobed": n_injections - probed,
            "absorbed": absorbed,
            "first_divergence": _stage_order(
                {key: dict(sorted(value.items())) for key, value in first_by_outcome.items()}
            ),
            "last_stage": _stage_order(last_counts),
            "stage_diverged": stage_diverged,
        },
        "sdc_quality": sdc_quality,
    }
    if stratified:
        record["sampling"] = _sampling_block(record, rng)
    return record


def _sampling_block(record: dict, rng: np.random.Generator) -> dict:
    """A minimal, internally consistent stratified-sampling block."""
    counts = record["counts"]
    total = counts["total"]
    raw_rates = {
        "mask": counts["rates"]["mask"],
        "sdc": counts["rates"]["sdc"],
        "crash": counts["rates"]["crash"],
        "hang": counts["rates"]["hang"],
    }
    # Mild reweighting jitter, renormalized so the rates stay a simplex.
    weights = {key: max(rate + float(rng.uniform(-0.01, 0.01)), 0.0) for key, rate in raw_rates.items()}
    norm = sum(weights.values()) or 1.0
    ht_rates = {key: round(value / norm, 9) for key, value in weights.items()}
    cells = []
    for index in range(4):
        draws = total // 4 + (1 if index < total % 4 else 0)
        cells.append(
            {
                "cell": index,
                "registers": [index * 8, index * 8 + 8],
                "bits": [0, 64],
                "cycles": [0, 1000],
                "weight": 0.25,
                "draws": draws,
                "counts": {
                    "total": draws,
                    "masked": draws,
                    "sdc": 0,
                    "crash_segv": 0,
                    "crash_abort": 0,
                    "hang": 0,
                },
                "max_ci_width": round(float(rng.uniform(0.01, 0.05)), 6),
                "converged_round": int(rng.integers(1, 9)),
            }
        )
    return {
        "stratification": {
            "kind": record["fingerprint"]["kind"],
            "total_cycles": 1000,
            "register_classes": 4,
            "bit_octets": 1,
            "cycle_edges": [0, 1000],
        },
        "cells": cells,
        "cells_converged": len(cells),
        "ci_width": 0.02,
        "rounds": int(rng.integers(4, 12)),
        "draws": total,
        "uniform_equivalent_draws": total + int(rng.integers(0, total // 2 + 1)),
        "draws_saved": int(rng.integers(0, total // 2 + 1)),
        "budget_exhausted": False,
        "raw_rates": raw_rates,
        "ht_rates": ht_rates,
    }


def synthesize_corpus(
    n_records: int,
    seed: int = 0,
    n_injections: int = 120,
    probe: bool = True,
    stratified_every: int | None = None,
) -> list[dict]:
    """A list of distinct synthetic records (seeds ``seed + i``).

    ``stratified_every`` makes every k-th record stratified, to exercise
    mixed-mode corpora.
    """
    records = []
    for index in range(n_records):
        records.append(
            synthesize_record(
                seed=seed + index,
                n_injections=n_injections,
                kind="gpr" if index % 2 == 0 else "fpr",
                probe=probe,
                stratified=bool(stratified_every) and index % stratified_every == 0,
            )
        )
    return records
