"""Content-addressed campaign result store (append-only JSONL + index).

Every campaign worth keeping becomes a fingerprinted, queryable
artifact: outcome counts, register/bit histograms, per-injection
``(register, bit, outcome, divergence)`` tuples, SDC quality
distributions and divergence attributions, stored under a
**content-addressed campaign id** — the SHA-256 of the record's
canonical JSON — so identical campaigns collapse to one entry and a
record can never drift from its id unnoticed.

Layout (one directory per store)::

    <root>/campaigns.jsonl   append-only; one CRC32-guarded record per line
    <root>/index.json        id -> summary, rebuilt on every put (small)

The JSONL follows the checkpoint journal's conventions (schema version,
``zlib.crc32`` over the canonical payload, fsync'd appends); records
whose CRC fails on read are reported, never silently skipped.

Reports and regression diffs over stored campaigns live in
:mod:`repro.forensics.report` (CLI: ``repro report``).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.analysis.reporting import counts_to_dict
from repro.faultinject.campaign import CampaignResult
from repro.faultinject.journal import config_fingerprint
from repro.forensics.divergence import summarize_divergence

#: Bump when the record shape changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Hex digits of the SHA-256 kept as the campaign id.
ID_LENGTH = 16


class StoreError(ValueError):
    """The store cannot be used (missing id, corrupt record, bad schema)."""


def _canonical_json(payload: Any) -> str:
    """The byte-stable JSON encoding ids and CRCs are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def campaign_id(record: dict) -> str:
    """Content-addressed id of one campaign record."""
    digest = hashlib.sha256(_canonical_json(record).encode("utf-8")).hexdigest()
    return digest[:ID_LENGTH]


def build_record(
    campaign: CampaignResult,
    golden_output: np.ndarray | None = None,
    label: str | None = None,
) -> dict:
    """Fold one :class:`CampaignResult` into a storable record.

    ``golden_output``, when given, lets the record include the SDC
    quality distribution (relative L2 norm and Egregiousness Degree per
    retained corrupted output — paper Fig. 12).  ``label`` is a free
    human tag; it participates in the content address, so relabelling a
    campaign stores a distinct record.
    """
    injections = []
    for result in campaign.results:
        divergence = result.divergence
        injections.append(
            [
                int(result.plan.register),
                int(result.plan.bit),
                result.outcome.value,
                result.crash_kind.value if result.crash_kind is not None else "",
                1 if (result.record.fired and result.record.in_study) else 0,
                divergence.first_divergence or "" if divergence is not None else "",
                divergence.last_stage or "" if divergence is not None else "",
                divergence.diverged_bits if divergence is not None else -1,
            ]
        )

    sdc_quality = []
    if golden_output is not None:
        from repro.quality import compare_outputs

        for index, result in enumerate(campaign.results):
            if not result.is_sdc or result.output is None:
                continue
            quality = compare_outputs(golden_output, result.output)
            rel = quality.relative_l2_norm
            sdc_quality.append(
                {
                    "index": index,
                    # round() keeps the canonical JSON (and therefore the
                    # content address) stable across float formatting.
                    "relative_l2": round(rel, 6) if np.isfinite(rel) else None,
                    "ed": quality.egregious_degree,
                }
            )

    record = {
        "schema": STORE_SCHEMA_VERSION,
        "label": label,
        "fingerprint": config_fingerprint(campaign.config),
        "counts": counts_to_dict(campaign.counts),
        "fired_counts": counts_to_dict(campaign.fired_counts()),
        "register_histogram": campaign.register_histogram.tolist(),
        "bit_histogram": campaign.bit_histogram.tolist(),
        "injections": injections,
        "divergence": summarize_divergence(campaign.results),
        "sdc_quality": sdc_quality,
    }
    # Only stratified campaigns carry a sampling block, so uniform
    # records keep exactly their previous shape — and therefore their
    # previous content-addressed ids.
    if campaign.sampling is not None:
        record["sampling"] = campaign.sampling.to_dict()
    return record


class CampaignStore:
    """One store directory of campaign records."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.records_path = self.root / "campaigns.jsonl"
        self.index_path = self.root / "index.json"

    # -- writing ----------------------------------------------------------

    def put(self, record: dict) -> str:
        """Store one record; returns its campaign id (idempotent)."""
        if record.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"record schema {record.get('schema')!r} is not supported "
                f"(expected {STORE_SCHEMA_VERSION})"
            )
        cid = campaign_id(record)
        index = self._load_index()
        if cid in index["campaigns"]:
            return cid
        self.root.mkdir(parents=True, exist_ok=True)
        payload = _canonical_json(record)
        line = _canonical_json(
            {"id": cid, "crc32": zlib.crc32(payload.encode("utf-8")), "record": record}
        )
        with open(self.records_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        index["order"].append(cid)
        index["campaigns"][cid] = self._summary(record)
        self._write_index(index)
        return cid

    def put_campaign(
        self,
        campaign: CampaignResult,
        golden_output: np.ndarray | None = None,
        label: str | None = None,
    ) -> str:
        """Build and store a record in one step; returns the id."""
        return self.put(build_record(campaign, golden_output=golden_output, label=label))

    # -- reading ----------------------------------------------------------

    def ids(self) -> list[str]:
        """Stored campaign ids in insertion order."""
        return list(self._load_index()["order"])

    def summaries(self) -> dict[str, dict]:
        """Per-id summary rows from the index (insertion order)."""
        index = self._load_index()
        return {cid: index["campaigns"][cid] for cid in index["order"]}

    def get(self, cid: str) -> dict:
        """Load one record by id, verifying its CRC."""
        for line_number, entry in self._iter_entries():
            if entry.get("id") != cid:
                continue
            record = entry.get("record")
            payload = _canonical_json(record)
            if zlib.crc32(payload.encode("utf-8")) != entry.get("crc32"):
                raise StoreError(
                    f"store record {cid} (line {line_number}) failed its CRC check"
                )
            if campaign_id(record) != cid:
                raise StoreError(
                    f"store record at line {line_number} does not hash to its id {cid}"
                )
            return record
        raise StoreError(
            f"campaign {cid!r} is not in store {self.root} "
            f"(known: {', '.join(self.ids()) or 'none'})"
        )

    def _iter_entries(self) -> Iterator[tuple[int, dict]]:
        if not self.records_path.exists():
            return
        with open(self.records_path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StoreError(
                        f"store {self.records_path} line {line_number} is not JSON: {exc}"
                    ) from None
                yield line_number, entry

    # -- index ------------------------------------------------------------

    @staticmethod
    def _summary(record: dict) -> dict:
        fingerprint = record["fingerprint"]
        counts = record["counts"]
        return {
            "label": record.get("label"),
            "kind": fingerprint["kind"],
            "n_injections": fingerprint["n_injections"],
            "seed": fingerprint["seed"],
            "probe": bool(fingerprint.get("probe")),
            "total": counts["total"],
            "sdc": counts["sdc"],
        }

    def _load_index(self) -> dict:
        if not self.index_path.exists():
            return {"schema": STORE_SCHEMA_VERSION, "order": [], "campaigns": {}}
        index = json.loads(self.index_path.read_text())
        if index.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"store index {self.index_path} schema {index.get('schema')!r} "
                f"is not supported (expected {STORE_SCHEMA_VERSION})"
            )
        return index

    def _write_index(self, index: dict) -> None:
        self.index_path.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
